//! Arrays of flow cells electrically in parallel.
//!
//! The POWER7+ integration lays 88 channels over the die, all fed by one
//! manifold and connected in parallel (same terminal voltage, currents
//! add). When the thermal model supplies per-channel temperature profiles
//! the channels differ and are solved individually (in parallel threads);
//! otherwise a single representative channel is solved and scaled.

use crate::options::TemperatureProfile;
use crate::polarization::{PolarizationCurve, PolarizationPoint};
use crate::solver::CellModel;
use crate::FlowCellError;
use bright_num::roots::{brent, RootOptions};
use bright_units::{Ampere, Volt, Watt};
use std::sync::OnceLock;

/// An array of `count` flow-cell channels electrically in parallel.
#[derive(Debug, Clone)]
pub struct CellArray {
    template: CellModel,
    count: usize,
    per_channel_temperatures: Option<Vec<TemperatureProfile>>,
    /// Lazily built per-channel models (one template clone per distinct
    /// temperature profile). Every solve on the array reuses them — and
    /// with them each model's cached solve context.
    models: OnceLock<Vec<CellModel>>,
}

/// Aggregate operating point of an array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayOperatingPoint {
    /// Terminal voltage (common to all channels).
    pub voltage: Volt,
    /// Total delivered current.
    pub current: Ampere,
    /// Total delivered power.
    pub power: Watt,
}

impl CellArray {
    /// Creates an array of `count` identical channels.
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] if `count == 0`.
    pub fn new(template: CellModel, count: usize) -> Result<Self, FlowCellError> {
        if count == 0 {
            return Err(FlowCellError::InvalidConfig("zero channels".into()));
        }
        Ok(Self {
            template,
            count,
            per_channel_temperatures: None,
            models: OnceLock::new(),
        })
    }

    /// Number of channels.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The template channel model.
    #[inline]
    pub fn template(&self) -> &CellModel {
        &self.template
    }

    /// Assigns an individual temperature profile to every channel (from
    /// the thermal solver). The vector length must equal the channel
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] on length mismatch.
    pub fn with_channel_temperatures(
        mut self,
        temps: Vec<TemperatureProfile>,
    ) -> Result<Self, FlowCellError> {
        if temps.len() != self.count {
            return Err(FlowCellError::InvalidConfig(format!(
                "{} temperature profiles for {} channels",
                temps.len(),
                self.count
            )));
        }
        self.per_channel_temperatures = Some(temps);
        self.models = OnceLock::new();
        Ok(self)
    }

    /// Removes per-channel temperatures (back to the template profile).
    pub fn without_channel_temperatures(mut self) -> Self {
        self.per_channel_temperatures = None;
        self.models = OnceLock::new();
        self
    }

    /// Applies an in-place retarget to the template **and** every
    /// cached per-channel model — the amortized path when one array
    /// serves a stream of operating points (Monte Carlo studies, design
    /// sweeps): geometry, flow and ASR updates ride the models'
    /// existing solve contexts instead of rebuilding them per sample.
    /// Retargets are bitwise-equal to cold builds (the
    /// [`CellModel::retarget_geometry`] family's contract), so a
    /// long-lived retargeted array and a freshly built one solve to
    /// identical bits.
    ///
    /// # Errors
    ///
    /// Propagates the first retarget error; failed models clear their
    /// contexts, so subsequent solves rebuild cold rather than serving
    /// stale coefficients.
    pub fn retarget_models<F>(&mut self, mut retarget: F) -> Result<(), FlowCellError>
    where
        F: FnMut(&mut CellModel) -> Result<(), FlowCellError>,
    {
        retarget(&mut self.template)?;
        if let Some(models) = self.models.get_mut() {
            for m in models {
                retarget(m)?;
            }
        }
        Ok(())
    }

    /// Re-points the per-channel temperature profiles **in place**:
    /// when the per-channel models are already built (and match the
    /// channel count) each one is refreshed through
    /// [`CellModel::retarget_temperature`] — station chemistry and
    /// operator re-stamps through existing storage, no new model
    /// builds; otherwise this falls back to storing the profiles for
    /// the next lazy build, exactly like
    /// [`CellArray::with_channel_temperatures`].
    ///
    /// # Errors
    ///
    /// [`FlowCellError::InvalidConfig`] on length mismatch (the array
    /// is unchanged); retarget errors as [`CellArray::retarget_models`].
    pub fn retarget_channel_temperatures(
        &mut self,
        temps: Vec<TemperatureProfile>,
    ) -> Result<(), FlowCellError> {
        if temps.len() != self.count {
            return Err(FlowCellError::InvalidConfig(format!(
                "{} temperature profiles for {} channels",
                temps.len(),
                self.count
            )));
        }
        match self.models.get_mut() {
            Some(models) if models.len() == temps.len() => {
                for (m, t) in models.iter_mut().zip(&temps) {
                    m.retarget_temperature(t.clone())?;
                }
                self.per_channel_temperatures = Some(temps);
            }
            _ => {
                self.per_channel_temperatures = Some(temps);
                self.models = OnceLock::new();
            }
        }
        Ok(())
    }

    /// The cached per-channel models, built on first use. The duct
    /// velocity profile is solved **once** on the template and shared by
    /// every per-temperature channel model (temperature is a
    /// coefficient; the geometry context survives it) — and because the
    /// template keeps its context across
    /// [`CellArray::with_channel_temperatures`], it is shared across
    /// temperature-variant arrays too.
    fn channel_models(&self) -> Result<&[CellModel], FlowCellError> {
        let models = bright_num::lazy::get_or_try_init(&self.models, || {
            match &self.per_channel_temperatures {
                None => Ok(vec![self.template.clone()]),
                Some(temps) => {
                    self.template.warm_geometry()?;
                    temps
                        .iter()
                        .map(|t| self.template.with_temperature(t.clone()))
                        .collect::<Result<Vec<_>, _>>()
                }
            }
        })?;
        Ok(models)
    }

    /// Number of **distinct** built geometry contexts (duct solutions)
    /// across the template and every cached per-channel model. Stays at
    /// 1 however many per-channel temperature variants are solved — the
    /// observable form of the shared duct solution.
    #[must_use]
    pub fn distinct_geometry_contexts(&self) -> usize {
        let mut ptrs: Vec<usize> = std::iter::once(&self.template)
            .chain(self.models.get().into_iter().flatten())
            .filter_map(CellModel::geometry_ptr)
            .collect();
        ptrs.sort_unstable();
        ptrs.dedup();
        ptrs.len()
    }

    /// Total array current at a terminal voltage.
    ///
    /// # Errors
    ///
    /// Propagates channel-solver errors.
    pub fn solve_at_voltage(&self, voltage: f64) -> Result<ArrayOperatingPoint, FlowCellError> {
        let models = self.channel_models()?;
        let total = if models.len() == 1 {
            self.count as f64 * models[0].solve_at_voltage(voltage)?.current().value()
        } else {
            solve_channels_parallel(models, voltage)?
        };
        Ok(ArrayOperatingPoint {
            voltage: Volt::new(voltage),
            current: Ampere::new(total),
            power: Volt::new(voltage) * Ampere::new(total),
        })
    }

    /// Terminal voltage when the array delivers `target` total current.
    ///
    /// # Errors
    ///
    /// [`FlowCellError::Infeasible`] if `target` exceeds the array's
    /// limiting current.
    pub fn solve_at_current(&self, target: Ampere) -> Result<ArrayOperatingPoint, FlowCellError> {
        if !(target.value() >= 0.0 && target.is_finite()) {
            return Err(FlowCellError::Infeasible(format!(
                "target current must be non-negative, got {target}"
            )));
        }
        let v_floor = 0.02;
        let at_floor = self.solve_at_voltage(v_floor)?;
        if target.value() > at_floor.current.value() {
            return Err(FlowCellError::Infeasible(format!(
                "target {target} exceeds array limiting current {:.3} A",
                at_floor.current.value()
            )));
        }
        let ocv = self.template.open_circuit_voltage()?.value() + 0.05;
        let v = brent(
            |v| match self.solve_at_voltage(v) {
                Ok(op) => op.current.value() - target.value(),
                Err(_) => f64::NAN,
            },
            v_floor,
            ocv,
            &RootOptions {
                x_tolerance: 1e-6,
                f_tolerance: (target.value() * 1e-6).max(1e-12),
                max_iterations: 100,
            },
        )
        .map_err(FlowCellError::from)?;
        self.solve_at_voltage(v)
    }

    /// The array polarization curve (Fig. 7) with `n` sweep points.
    ///
    /// # Errors
    ///
    /// Propagates channel-solver errors.
    pub fn polarization_curve(&self, n: usize) -> Result<PolarizationCurve, FlowCellError> {
        match &self.per_channel_temperatures {
            None => Ok(self
                .template
                .polarization_curve(n)?
                .scaled_parallel(self.count)),
            Some(_) => {
                if n < 2 {
                    return Err(FlowCellError::InvalidConfig(
                        "need at least 2 sweep points".into(),
                    ));
                }
                let ocv = self.template.open_circuit_voltage()?.value();
                let v_lo = 0.05_f64.min(ocv / 2.0);
                let voltages: Vec<f64> = (0..n)
                    .map(|k| v_lo + (ocv - 1e-4 - v_lo) * k as f64 / (n - 1) as f64)
                    .collect();
                // Channel-major sweep: each channel walks the whole
                // voltage ladder against its cached context with
                // warm-started root brackets; channels fan out across
                // worker threads.
                let models = self.channel_models()?;
                let per_channel = map_channels(models, |m| m.sweep_at_voltages(&voltages))?;
                let mut pts = Vec::with_capacity(n + 1);
                for (k, &v) in voltages.iter().enumerate() {
                    let total: f64 = per_channel
                        .iter()
                        .map(|sols| sols[k].current().value())
                        .sum();
                    pts.push(PolarizationPoint {
                        voltage: Volt::new(v),
                        current: Ampere::new(total),
                        power: Volt::new(v) * Ampere::new(total),
                    });
                }
                pts.push(PolarizationPoint {
                    voltage: Volt::new(ocv),
                    current: Ampere::new(0.0),
                    power: Watt::new(0.0),
                });
                PolarizationCurve::new(pts)
            }
        }
    }
}

/// Applies `f` to every channel model, fanning the channels across worker
/// threads (order-preserving). With a single worker — or a single model —
/// the work runs inline with zero thread overhead.
fn map_channels<R, F>(models: &[CellModel], f: F) -> Result<Vec<R>, FlowCellError>
where
    R: Send,
    F: Fn(&CellModel) -> Result<R, FlowCellError> + Sync,
{
    // Shared workspace-wide policy: BRIGHT_SWEEP_THREADS caps this inner
    // fan-out too, so outer scenario sweeps can serialize everything.
    map_channels_with_workers(models, bright_num::parallel::worker_count(models.len()), f)
}

/// [`map_channels`] with an explicit worker count (single-core hosts can
/// still exercise the threaded path, e.g. in tests). The execution
/// engine is shared workspace-wide: [`bright_num::parallel`].
fn map_channels_with_workers<R, F>(
    models: &[CellModel],
    workers: usize,
    f: F,
) -> Result<Vec<R>, FlowCellError>
where
    R: Send,
    F: Fn(&CellModel) -> Result<R, FlowCellError> + Sync,
{
    bright_num::parallel::parallel_map_indexed(models, workers, |_, m| f(m))
        .into_iter()
        .collect()
}

/// Solves many channel models at the same voltage on worker threads and
/// returns the summed current.
fn solve_channels_parallel(models: &[CellModel], voltage: f64) -> Result<f64, FlowCellError> {
    let currents = map_channels(models, |m| {
        Ok(m.solve_at_voltage(voltage)?.current().value())
    })?;
    Ok(currents.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use bright_units::Kelvin;

    #[test]
    fn uniform_array_scales_single_channel() {
        let array = presets::power7_array().unwrap();
        let single = presets::power7_channel().unwrap();
        let op = array.solve_at_voltage(1.0).unwrap();
        let i1 = single.solve_at_voltage(1.0).unwrap().current().value();
        assert!((op.current.value() - 88.0 * i1).abs() < 1e-9 * 88.0 * i1.max(1e-12));
    }

    #[test]
    fn per_channel_temperatures_change_the_answer() {
        let array = presets::power7_array().unwrap();
        let cold = array.solve_at_voltage(1.0).unwrap().current.value();
        let temps: Vec<TemperatureProfile> = (0..88)
            .map(|k| {
                // Center channels run hotter (under the cores).
                let t = 300.0 + 10.0 * (-((k as f64 - 43.5) / 20.0).powi(2)).exp();
                TemperatureProfile::Uniform(Kelvin::new(t))
            })
            .collect();
        let warm_array = presets::power7_array()
            .unwrap()
            .with_channel_temperatures(temps)
            .unwrap();
        let warm = warm_array.solve_at_voltage(1.0).unwrap().current.value();
        assert!(warm > cold, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn threaded_channel_map_matches_inline() {
        // Single-core hosts never take the threaded branch organically;
        // force it and compare against the inline result.
        let temps: Vec<TemperatureProfile> = (0..6)
            .map(|k| TemperatureProfile::Uniform(Kelvin::new(300.0 + k as f64)))
            .collect();
        let template = presets::power7_channel().unwrap();
        let models: Vec<CellModel> = temps
            .iter()
            .map(|t| template.with_temperature(t.clone()).unwrap())
            .collect();
        let inline = map_channels_with_workers(&models, 1, |m| {
            Ok(m.solve_at_voltage(1.0)?.current().value())
        })
        .unwrap();
        let threaded = map_channels_with_workers(&models, 3, |m| {
            Ok(m.solve_at_voltage(1.0)?.current().value())
        })
        .unwrap();
        assert_eq!(inline, threaded);
        // Errors propagate from worker threads too.
        let err = map_channels_with_workers(&models, 3, |m| m.solve_at_voltage(-1.0).map(|_| ()));
        assert!(err.is_err());
    }

    #[test]
    fn per_channel_models_share_one_duct_solution() {
        use crate::options::{SolverOptions, VelocityModel};
        use crate::CellGeometry;
        use bright_echem::vanadium;
        use bright_flow::RectChannel;
        use bright_units::{CubicMetersPerSecond, Meters};

        let channel = RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap();
        let template = CellModel::new(
            CellGeometry::new(channel),
            vanadium::power7_cell_chemistry(),
            CubicMetersPerSecond::from_milliliters_per_minute(7.68),
            TemperatureProfile::Uniform(Kelvin::new(300.0)),
            SolverOptions {
                ny: 16,
                nx: 40,
                velocity: VelocityModel::Duct { nz: 8 },
                ..SolverOptions::default()
            },
        )
        .unwrap();
        let temps = |base: f64| -> Vec<TemperatureProfile> {
            (0..5)
                .map(|k| TemperatureProfile::Uniform(Kelvin::new(base + k as f64)))
                .collect()
        };
        let array = CellArray::new(template, 5)
            .unwrap()
            .with_channel_temperatures(temps(300.0))
            .unwrap();
        array.solve_at_voltage(1.0).unwrap();
        assert_eq!(
            array.distinct_geometry_contexts(),
            1,
            "all channels must ride one duct solution"
        );
        // A temperature-variant array built from the same (already
        // solved) array keeps sharing the template's duct solution.
        let variant = array.clone().with_channel_temperatures(temps(305.0)).unwrap();
        variant.solve_at_voltage(1.0).unwrap();
        assert_eq!(variant.distinct_geometry_contexts(), 1);
        assert!(variant
            .template()
            .shares_geometry_with(array.template()));
    }

    #[test]
    fn retargeted_array_matches_fresh_build_bitwise() {
        let temps = |base: f64| -> Vec<TemperatureProfile> {
            (0..4)
                .map(|k| TemperatureProfile::Uniform(Kelvin::new(base + 2.0 * k as f64)))
                .collect()
        };
        let template = presets::power7_channel().unwrap();

        // Long-lived array: built at one operating point, solved (so
        // the per-channel models and their contexts exist), then moved
        // in place to a second point.
        let mut lived = CellArray::new(template.clone(), 4)
            .unwrap()
            .with_channel_temperatures(temps(300.0))
            .unwrap();
        lived.solve_at_voltage(1.0).unwrap();
        let flow2 =
            bright_units::CubicMetersPerSecond::from_milliliters_per_minute(9.0);
        lived
            .retarget_models(|m| {
                m.retarget_contact_asr(2.5e-6)?;
                m.retarget_flow(flow2)?;
                Ok(())
            })
            .unwrap();
        lived.retarget_channel_temperatures(temps(306.0)).unwrap();
        let warm = lived.solve_at_voltage(1.0).unwrap();

        // Fresh array built directly at the second operating point.
        let mut template2 = template;
        template2.retarget_contact_asr(2.5e-6).unwrap();
        template2.retarget_flow(flow2).unwrap();
        let fresh = CellArray::new(template2, 4)
            .unwrap()
            .with_channel_temperatures(temps(306.0))
            .unwrap()
            .solve_at_voltage(1.0)
            .unwrap();

        assert_eq!(warm.current.value().to_bits(), fresh.current.value().to_bits());
        assert_eq!(warm.power.value().to_bits(), fresh.power.value().to_bits());
    }

    #[test]
    fn retarget_channel_temperatures_checks_length_and_falls_back() {
        let template = presets::power7_channel().unwrap();
        let mut array = CellArray::new(template, 3).unwrap();
        // Models not built yet: the call stores profiles for the lazy
        // build, exactly like with_channel_temperatures.
        let temps: Vec<TemperatureProfile> = (0..3)
            .map(|k| TemperatureProfile::Uniform(Kelvin::new(301.0 + k as f64)))
            .collect();
        array.retarget_channel_temperatures(temps.clone()).unwrap();
        let stored = array.solve_at_voltage(1.0).unwrap();
        let built = CellArray::new(presets::power7_channel().unwrap(), 3)
            .unwrap()
            .with_channel_temperatures(temps)
            .unwrap()
            .solve_at_voltage(1.0)
            .unwrap();
        assert_eq!(stored.current.value().to_bits(), built.current.value().to_bits());
        // Length mismatch is rejected and leaves the array untouched.
        assert!(array
            .retarget_channel_temperatures(vec![TemperatureProfile::Uniform(
                Kelvin::new(300.0)
            )])
            .is_err());
        let again = array.solve_at_voltage(1.0).unwrap();
        assert_eq!(again.current.value().to_bits(), stored.current.value().to_bits());
    }

    #[test]
    fn solve_at_current_hits_target() {
        let array = presets::power7_array().unwrap();
        let op = array.solve_at_current(Ampere::new(2.0)).unwrap();
        assert!((op.current.value() - 2.0).abs() < 1e-4);
        assert!(op.voltage.value() > 0.5 && op.voltage.value() < 1.7);
    }

    #[test]
    fn infeasible_and_invalid_inputs() {
        let array = presets::power7_array().unwrap();
        assert!(array.solve_at_current(Ampere::new(1e6)).is_err());
        assert!(array.solve_at_current(Ampere::new(-1.0)).is_err());
        assert!(CellArray::new(presets::power7_channel().unwrap(), 0).is_err());
        let wrong_len = presets::power7_array()
            .unwrap()
            .with_channel_temperatures(vec![TemperatureProfile::Uniform(Kelvin::new(300.0)); 3]);
        assert!(wrong_len.is_err());
    }
}
