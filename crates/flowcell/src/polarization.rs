//! Polarization curves (cell voltage vs current) and operating points.

use crate::FlowCellError;
use bright_units::{Ampere, Volt, Watt};

/// One point of a polarization curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolarizationPoint {
    /// Cell (or array) terminal voltage.
    pub voltage: Volt,
    /// Delivered current (positive = discharge).
    pub current: Ampere,
    /// Delivered electrical power `V·I`.
    pub power: Watt,
}

/// A polarization curve: voltage monotonically decreasing with current.
///
/// This is the object plotted in Fig. 3 (validation cell, as current
/// *density*) and Fig. 7 (the 88-channel array, as absolute current).
#[derive(Debug, Clone, PartialEq)]
pub struct PolarizationCurve {
    points: Vec<PolarizationPoint>,
}

impl PolarizationCurve {
    /// Builds a curve from points; they are sorted by current ascending
    /// and validated for monotonicity.
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] if fewer than 2 points or
    /// if voltage fails to decrease (within a small tolerance) as current
    /// grows.
    pub fn new(mut points: Vec<PolarizationPoint>) -> Result<Self, FlowCellError> {
        if points.len() < 2 {
            return Err(FlowCellError::InvalidConfig(
                "polarization curve needs at least 2 points".into(),
            ));
        }
        points.sort_by(|a, b| {
            a.current
                .value()
                .partial_cmp(&b.current.value())
                .expect("finite currents")
                .then(
                    // Transport-limited plateaus produce exactly equal
                    // currents at different voltages; order those by
                    // descending voltage so the curve stays monotone.
                    b.voltage
                        .value()
                        .partial_cmp(&a.voltage.value())
                        .expect("finite voltages"),
                )
        });
        let v_scale = points
            .iter()
            .map(|p| p.voltage.value().abs())
            .fold(0.0_f64, f64::max);
        for w in points.windows(2) {
            if w[1].voltage.value() > w[0].voltage.value() + 1e-6 * v_scale.max(1.0) {
                return Err(FlowCellError::InvalidConfig(format!(
                    "voltage must decrease with current: {} A -> {} V after {} A -> {} V",
                    w[1].current.value(),
                    w[1].voltage.value(),
                    w[0].current.value(),
                    w[0].voltage.value()
                )));
            }
        }
        Ok(Self { points })
    }

    /// The curve's points, sorted by current ascending.
    pub fn points(&self) -> &[PolarizationPoint] {
        &self.points
    }

    /// Open-circuit voltage (the voltage of the lowest-current point,
    /// which the solvers place at exactly zero current).
    pub fn open_circuit_voltage(&self) -> Volt {
        self.points[0].voltage
    }

    /// Largest computed current (the transport-limited plateau when the
    /// sweep reaches it).
    pub fn limiting_current(&self) -> Ampere {
        self.points[self.points.len() - 1].current
    }

    /// Interpolates the current at a terminal voltage.
    ///
    /// Returns `None` outside the curve's voltage range.
    pub fn current_at_voltage(&self, voltage: f64) -> Option<Ampere> {
        let n = self.points.len();
        // Voltage decreases along `points`; find the bracketing pair.
        if voltage > self.points[0].voltage.value() || voltage < self.points[n - 1].voltage.value()
        {
            return None;
        }
        for w in self.points.windows(2) {
            let (v_hi, v_lo) = (w[0].voltage.value(), w[1].voltage.value());
            if voltage <= v_hi && voltage >= v_lo {
                if (v_hi - v_lo).abs() < 1e-15 {
                    return Some(w[0].current);
                }
                let t = (v_hi - voltage) / (v_hi - v_lo);
                return Some(Ampere::new(
                    w[0].current.value() + t * (w[1].current.value() - w[0].current.value()),
                ));
            }
        }
        None
    }

    /// Interpolates the terminal voltage at a delivered current.
    ///
    /// Returns `None` outside the curve's current range.
    pub fn voltage_at_current(&self, current: f64) -> Option<Volt> {
        let n = self.points.len();
        if current < self.points[0].current.value() || current > self.points[n - 1].current.value()
        {
            return None;
        }
        for w in self.points.windows(2) {
            let (i_lo, i_hi) = (w[0].current.value(), w[1].current.value());
            if current >= i_lo && current <= i_hi {
                if (i_hi - i_lo).abs() < 1e-15 {
                    return Some(w[0].voltage);
                }
                let t = (current - i_lo) / (i_hi - i_lo);
                return Some(Volt::new(
                    w[0].voltage.value() + t * (w[1].voltage.value() - w[0].voltage.value()),
                ));
            }
        }
        None
    }

    /// The maximum-power point of the curve.
    pub fn max_power_point(&self) -> PolarizationPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| {
                a.power
                    .value()
                    .partial_cmp(&b.power.value())
                    .expect("finite powers")
            })
            .expect("non-empty by construction")
    }

    /// Scales the curve to `n` identical cells electrically in parallel:
    /// same voltages, currents and powers multiplied by `n`.
    pub fn scaled_parallel(&self, n: usize) -> PolarizationCurve {
        let k = n as f64;
        PolarizationCurve {
            points: self
                .points
                .iter()
                .map(|p| PolarizationPoint {
                    voltage: p.voltage,
                    current: p.current * k,
                    power: p.power * k,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> PolarizationCurve {
        let pts = [(0.0, 1.6), (2.0, 1.3), (4.0, 1.0), (5.0, 0.5), (5.5, 0.1)]
            .iter()
            .map(|&(i, v)| PolarizationPoint {
                voltage: Volt::new(v),
                current: Ampere::new(i),
                power: Watt::new(v * i),
            })
            .collect();
        PolarizationCurve::new(pts).unwrap()
    }

    #[test]
    fn interpolation_both_ways() {
        let c = curve();
        assert!((c.current_at_voltage(1.15).unwrap().value() - 3.0).abs() < 1e-12);
        assert!((c.voltage_at_current(3.0).unwrap().value() - 1.15).abs() < 1e-12);
        // Exact nodes.
        assert!((c.current_at_voltage(1.0).unwrap().value() - 4.0).abs() < 1e-12);
        // Out of range.
        assert!(c.current_at_voltage(1.7).is_none());
        assert!(c.current_at_voltage(0.05).is_none());
        assert!(c.voltage_at_current(6.0).is_none());
    }

    #[test]
    fn summary_quantities() {
        let c = curve();
        assert_eq!(c.open_circuit_voltage().value(), 1.6);
        assert_eq!(c.limiting_current().value(), 5.5);
        let mpp = c.max_power_point();
        assert_eq!(mpp.current.value(), 4.0); // 4 W beats 2.6, 2.5, 0.55
    }

    #[test]
    fn parallel_scaling() {
        let c = curve().scaled_parallel(88);
        assert_eq!(c.limiting_current().value(), 5.5 * 88.0);
        assert_eq!(c.open_circuit_voltage().value(), 1.6);
        assert!((c.max_power_point().power.value() - 4.0 * 88.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nonmonotone() {
        let pts = vec![
            PolarizationPoint {
                voltage: Volt::new(1.0),
                current: Ampere::new(0.0),
                power: Watt::new(0.0),
            },
            PolarizationPoint {
                voltage: Volt::new(1.2),
                current: Ampere::new(1.0),
                power: Watt::new(1.2),
            },
        ];
        assert!(PolarizationCurve::new(pts).is_err());
        assert!(PolarizationCurve::new(vec![]).is_err());
    }
}
