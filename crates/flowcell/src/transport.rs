//! Streamwise-marching species transport in one half-channel.
//!
//! At the paper's operating points the species Péclet number is 10⁴–10⁶,
//! so axial diffusion is negligible and the steady transport equation
//! (paper eq. 12) reduces to a parabolic problem that can be marched down
//! the channel:
//!
//! ```text
//! u(y)·∂C/∂x = D·∂²C/∂y²,   D·∂C/∂y|wall = ±q,   ∂C/∂y|interface = 0
//! ```
//!
//! Each station performs implicit (unconditionally stable) cross-stream
//! diffusion solves. Because the discrete operator is *linear* in the wall
//! flux `q`, the station exposes the surface concentrations as exact
//! affine functions of `q` — the cell solver uses this to couple transport
//! with Butler–Volmer kinetics without nested iteration.

use crate::FlowCellError;
use bright_num::tridiag::{TridiagonalFactorization, TridiagonalWorkspace};

/// Affine response of a station's surface state to the wall molar flux
/// `q` (mol/(m²·s), positive = reactant consumed at the wall):
///
/// * reactant surface concentration: `r_surf(q) = r0 − q·sens`,
/// * product  surface concentration: `p_surf(q) = p0 + q·sens`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationResponse {
    /// Reactant surface concentration at `q = 0`.
    pub r0: f64,
    /// Product surface concentration at `q = 0`.
    pub p0: f64,
    /// Surface sensitivity to the wall flux (m²·s/m³ — concentration per
    /// unit flux).
    pub sens: f64,
    /// Largest flux that keeps the reactant surface concentration
    /// non-negative: `q_max = r0/sens`.
    pub q_max: f64,
}

impl StationResponse {
    /// Reactant surface concentration at flux `q`.
    #[inline]
    pub fn reactant_surface(&self, q: f64) -> f64 {
        (self.r0 - q * self.sens).max(0.0)
    }

    /// Product surface concentration at flux `q`.
    #[inline]
    pub fn product_surface(&self, q: f64) -> f64 {
        (self.p0 + q * self.sens).max(0.0)
    }
}

/// Precomputed cross-stream operator for one `(velocity profile,
/// diffusivity)` pair.
///
/// The implicit diffusion operator of [`HalfCellMarcher::prepare`]
/// depends only on the velocity profile, the grid spacings and the
/// diffusivity — none of which change across the stations of an
/// isothermal channel or across the voltage points of a polarization
/// sweep. Factoring it once (and solving the flux-sensitivity system
/// once, since that right-hand side is operator-determined too) turns
/// each station visit into two back-substitutions instead of three full
/// Thomas solves plus band assembly. This is the flow-cell counterpart
/// of the sparse symbolic/numeric split in `bright-num`.
#[derive(Debug, Clone)]
pub struct TransportOp {
    fac: TridiagonalFactorization,
    /// Response of the concentration field to a unit wall flux.
    sensitivity: Vec<f64>,
    /// Surface (wall-extrapolated) sensitivity, including the half-cell
    /// correction.
    sens_surface: f64,
    d: f64,
    dy: f64,
    dx: f64,
    // Band scratch reused across refreshes (the operator's "symbolic"
    // structure: sized storage that survives coefficient changes).
    lower: Vec<f64>,
    diag: Vec<f64>,
    upper: Vec<f64>,
}

impl TransportOp {
    /// Builds and factors the station operator.
    ///
    /// * `velocity` — streamwise velocity at the `ny` cell centers
    ///   (wall-first),
    /// * `dx` — station spacing (m),
    /// * `dy` — cross-stream cell size (m),
    /// * `d` — species diffusivity (m²/s).
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] for a non-positive
    /// diffusivity and [`FlowCellError::Numerical`] if the factorization
    /// fails.
    pub fn new(velocity: &[f64], dx: f64, dy: f64, d: f64) -> Result<Self, FlowCellError> {
        let ny = velocity.len();
        let mut op = Self {
            fac: TridiagonalFactorization::factor(
                &vec![0.0; ny.saturating_sub(1)],
                &vec![1.0; ny.max(1)],
                &vec![0.0; ny.saturating_sub(1)],
            )
            .map_err(FlowCellError::from)?,
            sensitivity: vec![0.0; ny],
            sens_surface: 0.0,
            d,
            dy,
            dx,
            lower: vec![0.0; ny.saturating_sub(1)],
            diag: vec![0.0; ny],
            upper: vec![0.0; ny.saturating_sub(1)],
        };
        op.refresh(velocity, dx, dy, d)?;
        Ok(op)
    }

    /// Re-stamps and re-eliminates the operator **in place** for new
    /// coefficient values (velocity scaling, grid spacings, diffusivity)
    /// on the same cross-stream grid. No allocation: the band storage
    /// and the factorization buffers survive. The arithmetic is the same
    /// as [`TransportOp::new`], so a refreshed operator is bitwise-equal
    /// to a freshly built one — the flow-cell counterpart of
    /// `CsrSymbolic::refresh_values` on the thermal side.
    ///
    /// # Errors
    ///
    /// * [`FlowCellError::InvalidConfig`] for a non-positive diffusivity
    ///   or a velocity profile of a different length,
    /// * [`FlowCellError::Numerical`] if the re-elimination fails (the
    ///   operator must then be refreshed again before use).
    pub fn refresh(
        &mut self,
        velocity: &[f64],
        dx: f64,
        dy: f64,
        d: f64,
    ) -> Result<(), FlowCellError> {
        if !d.is_finite() || d <= 0.0 {
            return Err(FlowCellError::InvalidConfig(format!(
                "diffusivity must be positive, got {d}"
            )));
        }
        let ny = self.sensitivity.len();
        if velocity.len() != ny {
            return Err(FlowCellError::InvalidConfig(format!(
                "velocity profile has {} cells for an operator sized {ny}",
                velocity.len()
            )));
        }
        let w = d / (dy * dy);
        for (j, u) in velocity.iter().enumerate() {
            let adv = u / dx;
            let mut dj = adv;
            if j > 0 {
                self.lower[j - 1] = -w;
                dj += w;
            }
            if j + 1 < ny {
                self.upper[j] = -w;
                dj += w;
            }
            self.diag[j] = dj;
        }
        self.fac
            .refactor(&self.lower, &self.diag, &self.upper)
            .map_err(FlowCellError::from)?;
        for s in self.sensitivity.iter_mut() {
            *s = 0.0;
        }
        self.sensitivity[0] = 1.0 / dy;
        self.fac
            .solve_in_place(&mut self.sensitivity)
            .map_err(FlowCellError::from)?;
        self.sens_surface = self.sensitivity[0] + dy / (2.0 * d);
        self.d = d;
        self.dy = dy;
        self.dx = dx;
        Ok(())
    }

    /// The diffusivity this operator was built for.
    #[inline]
    pub fn diffusivity(&self) -> f64 {
        self.d
    }
}

/// Marching transport solver for one electrolyte stream (half-channel).
///
/// The y-grid covers the half-width with `ny` cells; index 0 is adjacent
/// to the electrode wall, index `ny−1` to the co-laminar interface.
#[derive(Debug, Clone)]
pub struct HalfCellMarcher {
    ny: usize,
    dy: f64,
    dx: f64,
    velocity: Vec<f64>,
    reactant: Vec<f64>,
    product: Vec<f64>,
    // Station scratch state (filled by `prepare`).
    r_zero_flux: Vec<f64>,
    p_zero_flux: Vec<f64>,
    sensitivity: Vec<f64>,
    station_d: f64,
    ws: TridiagonalWorkspace,
    lower: Vec<f64>,
    diag: Vec<f64>,
    upper: Vec<f64>,
}

impl HalfCellMarcher {
    /// Creates a marcher.
    ///
    /// * `half_width` — stream width (m), electrode wall to interface,
    /// * `electrode_length` — marched length (m),
    /// * `nx` — number of stations,
    /// * `velocity` — streamwise velocity at the `ny` cell centers (m/s),
    ///   wall-first ordering,
    /// * `c_reactant_in`, `c_product_in` — inlet concentrations (mol/m³).
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] for degenerate dimensions
    /// or non-physical inputs.
    pub fn new(
        half_width: f64,
        electrode_length: f64,
        nx: usize,
        velocity: Vec<f64>,
        c_reactant_in: f64,
        c_product_in: f64,
    ) -> Result<Self, FlowCellError> {
        let ny = velocity.len();
        if ny < 4 {
            return Err(FlowCellError::InvalidConfig(format!(
                "need >= 4 cross-stream cells, got {ny}"
            )));
        }
        if nx < 2 {
            return Err(FlowCellError::InvalidConfig(format!(
                "need >= 2 stations, got {nx}"
            )));
        }
        if !half_width.is_finite()
            || half_width <= 0.0
            || !electrode_length.is_finite()
            || electrode_length <= 0.0
        {
            return Err(FlowCellError::InvalidConfig(format!(
                "bad domain {half_width} x {electrode_length}"
            )));
        }
        if velocity.iter().any(|u| !u.is_finite() || *u < 0.0) {
            return Err(FlowCellError::InvalidConfig(
                "velocity profile must be non-negative and finite".into(),
            ));
        }
        if velocity.iter().all(|u| *u == 0.0) {
            return Err(FlowCellError::InvalidConfig(
                "velocity profile is identically zero".into(),
            ));
        }
        if !c_reactant_in.is_finite()
            || c_reactant_in < 0.0
            || !c_product_in.is_finite()
            || c_product_in < 0.0
        {
            return Err(FlowCellError::InvalidConfig(
                "negative inlet concentration".into(),
            ));
        }
        Ok(Self {
            ny,
            dy: half_width / ny as f64,
            dx: electrode_length / nx as f64,
            velocity,
            reactant: vec![c_reactant_in; ny],
            product: vec![c_product_in; ny],
            r_zero_flux: vec![0.0; ny],
            p_zero_flux: vec![0.0; ny],
            sensitivity: vec![0.0; ny],
            station_d: 0.0,
            ws: TridiagonalWorkspace::new(ny),
            lower: vec![0.0; ny - 1],
            diag: vec![0.0; ny],
            upper: vec![0.0; ny - 1],
        })
    }

    /// Streamwise station spacing (m).
    #[inline]
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Current reactant profile (wall-first).
    #[inline]
    pub fn reactant(&self) -> &[f64] {
        &self.reactant
    }

    /// Current product profile (wall-first).
    #[inline]
    pub fn product(&self) -> &[f64] {
        &self.product
    }

    /// Convected reactant molar flow per unit channel height
    /// (mol/(m·s)): `Σ u_j·C_j·dy`. Used by conservation tests.
    pub fn convected_reactant_flux(&self) -> f64 {
        self.velocity
            .iter()
            .zip(&self.reactant)
            .map(|(u, c)| u * c)
            .sum::<f64>()
            * self.dy
    }

    /// Prepares the next station with diffusivity `d`, returning the
    /// affine surface response to the wall flux.
    ///
    /// # Errors
    ///
    /// * [`FlowCellError::InvalidConfig`] for a non-positive diffusivity,
    /// * [`FlowCellError::Numerical`] if a tridiagonal solve fails.
    pub fn prepare(&mut self, d: f64) -> Result<StationResponse, FlowCellError> {
        if !(d > 0.0 && d.is_finite()) {
            return Err(FlowCellError::InvalidConfig(format!(
                "diffusivity must be positive, got {d}"
            )));
        }
        let w = d / (self.dy * self.dy);
        for j in 0..self.ny {
            let adv = self.velocity[j] / self.dx;
            let mut diag = adv;
            if j > 0 {
                self.lower[j - 1] = -w;
                diag += w;
            }
            if j + 1 < self.ny {
                self.upper[j] = -w;
                diag += w;
            }
            self.diag[j] = diag;
        }
        // Wall cells with u ~ 0 would make the zero-flux row singular-ish;
        // the diffusion terms keep the diagonal positive for ny >= 2.

        // Zero-flux advance of both species.
        self.r_zero_flux.copy_from_slice(&self.reactant);
        for (rhs, u) in self.r_zero_flux.iter_mut().zip(&self.velocity) {
            *rhs *= u / self.dx;
        }
        self.ws
            .solve_in_place(&self.lower, &self.diag, &self.upper, &mut self.r_zero_flux)
            .map_err(FlowCellError::from)?;

        self.p_zero_flux.copy_from_slice(&self.product);
        for (rhs, u) in self.p_zero_flux.iter_mut().zip(&self.velocity) {
            *rhs *= u / self.dx;
        }
        self.ws
            .solve_in_place(&self.lower, &self.diag, &self.upper, &mut self.p_zero_flux)
            .map_err(FlowCellError::from)?;

        // Sensitivity: response to a unit wall flux (1 mol/(m^2 s) removed
        // from the wall cell).
        for s in self.sensitivity.iter_mut() {
            *s = 0.0;
        }
        self.sensitivity[0] = 1.0 / self.dy;
        self.ws
            .solve_in_place(&self.lower, &self.diag, &self.upper, &mut self.sensitivity)
            .map_err(FlowCellError::from)?;

        self.station_d = d;
        // Half-cell correction: extrapolate from the wall-cell center to
        // the wall itself using the imposed flux gradient q/D over dy/2.
        let sens_surface = self.sensitivity[0] + self.dy / (2.0 * d);
        let r0_surf = self.r_zero_flux[0];
        let p0_surf = self.p_zero_flux[0];
        Ok(StationResponse {
            r0: r0_surf,
            p0: p0_surf,
            sens: sens_surface,
            q_max: if sens_surface > 0.0 {
                r0_surf / sens_surface
            } else {
                f64::INFINITY
            },
        })
    }

    /// As [`HalfCellMarcher::prepare`], but against a precomputed
    /// [`TransportOp`]: two back-substitutions, no band assembly, no
    /// sensitivity solve. Produces the same response as `prepare` with
    /// the operator's diffusivity (up to factorization round-off).
    ///
    /// The operator must have been built from this marcher's geometry
    /// *and velocity profile* (the profile is baked into the factored
    /// bands and is too large to compare per station; the `ny`/`dy`/`dx`
    /// checks below catch geometry mixups, not a different profile on
    /// the same grid).
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::Numerical`] if the operator's grid does
    /// not match this marcher's.
    pub fn prepare_with(&mut self, op: &TransportOp) -> Result<StationResponse, FlowCellError> {
        if op.sensitivity.len() != self.ny
            || (op.dy - self.dy).abs() > 1e-15 * self.dy
            || (op.dx - self.dx).abs() > 1e-15 * self.dx
        {
            return Err(FlowCellError::Numerical(format!(
                "transport operator sized {} (dy {:.3e}, dx {:.3e}) vs marcher {} \
                 (dy {:.3e}, dx {:.3e})",
                op.sensitivity.len(),
                op.dy,
                op.dx,
                self.ny,
                self.dy,
                self.dx
            )));
        }
        // Zero-flux advance of both species.
        self.r_zero_flux.copy_from_slice(&self.reactant);
        for (rhs, u) in self.r_zero_flux.iter_mut().zip(&self.velocity) {
            *rhs *= u / self.dx;
        }
        op.fac
            .solve_in_place(&mut self.r_zero_flux)
            .map_err(FlowCellError::from)?;

        self.p_zero_flux.copy_from_slice(&self.product);
        for (rhs, u) in self.p_zero_flux.iter_mut().zip(&self.velocity) {
            *rhs *= u / self.dx;
        }
        op.fac
            .solve_in_place(&mut self.p_zero_flux)
            .map_err(FlowCellError::from)?;

        self.sensitivity.copy_from_slice(&op.sensitivity);
        self.station_d = op.d;
        let r0_surf = self.r_zero_flux[0];
        let p0_surf = self.p_zero_flux[0];
        Ok(StationResponse {
            r0: r0_surf,
            p0: p0_surf,
            sens: op.sens_surface,
            q_max: if op.sens_surface > 0.0 {
                r0_surf / op.sens_surface
            } else {
                f64::INFINITY
            },
        })
    }

    /// Commits the prepared station with the chosen wall flux `q`
    /// (mol/(m²·s), positive = reactant consumed).
    ///
    /// # Panics
    ///
    /// Panics (debug) if called before [`HalfCellMarcher::prepare`].
    pub fn commit(&mut self, q: f64) {
        debug_assert!(self.station_d > 0.0, "commit before prepare");
        for j in 0..self.ny {
            self.reactant[j] = (self.r_zero_flux[j] - q * self.sensitivity[j]).max(0.0);
            self.product[j] = (self.p_zero_flux[j] + q * self.sensitivity[j]).max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_marcher(ny: usize, nx: usize) -> HalfCellMarcher {
        HalfCellMarcher::new(100e-6, 22e-3, nx, vec![1.5; ny], 2000.0, 1.0).unwrap()
    }

    #[test]
    fn zero_flux_preserves_uniform_profile() {
        let mut m = uniform_marcher(32, 50);
        for _ in 0..50 {
            let resp = m.prepare(1.26e-10).unwrap();
            assert!((resp.r0 - 2000.0).abs() < 1e-6, "r0 = {}", resp.r0);
            m.commit(0.0);
        }
        assert!(m.reactant().iter().all(|c| (c - 2000.0).abs() < 1e-6));
        assert!(m.product().iter().all(|c| (c - 1.0).abs() < 1e-9));
    }

    #[test]
    fn constant_flux_develops_boundary_layer() {
        let mut m = uniform_marcher(64, 100);
        let q = 5e-3; // mol/(m^2 s)
        let mut last_surf = 2000.0;
        for _ in 0..100 {
            let resp = m.prepare(1.26e-10).unwrap();
            let surf = resp.reactant_surface(q);
            assert!(surf <= last_surf + 1e-9, "surface must deplete monotonically");
            last_surf = surf;
            m.commit(q);
        }
        // Depleted at the wall, untouched at the interface.
        assert!(m.reactant()[0] < 2000.0);
        assert!((m.reactant()[63] - 2000.0).abs() < 1.0);
        // Product accumulates at the wall.
        assert!(m.product()[0] > 1.0);
    }

    #[test]
    fn mass_conservation_under_wall_extraction() {
        let mut m = uniform_marcher(48, 80);
        let q = 2e-3;
        let inflow = m.convected_reactant_flux();
        for _ in 0..80 {
            m.prepare(4.13e-10).unwrap();
            m.commit(q);
        }
        let outflow = m.convected_reactant_flux();
        let extracted = q * m.dx() * 80.0;
        let balance = inflow - outflow - extracted;
        assert!(
            balance.abs() < 1e-3 * extracted,
            "imbalance {balance} vs extracted {extracted}"
        );
    }

    #[test]
    fn affine_response_matches_committed_state() {
        let mut a = uniform_marcher(32, 40);
        let mut b = uniform_marcher(32, 40);
        let q = 1e-3;
        // March `a` twice with q; predict `b`'s second-station surface via
        // the affine response, then commit and compare.
        let ra = a.prepare(1e-10).unwrap();
        a.commit(q);
        let rb = b.prepare(1e-10).unwrap();
        assert!((ra.r0 - rb.r0).abs() < 1e-12);
        b.commit(q);
        let ra2 = a.prepare(1e-10).unwrap();
        let rb2 = b.prepare(1e-10).unwrap();
        assert!((ra2.reactant_surface(q) - rb2.reactant_surface(q)).abs() < 1e-9);
    }

    #[test]
    fn q_max_prevents_negative_surface() {
        let mut m = uniform_marcher(32, 40);
        let resp = m.prepare(1e-10).unwrap();
        let almost = resp.q_max * 0.999999;
        assert!(resp.reactant_surface(almost) >= 0.0);
        assert!(resp.reactant_surface(resp.q_max * 1.1) == 0.0); // clamped
        m.commit(almost);
        assert!(m.reactant()[0] >= 0.0);
    }

    #[test]
    fn station_sensitivity_is_memoryless_but_depletion_accumulates() {
        // The affine sensitivity is a single-station response: with a
        // station-independent operator it is identical at every station.
        // The boundary-layer *memory* lives in the committed profiles:
        // under constant flux the zero-flux surface value r0 keeps
        // falling downstream.
        let mut m = uniform_marcher(64, 60);
        let first = m.prepare(1.26e-10).unwrap();
        m.commit(2e-3);
        let mut r0_prev = first.r0;
        for k in 0..58 {
            let resp = m.prepare(1.26e-10).unwrap();
            assert!(
                (resp.sens - first.sens).abs() < 1e-9 * first.sens,
                "sens changed at station {k}"
            );
            assert!(resp.r0 < r0_prev + 1e-9, "r0 must decay, station {k}");
            r0_prev = resp.r0;
            m.commit(2e-3);
        }
        assert!(r0_prev < first.r0 - 10.0, "significant depletion expected");
    }

    #[test]
    fn prepare_with_matches_prepare() {
        // The factored-operator path must reproduce the per-station
        // assembly path over a full march with extraction.
        let d = 1.26e-10;
        let q = 3e-3;
        let mut a = uniform_marcher(48, 60);
        let mut b = uniform_marcher(48, 60);
        let op = TransportOp::new(&vec![1.5; 48], a.dx(), 100e-6 / 48.0, d).unwrap();
        assert_eq!(op.diffusivity(), d);
        for station in 0..60 {
            let ra = a.prepare(d).unwrap();
            let rb = b.prepare_with(&op).unwrap();
            assert!(
                (ra.r0 - rb.r0).abs() < 1e-9 * ra.r0.abs().max(1.0),
                "station {station}: r0 {} vs {}",
                ra.r0,
                rb.r0
            );
            assert!((ra.sens - rb.sens).abs() < 1e-9 * ra.sens);
            a.commit(q);
            b.commit(q);
        }
        for (ca, cb) in a.reactant().iter().zip(b.reactant()) {
            assert!((ca - cb).abs() < 1e-6, "{ca} vs {cb}");
        }
    }

    #[test]
    fn refreshed_op_matches_fresh_build_bitwise() {
        // A refreshed operator must be indistinguishable from one built
        // cold at the new coefficients: same factorization, same
        // sensitivity, same marching behaviour.
        let dx = 22e-3 / 60.0;
        let dy = 100e-6 / 48.0;
        let slow: Vec<f64> = (0..48).map(|j| 0.8 + 0.01 * j as f64).collect();
        let fast: Vec<f64> = slow.iter().map(|u| u * 2.5).collect();
        let mut op = TransportOp::new(&slow, dx, dy, 1.26e-10).unwrap();
        // Flow change (velocity rescale), then a diffusivity change.
        for (v, d) in [(&fast, 1.26e-10), (&slow, 4.13e-10)] {
            op.refresh(v, dx, dy, d).unwrap();
            let fresh = TransportOp::new(v, dx, dy, d).unwrap();
            assert_eq!(op.fac, fresh.fac);
            assert_eq!(op.sensitivity, fresh.sensitivity);
            assert_eq!(op.sens_surface.to_bits(), fresh.sens_surface.to_bits());
            assert_eq!(op.diffusivity(), d);
        }
        // Wrong-sized profiles and bad diffusivities are rejected.
        assert!(op.refresh(&slow[..20], dx, dy, 1e-10).is_err());
        assert!(op.refresh(&slow, dx, dy, 0.0).is_err());
        assert!(op.refresh(&slow, dx, dy, f64::NAN).is_err());
    }

    #[test]
    fn transport_op_validates() {
        assert!(TransportOp::new(&[1.0; 8], 1e-3, 1e-5, 0.0).is_err());
        assert!(TransportOp::new(&[1.0; 8], 1e-3, 1e-5, f64::NAN).is_err());
        let op = TransportOp::new(&[1.0; 8], 1e-3, 1e-5, 1e-10).unwrap();
        let mut m = uniform_marcher(16, 4);
        // Mismatched operator size is rejected.
        assert!(m.prepare_with(&op).is_err());
        // Matching ny/dy but a different station spacing is rejected too
        // (dx is baked into the factored bands).
        let mut m32 = uniform_marcher(32, 40);
        let wrong_dx =
            TransportOp::new(&vec![1.5; 32], m32.dx() * 2.0, 100e-6 / 32.0, 1e-10).unwrap();
        assert!(m32.prepare_with(&wrong_dx).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(HalfCellMarcher::new(1e-4, 1e-2, 10, vec![1.0; 3], 1.0, 1.0).is_err());
        assert!(HalfCellMarcher::new(1e-4, 1e-2, 1, vec![1.0; 8], 1.0, 1.0).is_err());
        assert!(HalfCellMarcher::new(0.0, 1e-2, 10, vec![1.0; 8], 1.0, 1.0).is_err());
        assert!(HalfCellMarcher::new(1e-4, 1e-2, 10, vec![-1.0; 8], 1.0, 1.0).is_err());
        assert!(HalfCellMarcher::new(1e-4, 1e-2, 10, vec![0.0; 8], 1.0, 1.0).is_err());
        assert!(HalfCellMarcher::new(1e-4, 1e-2, 10, vec![1.0; 8], -1.0, 1.0).is_err());
        let mut m = uniform_marcher(8, 4);
        assert!(m.prepare(0.0).is_err());
        assert!(m.prepare(f64::NAN).is_err());
    }
}
