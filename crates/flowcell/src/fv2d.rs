//! Full elliptic 2-D finite-volume transport solver (cross-validation).
//!
//! The production path marches the parabolic (no axial diffusion) form of
//! the species equation. This module solves the *full* steady 2-D
//! convection–diffusion problem
//!
//! ```text
//! u(y)·∂C/∂x = D·(∂²C/∂x² + ∂²C/∂y²)
//! ```
//!
//! with upwind convection on a structured grid and a prescribed wall-flux
//! profile, using the sparse BiCGSTAB solver. Tests verify the marching
//! solver against it — the two discretizations agree to within a few
//! percent at the paper's Péclet numbers, which justifies the cheaper
//! marching scheme exactly as argued in DESIGN.md.

use crate::FlowCellError;
use bright_num::solvers::{bicgstab, IterOptions};
use bright_num::TripletMatrix;

/// Steady 2-D concentration field in one half-channel with a prescribed
/// wall flux.
#[derive(Debug, Clone)]
pub struct FullTransportSolution {
    nx: usize,
    ny: usize,
    /// Concentration at cell centers, x-major (`i·ny + j`), `j = 0` at the
    /// electrode wall.
    field: Vec<f64>,
}

impl FullTransportSolution {
    /// Solves the half-channel transport problem.
    ///
    /// * `half_width`, `length` — domain size (m),
    /// * `velocity` — streamwise velocity per y-cell (m/s), wall-first
    ///   (its length sets `ny`),
    /// * `nx` — number of x cells,
    /// * `d` — diffusivity (m²/s),
    /// * `c_in` — inlet concentration (mol/m³),
    /// * `wall_flux` — molar consumption flux per x-cell (mol/(m²·s)),
    ///   length `nx`.
    ///
    /// # Errors
    ///
    /// [`FlowCellError::InvalidConfig`] on inconsistent inputs,
    /// [`FlowCellError::Numerical`] if BiCGSTAB fails.
    pub fn solve(
        half_width: f64,
        length: f64,
        velocity: &[f64],
        nx: usize,
        d: f64,
        c_in: f64,
        wall_flux: &[f64],
    ) -> Result<Self, FlowCellError> {
        let ny = velocity.len();
        if ny < 4 || nx < 4 {
            return Err(FlowCellError::InvalidConfig(format!(
                "grid too small: {nx} x {ny}"
            )));
        }
        if wall_flux.len() != nx {
            return Err(FlowCellError::InvalidConfig(format!(
                "wall flux has {} entries for {nx} x-cells",
                wall_flux.len()
            )));
        }
        if !d.is_finite() || d <= 0.0 || !c_in.is_finite() || c_in < 0.0 {
            return Err(FlowCellError::InvalidConfig(
                "bad diffusivity or inlet concentration".into(),
            ));
        }
        let dx = length / nx as f64;
        let dy = half_width / ny as f64;
        let wx = d / (dx * dx);
        let wy = d / (dy * dy);
        let n = nx * ny;
        let idx = |i: usize, j: usize| i * ny + j;

        let mut t = TripletMatrix::with_capacity(n, n, 5 * n);
        let mut b = vec![0.0; n];
        // i/j index several arrays and feed `idx`; the range loop is the
        // clear form here.
        #[allow(clippy::needless_range_loop)]
        for i in 0..nx {
            for j in 0..ny {
                let me = idx(i, j);
                let u = velocity[j];
                let adv = u / dx;
                let mut diag = 0.0;

                // Upwind convection (flow in +x).
                diag += adv;
                if i > 0 {
                    t.push(me, idx(i - 1, j), -adv).map_err(FlowCellError::from)?;
                } else {
                    b[me] += adv * c_in;
                }

                // Axial diffusion: inlet Dirichlet ghost at dx/2, outflow
                // zero-gradient.
                if i > 0 {
                    t.push(me, idx(i - 1, j), -wx).map_err(FlowCellError::from)?;
                    diag += wx;
                } else {
                    diag += 2.0 * wx;
                    b[me] += 2.0 * wx * c_in;
                }
                if i + 1 < nx {
                    t.push(me, idx(i + 1, j), -wx).map_err(FlowCellError::from)?;
                    diag += wx;
                }

                // Cross-stream diffusion: flux wall at j = 0, insulated
                // interface at j = ny-1.
                if j > 0 {
                    t.push(me, idx(i, j - 1), -wy).map_err(FlowCellError::from)?;
                    diag += wy;
                } else {
                    b[me] -= wall_flux[i] / dy;
                }
                if j + 1 < ny {
                    t.push(me, idx(i, j + 1), -wy).map_err(FlowCellError::from)?;
                    diag += wy;
                }

                t.push(me, me, diag).map_err(FlowCellError::from)?;
            }
        }
        let a = t.to_csr();
        let x0 = vec![c_in; n];
        let sol = bicgstab(
            &a,
            &b,
            Some(&x0),
            &IterOptions {
                tolerance: 1e-11,
                max_iterations: 40_000,
                preconditioner: bright_num::PrecondSpec::Jacobi,
                ..IterOptions::default()
            },
        )
        .map_err(FlowCellError::from)?;
        Ok(Self {
            nx,
            ny,
            field: sol.x,
        })
    }

    /// Grid size `(nx, ny)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Concentration at cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nx && j < self.ny, "index out of bounds");
        self.field[i * self.ny + j]
    }

    /// Wall-adjacent concentration per x-cell.
    pub fn wall_profile(&self) -> Vec<f64> {
        (0..self.nx).map(|i| self.get(i, 0)).collect()
    }

    /// Outlet profile across the half-width.
    pub fn outlet_profile(&self) -> Vec<f64> {
        (0..self.ny).map(|j| self.get(self.nx - 1, j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::HalfCellMarcher;

    #[test]
    fn zero_flux_keeps_inlet_concentration() {
        let sol = FullTransportSolution::solve(
            100e-6,
            22e-3,
            &[1.5; 24],
            40,
            1.26e-10,
            2000.0,
            &vec![0.0; 40],
        )
        .unwrap();
        for i in 0..40 {
            for j in 0..24 {
                assert!((sol.get(i, j) - 2000.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn matches_marching_solver_at_high_peclet() {
        // Same constant wall flux through both discretizations.
        let ny = 48;
        let nx = 120;
        let q = 4e-3;
        let velocity = vec![1.5; ny];

        let full = FullTransportSolution::solve(
            100e-6,
            22e-3,
            &velocity,
            nx,
            1.26e-10,
            2000.0,
            &vec![q; nx],
        )
        .unwrap();

        let mut marcher =
            HalfCellMarcher::new(100e-6, 22e-3, nx, velocity, 2000.0, 1.0).unwrap();
        // Record the committed wall-cell value (same quantity the full
        // solver stores at its wall-adjacent cell centers).
        let mut march_wall = Vec::with_capacity(nx);
        for _ in 0..nx {
            marcher.prepare(1.26e-10).unwrap();
            marcher.commit(q);
            march_wall.push(marcher.reactant()[0]);
        }
        let full_wall = full.wall_profile();
        // Compare depletion (inlet-relative) midway and at the outlet.
        for &i in &[nx / 2, nx - 1] {
            let dep_full = 2000.0 - full_wall[i];
            let dep_march = 2000.0 - march_wall[i];
            let rel = (dep_full - dep_march).abs() / dep_full.max(1e-12);
            assert!(
                rel < 0.08,
                "station {i}: full {dep_full:.2} vs march {dep_march:.2} ({rel:.3})"
            );
        }
    }

    #[test]
    fn refreshed_transport_op_matches_full_solver() {
        // The in-place coefficient refresh must leave the marching
        // discretization agreeing with the full elliptic solve exactly
        // as a cold-built operator does: start from deliberately wrong
        // coefficients, refresh to the real ones, and run the same
        // high-Péclet comparison as `matches_marching_solver_at_high_peclet`.
        use crate::transport::TransportOp;

        let ny = 48;
        let nx = 120;
        let q = 4e-3;
        let d = 1.26e-10;
        let velocity = vec![1.5; ny];
        let dx = 22e-3 / nx as f64;
        let dy = 100e-6 / ny as f64;

        let full = FullTransportSolution::solve(
            100e-6,
            22e-3,
            &velocity,
            nx,
            d,
            2000.0,
            &vec![q; nx],
        )
        .unwrap();

        let wrong: Vec<f64> = velocity.iter().map(|u| u * 0.1).collect();
        let mut op = TransportOp::new(&wrong, dx * 2.0, dy, d * 10.0).unwrap();
        op.refresh(&velocity, dx, dy, d).unwrap();

        let mut marcher =
            HalfCellMarcher::new(100e-6, 22e-3, nx, velocity, 2000.0, 1.0).unwrap();
        let mut march_wall = Vec::with_capacity(nx);
        for _ in 0..nx {
            marcher.prepare_with(&op).unwrap();
            marcher.commit(q);
            march_wall.push(marcher.reactant()[0]);
        }
        let full_wall = full.wall_profile();
        for &i in &[nx / 2, nx - 1] {
            let dep_full = 2000.0 - full_wall[i];
            let dep_march = 2000.0 - march_wall[i];
            let rel = (dep_full - dep_march).abs() / dep_full.max(1e-12);
            assert!(
                rel < 0.08,
                "station {i}: full {dep_full:.2} vs march {dep_march:.2} ({rel:.3})"
            );
        }
    }

    #[test]
    fn mass_balance_of_full_solver() {
        let ny = 32;
        let nx = 60;
        let q = 2e-3;
        let u = 1.0;
        let sol = FullTransportSolution::solve(
            100e-6,
            10e-3,
            &vec![u; ny],
            nx,
            3e-10,
            1000.0,
            &vec![q; nx],
        )
        .unwrap();
        let dy = 100e-6 / ny as f64;
        let outflow: f64 = sol.outlet_profile().iter().map(|c| u * c * dy).sum();
        let inflow = u * 1000.0 * 100e-6;
        let extracted = q * 10e-3;
        let imbalance = (inflow - outflow - extracted).abs() / extracted;
        assert!(imbalance < 0.02, "imbalance {imbalance}");
    }

    #[test]
    fn validates_inputs() {
        assert!(FullTransportSolution::solve(
            1e-4, 1e-2, &[1.0; 2], 10, 1e-10, 1.0, &[0.0; 10]
        )
        .is_err());
        assert!(FullTransportSolution::solve(
            1e-4, 1e-2, &[1.0; 8], 10, 1e-10, 1.0, &[0.0; 5]
        )
        .is_err());
        assert!(FullTransportSolution::solve(
            1e-4, 1e-2, &[1.0; 8], 10, 0.0, 1.0, &[0.0; 10]
        )
        .is_err());
    }
}
