//! The coupled flow-cell solver.
//!
//! For a trial terminal voltage `V`, the solver marches down the channel;
//! at every station the local current density `i(x)` must satisfy the
//! voltage balance (paper Section II-A):
//!
//! ```text
//! V = U_eq(T) − η_act+mt,anode(i) + η_act+mt,cathode(i) − i·ASR(T)
//! ```
//!
//! where the activation and mass-transfer overpotentials come from the
//! Butler–Volmer inversion with *surface* concentrations, which the
//! transport marcher exposes as exact affine functions of the wall flux.
//! The scalar balance is solved per station with Brent's method; the
//! committed flux then advances both streams' concentration fields.

use crate::geometry::CellGeometry;
use crate::options::{SolverOptions, TemperatureProfile, VelocityModel};
use crate::polarization::{PolarizationCurve, PolarizationPoint};
use crate::transport::{HalfCellMarcher, TransportOp};
use crate::FlowCellError;
use std::sync::{Arc, OnceLock};
use bright_echem::electrolyte::area_specific_resistance;
use bright_echem::{CellChemistry, Electrolyte, SurfaceState};
use bright_flow::profile::{plane_poiseuille, DuctFlowSolution};
use bright_num::roots::{brent, RootOptions};
use bright_units::constants::FARADAY;
use bright_units::{
    Ampere, AmperePerSquareMeter, CubicMetersPerSecond, Kelvin, MolePerCubicMeter, SquareMeters,
    Volt, Watt,
};

/// A configured single-channel flow cell.
#[derive(Debug)]
pub struct CellModel {
    geometry: CellGeometry,
    chemistry: CellChemistry,
    flow: CubicMetersPerSecond,
    temperature: TemperatureProfile,
    options: SolverOptions,
    /// Geometry-keyed context (grid spacings + normalized velocity
    /// shape): survives every coefficient retarget and is *shared*
    /// across models of the same geometry — `with_temperature` /
    /// `with_flow` clones and array channels all point at one duct
    /// solution.
    geo: OnceLock<Arc<GeometryContext>>,
    /// Geometry builds this model itself paid for (0 when the context
    /// was inherited; incremented exactly when the `geo` cell's
    /// initializer runs, whether via a solve or `warm_geometry`).
    geo_builds_paid: std::sync::atomic::AtomicU64,
    /// Counters salvaged from contexts discarded by a failed refresh,
    /// folded into the next cold rebuild so [`CellContextStats`] stays
    /// monotonic over the model's life.
    stats_carry: CellContextStats,
    /// Lazily built solve context (coefficient state + counters),
    /// shared by every solve on this model and refreshed **in place**
    /// by the `retarget_*` mutators.
    ctx: OnceLock<SolveContext>,
}

impl Clone for CellModel {
    fn clone(&self) -> Self {
        // A clone shares the geometry `Arc` but paid for nothing:
        // its build attribution starts at zero (matching the
        // `with_temperature`/`with_flow` siblings), while the cloned
        // coefficient state and the remaining counters carry over.
        let mut ctx = self.ctx.clone();
        if let Some(c) = ctx.get_mut() {
            c.stats.geometry_builds = 0;
        }
        let mut stats_carry = self.stats_carry;
        stats_carry.geometry_builds = 0;
        Self {
            geometry: self.geometry,
            chemistry: self.chemistry.clone(),
            flow: self.flow,
            temperature: self.temperature.clone(),
            options: self.options.clone(),
            geo: self.geo.clone(),
            geo_builds_paid: std::sync::atomic::AtomicU64::new(0),
            stats_carry,
            ctx,
        }
    }
}

/// Per-station chemistry snapshot (temperature-resolved).
#[derive(Debug, Clone)]
struct StationChem {
    chem: CellChemistry,
    ocv: f64,
    asr: f64,
    t: Kelvin,
}

/// Counters of the geometry/coefficient context split. All values are
/// monotonic over a model's life and scoped to work *this model paid
/// for*: an inherited (shared) geometry context does not count as a
/// build here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellContextStats {
    /// Geometry contexts built by this model (duct-profile solves /
    /// velocity-shape evaluations). Stays 0 when the geometry was
    /// inherited from another model (a `with_*` sibling or a plain
    /// clone); never grows past 1 otherwise — coefficient retargets
    /// reuse it.
    pub geometry_builds: u64,
    /// Full cold coefficient-state builds (1 after the first solve;
    /// grows only if a failed refresh forces a rebuild).
    pub coefficient_builds: u64,
    /// In-place coefficient refreshes served by the `retarget_*`
    /// mutators.
    pub coefficient_refreshes: u64,
    /// `TransportOp` constructions (band allocation + first
    /// factorization). A flow/inlet/temperature retarget performs zero
    /// of these once the context is warm.
    pub op_builds: u64,
    /// In-place `TransportOp` value re-stamps (`TransportOp::refresh`):
    /// O(ny) re-eliminations through the operator's existing storage.
    pub op_refreshes: u64,
}

/// Geometry-keyed half of the solve context: everything that depends
/// only on the cell geometry and the discretization options. Immutable
/// once built, shared via `Arc` across coefficient retargets, sibling
/// models (`with_temperature`/`with_flow`) and array channels.
#[derive(Debug)]
pub(crate) struct GeometryContext {
    nx: usize,
    dx: f64,
    dy: f64,
    half_width: f64,
    electrode_length: f64,
    /// Normalized (unit-mean-velocity) height-averaged streamwise
    /// profile at the `ny` half-width cell centers, wall-first. The
    /// expensive duct Poisson solve lives here; coefficient states only
    /// rescale it by the mean velocity.
    shape_half: Vec<f64>,
}

/// Fingerprint of everything a [`GeometryContext`] is built from: the
/// channel dimensions and electrode coverage (bit patterns, so the key
/// is exact) plus the discretization/velocity half of the solver
/// options. Two models with equal keys build bitwise-identical
/// geometry contexts and can share one duct solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct GeometryKey {
    width_bits: u64,
    height_bits: u64,
    length_bits: u64,
    coverage_bits: u64,
    ny: usize,
    nx: usize,
    velocity_kind: u8,
    nz: usize,
}

impl GeometryKey {
    fn new(geometry: &CellGeometry, options: &SolverOptions) -> Self {
        let (ny, nx, velocity_kind, nz) = options.geometry_fingerprint();
        let ch = geometry.channel();
        Self {
            width_bits: ch.width().value().to_bits(),
            height_bits: ch.height().value().to_bits(),
            length_bits: ch.length().value().to_bits(),
            coverage_bits: geometry.electrode_coverage().to_bits(),
            ny,
            nx,
            velocity_kind,
            nz,
        }
    }
}

/// A concurrent, fingerprint-keyed cache of built geometry contexts.
///
/// Monte Carlo geometry sampling retargets a cached cell model across
/// thousands of channel dimensions; when the sampled dimensions are
/// quantized to a manufacturing grid, fingerprints collide constantly
/// and the expensive duct Poisson solve should be paid once per
/// *distinct* geometry, not once per sample. Workers share one cache
/// (it is `Sync`); [`CellModel::retarget_geometry`] consults it before
/// building. Hit/miss counters feed `McStats`.
#[derive(Debug, Default)]
pub struct GeometryCache {
    map: std::sync::Mutex<std::collections::HashMap<GeometryKey, Arc<GeometryContext>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl GeometryCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Duct-solve reuses served so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Geometry builds the cache could not avoid.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of distinct geometry contexts held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("geometry cache poisoned").len()
    }

    /// `true` when no context has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Seeds the cache with `model`'s built (or herewith built)
    /// geometry context, so later retargets back to this geometry hit.
    /// Neither counter moves: seeding is not a served request.
    ///
    /// # Errors
    ///
    /// Propagates duct-solver errors when the model had no context yet.
    pub fn warm_from(&self, model: &CellModel) -> Result<(), FlowCellError> {
        let geo = Arc::clone(model.geometry_context()?);
        let key = GeometryKey::new(&model.geometry, &model.options);
        self.map
            .lock()
            .expect("geometry cache poisoned")
            .entry(key)
            .or_insert(geo);
        Ok(())
    }

    /// Returns the cached context for the fingerprint of `(geometry,
    /// options)`, or builds, caches and returns it. The boolean is
    /// `true` when `build` ran (the caller paid for a duct solve).
    fn get_or_build(
        &self,
        geometry: &CellGeometry,
        options: &SolverOptions,
        build: impl FnOnce() -> Result<GeometryContext, FlowCellError>,
    ) -> Result<(Arc<GeometryContext>, bool), FlowCellError> {
        use std::sync::atomic::Ordering;
        let key = GeometryKey::new(geometry, options);
        if let Some(hit) = self.map.lock().expect("geometry cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), false));
        }
        // Build outside the lock — the duct solve is the long pole and
        // must not serialize unrelated lookups. A racing builder of the
        // same key wins the insert; both results are bitwise-identical
        // (pure functions of the fingerprint), so either Arc serves.
        let built = Arc::new(build()?);
        let mut map = self.map.lock().expect("geometry cache poisoned");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((Arc::clone(entry), true))
    }
}

/// One electrode stream's bank of factored transport operators:
/// a pool of distinct operators plus the station → pool index map
/// (consecutive equal-diffusivity stations share one operator, so the
/// isothermal case holds exactly one per side). Refreshes re-stamp the
/// pooled operators in place; the pool storage survives retargets.
#[derive(Debug, Clone, Default)]
struct OpBank {
    pool: Vec<TransportOp>,
    station_op: Vec<usize>,
    /// The per-station diffusivities the bank is currently stamped for
    /// (used to skip the re-stamp entirely when neither the velocity
    /// nor any diffusivity changed, e.g. an inlet-composition
    /// retarget).
    station_d: Vec<f64>,
}

impl OpBank {
    /// (Re)stamps the bank for per-station diffusivities `ds` over the
    /// given velocity profile. Pooled operators are refreshed in place;
    /// new operators are built only when the pool runs short (i.e. the
    /// retarget needs more *distinct* diffusivity runs than ever
    /// before — a shrink keeps the surplus operators warm for the next
    /// growth). No-op when nothing changed.
    fn stamp(
        &mut self,
        velocity: &[f64],
        dx: f64,
        dy: f64,
        ds: &[f64],
        velocity_changed: bool,
        stats: &mut CellContextStats,
    ) -> Result<(), FlowCellError> {
        if !velocity_changed && ds == self.station_d.as_slice() {
            return Ok(());
        }
        self.station_op.clear();
        let mut used = 0usize;
        for (k, &d) in ds.iter().enumerate() {
            let idx = if k > 0 && ds[k - 1] == d {
                used - 1
            } else {
                let i = used;
                if let Some(op) = self.pool.get_mut(i) {
                    op.refresh(velocity, dx, dy, d)?;
                    stats.op_refreshes += 1;
                } else {
                    self.pool.push(TransportOp::new(velocity, dx, dy, d)?);
                    stats.op_builds += 1;
                }
                used += 1;
                i
            };
            self.station_op.push(idx);
        }
        // Surplus pool entries (a shrink after a sampled profile) are
        // deliberately kept: they are never referenced by `station_op`
        // and are refreshed in place before any future reuse, so a
        // profile oscillating between shapes never rebuilds operators.
        self.station_d.clear();
        self.station_d.extend_from_slice(ds);
        Ok(())
    }

    /// The operator serving `station`.
    #[inline]
    fn op(&self, station: usize) -> &TransportOp {
        &self.pool[self.station_op[station]]
    }
}

/// Coefficient half of the solve context: everything that changes with
/// flow rate, inlet composition or temperature. Refreshed in place by
/// the `retarget_*` mutators; rebuilt cold only on the first solve (or
/// after a failed refresh).
#[derive(Debug, Clone)]
struct CoefficientState {
    v_mean: f64,
    velocity_half: Vec<f64>,
    stations: Vec<StationChem>,
    anode: OpBank,
    cathode: OpBank,
    /// Marcher skeletons: inlet-filled, never-marched prototypes cloned
    /// by every solve (skips per-solve validation and re-derivation).
    anode_proto: HalfCellMarcher,
    cathode_proto: HalfCellMarcher,
}

/// The full solve context: shared geometry + owned coefficients +
/// telemetry.
#[derive(Debug, Clone)]
struct SolveContext {
    geo: Arc<GeometryContext>,
    coef: CoefficientState,
    stats: CellContextStats,
}

/// The solved state of a cell at one operating point.
#[derive(Debug, Clone)]
pub struct CellSolution {
    voltage: Volt,
    current: Ampere,
    current_density: Vec<f64>,
    eta_anode: Vec<f64>,
    eta_cathode: Vec<f64>,
    electrode_area: SquareMeters,
    transport_limited_stations: usize,
}

impl CellSolution {
    /// Terminal voltage.
    #[inline]
    pub fn voltage(&self) -> Volt {
        self.voltage
    }

    /// Delivered current.
    #[inline]
    pub fn current(&self) -> Ampere {
        self.current
    }

    /// Delivered power `V·I`.
    #[inline]
    pub fn power(&self) -> Watt {
        self.voltage * self.current
    }

    /// Local current density per marching station (A/m²), inlet to outlet.
    pub fn current_density_profile(&self) -> &[f64] {
        &self.current_density
    }

    /// Mean current density over the electrode.
    pub fn mean_current_density(&self) -> AmperePerSquareMeter {
        self.current / self.electrode_area
    }

    /// Anode overpotential per station (V).
    pub fn anode_overpotential_profile(&self) -> &[f64] {
        &self.eta_anode
    }

    /// Cathode overpotential per station (V, negative in discharge).
    pub fn cathode_overpotential_profile(&self) -> &[f64] {
        &self.eta_cathode
    }

    /// Electrode geometric area used to convert current ↔ density.
    #[inline]
    pub fn electrode_area(&self) -> SquareMeters {
        self.electrode_area
    }

    /// Number of stations clamped at the local transport limit. Non-zero
    /// values indicate operation on the limiting-current plateau.
    #[inline]
    pub fn transport_limited_stations(&self) -> usize {
        self.transport_limited_stations
    }
}

impl CellModel {
    /// Creates a cell model.
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] for invalid options or a
    /// non-positive flow rate.
    pub fn new(
        geometry: CellGeometry,
        chemistry: CellChemistry,
        flow: CubicMetersPerSecond,
        temperature: TemperatureProfile,
        options: SolverOptions,
    ) -> Result<Self, FlowCellError> {
        options.validate()?;
        if !(flow.value() > 0.0 && flow.is_finite()) {
            return Err(FlowCellError::InvalidConfig(format!(
                "flow must be positive, got {flow}"
            )));
        }
        temperature.resample(options.nx)?;
        Ok(Self {
            geometry,
            chemistry,
            flow,
            temperature,
            options,
            geo: OnceLock::new(),
            geo_builds_paid: std::sync::atomic::AtomicU64::new(0),
            stats_carry: CellContextStats::default(),
            ctx: OnceLock::new(),
        })
    }

    /// The cell geometry.
    #[inline]
    pub fn geometry(&self) -> &CellGeometry {
        &self.geometry
    }

    /// The cell chemistry.
    #[inline]
    pub fn chemistry(&self) -> &CellChemistry {
        &self.chemistry
    }

    /// Per-channel volumetric flow rate.
    #[inline]
    pub fn flow(&self) -> CubicMetersPerSecond {
        self.flow
    }

    /// The temperature profile seen by the cell.
    #[inline]
    pub fn temperature(&self) -> &TemperatureProfile {
        &self.temperature
    }

    /// Solver options.
    #[inline]
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Returns a copy with a different temperature profile (used by the
    /// electro-thermal co-simulation loop). The copy **shares** this
    /// model's geometry context (velocity shape / duct solution) when it
    /// has been built — temperature is a coefficient, not geometry.
    ///
    /// # Errors
    ///
    /// As [`CellModel::new`].
    pub fn with_temperature(&self, temperature: TemperatureProfile) -> Result<Self, FlowCellError> {
        let mut model = Self::new(
            self.geometry,
            self.chemistry.clone(),
            self.flow,
            temperature,
            self.options.clone(),
        )?;
        model.geo = self.geo.clone();
        Ok(model)
    }

    /// Returns a copy with a different per-channel flow rate, sharing
    /// this model's geometry context like
    /// [`CellModel::with_temperature`].
    ///
    /// # Errors
    ///
    /// As [`CellModel::new`].
    pub fn with_flow(&self, flow: CubicMetersPerSecond) -> Result<Self, FlowCellError> {
        let mut model = Self::new(
            self.geometry,
            self.chemistry.clone(),
            flow,
            self.temperature.clone(),
            self.options.clone(),
        )?;
        model.geo = self.geo.clone();
        Ok(model)
    }

    /// Points this model at a different flow rate, refreshing the solve
    /// context **in place**: the geometry context (duct solution, grid)
    /// is untouched, the velocity profile is rescaled, and the factored
    /// transport operators are re-stamped through their existing storage
    /// — zero new `TransportOp` builds, zero duct-profile solves.
    /// Subsequent solves are bitwise-equal to a cold model built at the
    /// new flow.
    ///
    /// # Errors
    ///
    /// [`FlowCellError::InvalidConfig`] for a non-positive flow (the
    /// model is unchanged); refresh errors clear the context so the next
    /// solve rebuilds cold.
    pub fn retarget_flow(&mut self, flow: CubicMetersPerSecond) -> Result<(), FlowCellError> {
        if !(flow.value() > 0.0 && flow.is_finite()) {
            return Err(FlowCellError::InvalidConfig(format!(
                "flow must be positive, got {flow}"
            )));
        }
        self.flow = flow;
        self.refresh_context(false, true, true)
    }

    /// Points this model at a different temperature profile in place:
    /// station chemistry snapshots are rebuilt and the transport
    /// operators re-stamped for the new diffusivities — the geometry
    /// context and the velocity profile survive untouched.
    ///
    /// # Errors
    ///
    /// [`FlowCellError::InvalidConfig`] for a non-physical profile (the
    /// model is unchanged); refresh errors clear the context so the next
    /// solve rebuilds cold.
    pub fn retarget_temperature(
        &mut self,
        temperature: TemperatureProfile,
    ) -> Result<(), FlowCellError> {
        temperature.resample(self.options.nx)?;
        self.temperature = temperature;
        self.refresh_context(true, false, false)
    }

    /// Points this model at different inlet compositions in place:
    /// station chemistry (open-circuit voltages) and the marcher
    /// skeletons are rebuilt, while the velocity profile **and every
    /// factored transport operator** survive untouched (diffusivities
    /// are composition-independent).
    ///
    /// # Errors
    ///
    /// Refresh errors clear the context so the next solve rebuilds cold.
    pub fn retarget_inlets(
        &mut self,
        negative: Electrolyte,
        positive: Electrolyte,
    ) -> Result<(), FlowCellError> {
        self.chemistry.negative.inlet = negative;
        self.chemistry.positive.inlet = positive;
        self.refresh_context(true, false, true)
    }

    /// Points this model at a different channel geometry in place: the
    /// geometry context is swapped (served from `cache` when the
    /// fingerprint matches a previous build — the duct solve is then
    /// *not* repeated), and the whole coefficient state is refreshed
    /// against it through the existing storage. Subsequent solves are
    /// bitwise-equal to a cold model built at the new geometry. A
    /// retarget to the current geometry is a no-op.
    ///
    /// # Errors
    ///
    /// Duct-solver errors on a cache miss; refresh errors clear the
    /// context so the next solve rebuilds cold.
    pub fn retarget_geometry(
        &mut self,
        geometry: CellGeometry,
        cache: Option<&GeometryCache>,
    ) -> Result<(), FlowCellError> {
        if geometry == self.geometry {
            return Ok(());
        }
        self.geometry = geometry;
        let (new_geo, paid) = match cache {
            Some(cache) => {
                cache.get_or_build(&self.geometry, &self.options, || self.build_geometry())?
            }
            None => (Arc::new(self.build_geometry()?), true),
        };
        if paid {
            self.geo_builds_paid
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        self.geo = OnceLock::new();
        let _ = self.geo.set(Arc::clone(&new_geo));
        if self.ctx.get().is_none() {
            // Nothing warm to refresh; the next solve builds cold
            // against the (possibly cached) context installed above.
            return Ok(());
        }
        if let Some(ctx) = self.ctx.get_mut() {
            ctx.geo = new_geo;
            ctx.stats.geometry_builds = self
                .geo_builds_paid
                .load(std::sync::atomic::Ordering::Relaxed);
        }
        // Everything downstream of geometry changed: stations (new
        // electrode gap → new ASR), velocity (new cross-section and
        // shape), operators (new grid spacings), marchers (new grid).
        self.refresh_context(true, true, true)
    }

    /// Points this model at a different contact/electrode
    /// area-specific resistance (Ω·m²) in place: station chemistry
    /// snapshots are rebuilt with the new series term, while the
    /// velocity profile, transport operators and marchers all survive
    /// untouched. A retarget to the current value is a no-op.
    ///
    /// # Errors
    ///
    /// [`FlowCellError::InvalidConfig`] for a negative or non-finite
    /// value (the model is unchanged); refresh errors clear the context
    /// so the next solve rebuilds cold.
    pub fn retarget_contact_asr(&mut self, contact_asr: f64) -> Result<(), FlowCellError> {
        if !(contact_asr >= 0.0 && contact_asr.is_finite()) {
            return Err(FlowCellError::InvalidConfig(format!(
                "contact ASR must be non-negative, got {contact_asr}"
            )));
        }
        if contact_asr == self.options.contact_asr {
            return Ok(());
        }
        self.options.contact_asr = contact_asr;
        self.refresh_context(true, false, false)
    }

    /// Context telemetry: geometry builds, coefficient refreshes and
    /// transport-operator builds/refreshes paid by this model. All zero
    /// before any context work happens; monotonic afterwards (counters
    /// survive even a failed refresh's forced rebuild).
    #[must_use]
    pub fn context_stats(&self) -> CellContextStats {
        match self.ctx.get() {
            Some(c) => c.stats,
            None => CellContextStats {
                geometry_builds: self
                    .geo_builds_paid
                    .load(std::sync::atomic::Ordering::Relaxed),
                ..self.stats_carry
            },
        }
    }

    /// Builds the geometry context now (idempotent). Call before fanning
    /// `with_temperature` clones out of a template so every clone shares
    /// one duct solution instead of each paying for its own.
    ///
    /// # Errors
    ///
    /// Propagates duct-solver errors.
    pub fn warm_geometry(&self) -> Result<(), FlowCellError> {
        self.geometry_context().map(|_| ())
    }

    /// Builds the full solve context now (idempotent): geometry plus
    /// coefficient state. Long-lived holders (the co-simulation, the
    /// scenario engine's polarization workers) warm their template once
    /// so clones carry a built context and later `retarget_*` calls
    /// have something to refresh.
    ///
    /// # Errors
    ///
    /// As the first solve would: context-construction errors.
    pub fn warm(&self) -> Result<(), FlowCellError> {
        self.context().map(|_| ())
    }

    /// `true` when both models share one built geometry context (same
    /// `Arc`). `false` when either side has not built one yet.
    #[must_use]
    pub fn shares_geometry_with(&self, other: &CellModel) -> bool {
        match (self.geo.get(), other.geo.get()) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Address of the built geometry context, for structural
    /// distinct-context accounting ([`crate::CellArray`]).
    pub(crate) fn geometry_ptr(&self) -> Option<usize> {
        self.geo.get().map(|g| Arc::as_ptr(g) as usize)
    }

    /// Open-circuit voltage at the mean channel temperature.
    ///
    /// # Errors
    ///
    /// Propagates chemistry validation errors.
    pub fn open_circuit_voltage(&self) -> Result<Volt, FlowCellError> {
        Ok(self.chemistry.open_circuit_voltage(self.temperature.mean())?)
    }

    /// The cached solve context, built on first use.
    fn context(&self) -> Result<&SolveContext, FlowCellError> {
        bright_num::lazy::get_or_try_init(&self.ctx, || self.build_context())
    }

    /// The cached geometry context, built on first use. A build is
    /// charged to this model's `geo_builds_paid` counter, so the
    /// attribution is correct whether the build happens here, inside
    /// [`CellModel::warm_geometry`], or not at all (inherited `Arc`).
    fn geometry_context(&self) -> Result<&Arc<GeometryContext>, FlowCellError> {
        bright_num::lazy::get_or_try_init(&self.geo, || {
            let geo = self.build_geometry().map(Arc::new)?;
            self.geo_builds_paid
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(geo)
        })
    }

    /// Builds the geometry-keyed context: grid spacings plus the
    /// normalized velocity shape (the duct Poisson solve for
    /// [`VelocityModel::Duct`]).
    fn build_geometry(&self) -> Result<GeometryContext, FlowCellError> {
        let nx = self.options.nx;
        let ny = self.options.ny;
        let shape_half: Vec<f64> = match self.options.velocity {
            VelocityModel::PlanePoiseuille => (0..ny)
                .map(|j| {
                    let xi = (j as f64 + 0.5) / (2.0 * ny as f64);
                    plane_poiseuille(xi)
                })
                .collect(),
            VelocityModel::Duct { nz } => {
                let sol = DuctFlowSolution::solve(self.geometry.channel(), 2 * ny, nz)?;
                sol.width_profile()[..ny].to_vec()
            }
        };
        Ok(GeometryContext {
            nx,
            dx: self.geometry.electrode_length().value() / nx as f64,
            dy: self.geometry.stream_half_width().value() / ny as f64,
            half_width: self.geometry.stream_half_width().value(),
            electrode_length: self.geometry.electrode_length().value(),
            shape_half,
        })
    }

    /// Per-station chemistry snapshots at the current temperature
    /// profile (reusing a single snapshot when isothermal). Shared by
    /// the cold build and every in-place refresh so both produce
    /// bitwise-identical stations.
    fn compute_stations(&self) -> Result<Vec<StationChem>, FlowCellError> {
        let nx = self.options.nx;
        let temps = self.temperature.resample(nx)?;
        let uniform = temps.windows(2).all(|w| w[0] == w[1]);
        let mut stations = Vec::with_capacity(nx);
        let make = |t: Kelvin| -> Result<StationChem, FlowCellError> {
            let chem = self.chemistry.at_temperature(t)?;
            let ocv = chem.open_circuit_voltage(t)?.value();
            let sigma = chem.conductivity.at(t)?;
            let asr = area_specific_resistance(self.geometry.electrode_gap().value(), sigma)?
                + self.options.contact_asr;
            Ok(StationChem { chem, ocv, asr, t })
        };
        if uniform {
            let proto = make(temps[0])?;
            for _ in 0..nx {
                stations.push(proto.clone());
            }
        } else {
            for t in &temps {
                stations.push(make(*t)?);
            }
        }
        Ok(stations)
    }

    fn build_context(&self) -> Result<SolveContext, FlowCellError> {
        let geo = Arc::clone(self.geometry_context()?);
        // Resume from the counters of any context a failed refresh
        // discarded (geometry attribution comes from the atomic, which
        // survives such clears on its own).
        let carry = self.stats_carry;
        let mut stats = CellContextStats {
            geometry_builds: self
                .geo_builds_paid
                .load(std::sync::atomic::Ordering::Relaxed),
            coefficient_builds: carry.coefficient_builds + 1,
            coefficient_refreshes: carry.coefficient_refreshes,
            op_builds: carry.op_builds,
            op_refreshes: carry.op_refreshes,
        };
        let stations = self.compute_stations()?;
        let v_mean = self
            .flow
            .mean_velocity(self.geometry.channel().cross_section())
            .value();
        let velocity_half: Vec<f64> = geo.shape_half.iter().map(|s| s * v_mean).collect();
        let d_a: Vec<f64> = stations
            .iter()
            .map(|st| st.chem.negative.diffusivity.value())
            .collect();
        let d_c: Vec<f64> = stations
            .iter()
            .map(|st| st.chem.positive.diffusivity.value())
            .collect();
        let mut anode = OpBank::default();
        let mut cathode = OpBank::default();
        anode.stamp(&velocity_half, geo.dx, geo.dy, &d_a, true, &mut stats)?;
        cathode.stamp(&velocity_half, geo.dx, geo.dy, &d_c, true, &mut stats)?;
        let (anode_proto, cathode_proto) =
            make_marchers(&self.chemistry, &geo, &velocity_half)?;
        Ok(SolveContext {
            geo,
            coef: CoefficientState {
                v_mean,
                velocity_half,
                stations,
                anode,
                cathode,
                anode_proto,
                cathode_proto,
            },
            stats,
        })
    }

    /// Refreshes the built context in place after a coefficient change.
    /// `restamp_stations` rebuilds the chemistry snapshots,
    /// `restamp_velocity` rescales the velocity profile,
    /// `restamp_marchers` rebuilds the marcher skeletons (needed only
    /// when the velocity or the inlet compositions changed); the
    /// operator banks re-stamp themselves only when their inputs
    /// actually changed. A model without a built context just keeps
    /// the new parameters (the next solve builds cold — nothing to
    /// reuse yet). On error the context is cleared so the next solve
    /// rebuilds cold.
    fn refresh_context(
        &mut self,
        restamp_stations: bool,
        restamp_velocity: bool,
        restamp_marchers: bool,
    ) -> Result<(), FlowCellError> {
        if self.ctx.get().is_none() {
            return Ok(());
        }
        let result =
            self.refresh_context_inner(restamp_stations, restamp_velocity, restamp_marchers);
        if result.is_err() {
            // Salvage the counters so CellContextStats stays monotonic
            // across the forced cold rebuild.
            if let Some(ctx) = self.ctx.get() {
                self.stats_carry = ctx.stats;
                self.stats_carry.geometry_builds = 0;
            }
            self.ctx = OnceLock::new();
        }
        result
    }

    fn refresh_context_inner(
        &mut self,
        restamp_stations: bool,
        restamp_velocity: bool,
        restamp_marchers: bool,
    ) -> Result<(), FlowCellError> {
        let stations = if restamp_stations {
            Some(self.compute_stations()?)
        } else {
            None
        };
        let v_mean = self
            .flow
            .mean_velocity(self.geometry.channel().cross_section())
            .value();
        let ctx = self.ctx.get_mut().expect("checked by refresh_context");
        if let Some(stations) = stations {
            ctx.coef.stations = stations;
        }
        if restamp_velocity {
            ctx.coef.v_mean = v_mean;
            for (v, s) in ctx
                .coef
                .velocity_half
                .iter_mut()
                .zip(&ctx.geo.shape_half)
            {
                *v = s * v_mean;
            }
        }
        let d_a: Vec<f64> = ctx
            .coef
            .stations
            .iter()
            .map(|st| st.chem.negative.diffusivity.value())
            .collect();
        let d_c: Vec<f64> = ctx
            .coef
            .stations
            .iter()
            .map(|st| st.chem.positive.diffusivity.value())
            .collect();
        ctx.coef.anode.stamp(
            &ctx.coef.velocity_half,
            ctx.geo.dx,
            ctx.geo.dy,
            &d_a,
            restamp_velocity,
            &mut ctx.stats,
        )?;
        ctx.coef.cathode.stamp(
            &ctx.coef.velocity_half,
            ctx.geo.dx,
            ctx.geo.dy,
            &d_c,
            restamp_velocity,
            &mut ctx.stats,
        )?;
        if restamp_marchers {
            let (anode_proto, cathode_proto) =
                make_marchers(&self.chemistry, &ctx.geo, &ctx.coef.velocity_half)?;
            ctx.coef.anode_proto = anode_proto;
            ctx.coef.cathode_proto = cathode_proto;
        }
        ctx.stats.coefficient_refreshes += 1;
        Ok(())
    }

    fn marchers(&self, ctx: &SolveContext) -> (HalfCellMarcher, HalfCellMarcher) {
        (ctx.coef.anode_proto.clone(), ctx.coef.cathode_proto.clone())
    }

    fn solve_with_context(
        &self,
        voltage: f64,
        ctx: &SolveContext,
    ) -> Result<CellSolution, FlowCellError> {
        self.solve_with_context_warm(voltage, ctx, None)
    }

    /// Core marching solve. `hint`, when present, carries the station
    /// current densities of a previously solved nearby operating point
    /// (e.g. the neighbouring voltage of a polarization sweep); each
    /// station then brackets Brent's method around its hint instead of
    /// the full `[0, i_lim]` interval, cutting the kinetics evaluations
    /// roughly in half. The committed result satisfies the same residual
    /// tolerance as the cold path.
    fn solve_with_context_warm(
        &self,
        voltage: f64,
        ctx: &SolveContext,
        hint: Option<&[f64]>,
    ) -> Result<CellSolution, FlowCellError> {
        if !(voltage >= 0.0 && voltage.is_finite()) {
            return Err(FlowCellError::Infeasible(format!(
                "terminal voltage must be non-negative and finite, got {voltage}"
            )));
        }
        let nx = self.options.nx;
        let (mut anode, mut cathode) = self.marchers(ctx);
        let mut current_density = Vec::with_capacity(nx);
        let mut eta_anode = Vec::with_capacity(nx);
        let mut eta_cathode = Vec::with_capacity(nx);
        let mut clamped = 0usize;

        for (station, st) in ctx.coef.stations.iter().enumerate() {
            let n_neg = st.chem.negative.kinetics.couple().electrons() as f64;
            let n_pos = st.chem.positive.kinetics.couple().electrons() as f64;
            let resp_a = anode.prepare_with(ctx.coef.anode.op(station))?;
            let resp_c = cathode.prepare_with(ctx.coef.cathode.op(station))?;

            let track = self.options.track_products;
            let eval = |i: f64| -> Result<(f64, f64, f64), FlowCellError> {
                let q_a = i / (n_neg * FARADAY);
                let q_c = i / (n_pos * FARADAY);
                let surf_a = SurfaceState {
                    c_red: MolePerCubicMeter::new(resp_a.reactant_surface(q_a)),
                    c_ox: MolePerCubicMeter::new(if track {
                        resp_a.product_surface(q_a)
                    } else {
                        resp_a.p0
                    }),
                };
                let eta_a = st.chem.negative.kinetics.overpotential_for_current(
                    AmperePerSquareMeter::new(i),
                    surf_a,
                    st.t,
                )?;
                let surf_c = SurfaceState {
                    c_ox: MolePerCubicMeter::new(resp_c.reactant_surface(q_c)),
                    c_red: MolePerCubicMeter::new(if track {
                        resp_c.product_surface(q_c)
                    } else {
                        resp_c.p0
                    }),
                };
                let eta_c = st.chem.positive.kinetics.overpotential_for_current(
                    AmperePerSquareMeter::new(-i),
                    surf_c,
                    st.t,
                )?;
                let residual = st.ocv - eta_a + eta_c - i * st.asr - voltage;
                Ok((residual, eta_a, eta_c))
            };

            let (r0, ea0, ec0) = eval(0.0)?;
            let (i_k, ea_k, ec_k, was_clamped) = if r0 <= 0.0 {
                // Local balance wants zero (or charging) current: clamp.
                (0.0, ea0, ec0, false)
            } else {
                let i_hi = (1.0 - 1e-9)
                    * (resp_a.q_max * n_neg * FARADAY).min(resp_c.q_max * n_pos * FARADAY);
                let (r_hi, ea_hi, ec_hi) = eval(i_hi)?;
                if r_hi >= 0.0 {
                    // Even near-total surface depletion cannot absorb the
                    // driving force: transport-limited plateau.
                    (i_hi, ea_hi, ec_hi, true)
                } else {
                    // The residual decreases monotonically in `i`, so a
                    // hint from a nearby operating point splits the
                    // bracket by one sign probe.
                    let (mut lo, mut hi) = (0.0, i_hi);
                    if let Some(h) = hint {
                        let i_h = h
                            .get(station)
                            .copied()
                            .unwrap_or(0.0)
                            .clamp(0.0, i_hi * (1.0 - 1e-9));
                        if i_h > 0.0 {
                            let (r_h, _, _) = eval(i_h)?;
                            if r_h > 0.0 {
                                lo = i_h;
                            } else {
                                hi = i_h;
                            }
                        }
                    }
                    let root = brent(
                        |i| match eval(i) {
                            Ok((r, _, _)) => r,
                            Err(_) => f64::NAN,
                        },
                        lo,
                        hi,
                        &RootOptions {
                            x_tolerance: (i_hi * 1e-12).max(1e-14),
                            f_tolerance: 1e-10,
                            max_iterations: 200,
                        },
                    )
                    .map_err(FlowCellError::from)?;
                    let (_, ea, ec) = eval(root)?;
                    (root, ea, ec, false)
                }
            };
            if was_clamped {
                clamped += 1;
            }
            anode.commit(i_k / (n_neg * FARADAY));
            cathode.commit(i_k / (n_pos * FARADAY));
            current_density.push(i_k);
            eta_anode.push(ea_k);
            eta_cathode.push(ec_k);
        }

        let height = self.geometry.channel().height().value();
        let current: f64 = current_density.iter().sum::<f64>() * ctx.geo.dx * height;
        Ok(CellSolution {
            voltage: Volt::new(voltage),
            current: Ampere::new(current),
            current_density,
            eta_anode,
            eta_cathode,
            electrode_area: self.geometry.electrode_area(),
            transport_limited_stations: clamped,
        })
    }

    /// Solves the cell at a fixed terminal voltage.
    ///
    /// # Errors
    ///
    /// * [`FlowCellError::Infeasible`] for a negative/non-finite voltage,
    /// * solver errors propagated from transport and kinetics.
    pub fn solve_at_voltage(&self, voltage: f64) -> Result<CellSolution, FlowCellError> {
        let ctx = self.context()?;
        self.solve_with_context(voltage, ctx)
    }

    /// Solves a whole voltage ladder with one cached context, each point
    /// warm-starting its station root brackets from the previous point's
    /// current-density profile — the amortized path used by polarization
    /// sweeps and the sweep engines.
    ///
    /// # Errors
    ///
    /// As [`CellModel::solve_at_voltage`].
    pub fn sweep_at_voltages(&self, voltages: &[f64]) -> Result<Vec<CellSolution>, FlowCellError> {
        let ctx = self.context()?;
        let mut out: Vec<CellSolution> = Vec::with_capacity(voltages.len());
        let mut hint: Option<Vec<f64>> = None;
        for &v in voltages {
            let sol = self.solve_with_context_warm(v, ctx, hint.as_deref())?;
            hint = Some(sol.current_density.clone());
            out.push(sol);
        }
        Ok(out)
    }

    /// Solves the cell at a fixed delivered current by inverting the
    /// voltage–current map with Brent's method.
    ///
    /// # Errors
    ///
    /// [`FlowCellError::Infeasible`] if `target` exceeds the cell's
    /// limiting current (or is negative).
    pub fn solve_at_current(&self, target: Ampere) -> Result<CellSolution, FlowCellError> {
        if !(target.value() >= 0.0 && target.is_finite()) {
            return Err(FlowCellError::Infeasible(format!(
                "target current must be non-negative, got {target}"
            )));
        }
        let ctx = self.context()?;
        let v_floor = 0.02;
        let i_max = self.solve_with_context(v_floor, ctx)?.current.value();
        if target.value() > i_max {
            return Err(FlowCellError::Infeasible(format!(
                "target {target} exceeds limiting current {i_max:.4} A at {v_floor} V"
            )));
        }
        let ocv = ctx
            .coef
            .stations
            .iter()
            .map(|s| s.ocv)
            .fold(f64::NEG_INFINITY, f64::max);
        let v = brent(
            |v| match self.solve_with_context(v, ctx) {
                Ok(sol) => sol.current.value() - target.value(),
                Err(_) => f64::NAN,
            },
            v_floor,
            ocv,
            &RootOptions {
                x_tolerance: 1e-7,
                f_tolerance: (target.value() * 1e-7).max(1e-12),
                max_iterations: 100,
            },
        )
        .map_err(FlowCellError::from)?;
        self.solve_with_context(v, ctx)
    }

    /// Sweeps the polarization curve with `n ≥ 2` voltage points between
    /// 0.05 V and the open-circuit voltage (the exact OCV/zero-current
    /// point is appended).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; [`FlowCellError::InvalidConfig`] if
    /// `n < 2`.
    pub fn polarization_curve(&self, n: usize) -> Result<PolarizationCurve, FlowCellError> {
        if n < 2 {
            return Err(FlowCellError::InvalidConfig(
                "need at least 2 sweep points".into(),
            ));
        }
        let ctx = self.context()?;
        let ocv = ctx
            .coef
            .stations
            .iter()
            .map(|s| s.ocv)
            .sum::<f64>()
            / ctx.coef.stations.len() as f64;
        let v_lo = 0.05_f64.min(ocv / 2.0);
        let voltages: Vec<f64> = (0..n)
            .map(|k| v_lo + (ocv - 1e-4 - v_lo) * k as f64 / (n - 1) as f64)
            .collect();
        let mut points: Vec<PolarizationPoint> = self
            .sweep_at_voltages(&voltages)?
            .iter()
            .map(|sol| PolarizationPoint {
                voltage: sol.voltage(),
                current: sol.current(),
                power: sol.power(),
            })
            .collect();
        points.push(PolarizationPoint {
            voltage: Volt::new(ocv),
            current: Ampere::new(0.0),
            power: Watt::new(0.0),
        });
        PolarizationCurve::new(points)
    }
}

/// Builds the inlet-filled marcher skeletons for `chemistry` over
/// `velocity`. A free function so in-place refreshes can borrow the
/// chemistry and the context disjointly.
fn make_marchers(
    chemistry: &CellChemistry,
    geo: &GeometryContext,
    velocity: &[f64],
) -> Result<(HalfCellMarcher, HalfCellMarcher), FlowCellError> {
    let anode = HalfCellMarcher::new(
        geo.half_width,
        geo.electrode_length,
        geo.nx,
        velocity.to_vec(),
        chemistry.negative.inlet.c_red.value(),
        chemistry.negative.inlet.c_ox.value(),
    )?;
    let cathode = HalfCellMarcher::new(
        geo.half_width,
        geo.electrode_length,
        geo.nx,
        velocity.to_vec(),
        chemistry.positive.inlet.c_ox.value(),
        chemistry.positive.inlet.c_red.value(),
    )?;
    Ok((anode, cathode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn power7_channel_model() -> CellModel {
        presets::power7_channel().expect("valid preset")
    }

    #[test]
    fn ocv_is_the_zero_current_point() {
        let m = power7_channel_model();
        let ocv = m.open_circuit_voltage().unwrap().value();
        let sol = m.solve_at_voltage(ocv).unwrap();
        assert!(
            sol.current.value().abs() < 1e-6,
            "I at OCV = {}",
            sol.current
        );
    }

    #[test]
    fn current_increases_as_voltage_drops() {
        let m = power7_channel_model();
        let i_12 = m.solve_at_voltage(1.2).unwrap().current.value();
        let i_10 = m.solve_at_voltage(1.0).unwrap().current.value();
        let i_06 = m.solve_at_voltage(0.6).unwrap().current.value();
        assert!(i_12 < i_10 && i_10 < i_06, "{i_12} {i_10} {i_06}");
        assert!(i_10 > 0.0);
    }

    #[test]
    fn per_channel_current_at_1v_is_tens_of_milliamps() {
        // 88 channels supply ~amps in Fig. 7, so each channel delivers
        // tens of mA at 1 V.
        let m = power7_channel_model();
        let i = m.solve_at_voltage(1.0).unwrap().current.value();
        assert!(i > 0.01 && i < 0.2, "I = {i} A");
    }

    #[test]
    fn solve_at_current_roundtrips() {
        let m = power7_channel_model();
        let sol_v = m.solve_at_voltage(1.1).unwrap();
        let sol_i = m.solve_at_current(sol_v.current()).unwrap();
        assert!(
            (sol_i.voltage().value() - 1.1).abs() < 1e-3,
            "V = {}",
            sol_i.voltage()
        );
    }

    #[test]
    fn infeasible_current_is_rejected() {
        let m = power7_channel_model();
        assert!(matches!(
            m.solve_at_current(Ampere::new(100.0)),
            Err(FlowCellError::Infeasible(_))
        ));
        assert!(m.solve_at_current(Ampere::new(-1.0)).is_err());
    }

    #[test]
    fn polarization_curve_is_monotone_with_plateau() {
        let m = power7_channel_model();
        let curve = m.polarization_curve(12).unwrap();
        assert!(curve.open_circuit_voltage().value() > 1.5);
        // The low-voltage end approaches the transport-limited plateau:
        // current at 0.2 V within 25% of current at 0.05 V.
        let i_low = curve.current_at_voltage(0.2).unwrap().value();
        let i_lim = curve.limiting_current().value();
        assert!(i_low > 0.7 * i_lim, "knee: {i_low} vs plateau {i_lim}");
    }

    #[test]
    fn warmer_cell_delivers_more_current() {
        // The paper's Section III-B observation, at channel scale.
        let m = power7_channel_model();
        let warm = m
            .with_temperature(TemperatureProfile::Uniform(Kelvin::new(310.0)))
            .unwrap();
        let i_cold = m.solve_at_voltage(1.0).unwrap().current.value();
        let i_warm = warm.solve_at_voltage(1.0).unwrap().current.value();
        assert!(
            i_warm > i_cold * 1.05,
            "cold {i_cold} A vs warm {i_warm} A"
        );
    }

    #[test]
    fn higher_flow_raises_limiting_current() {
        let m = power7_channel_model();
        let half_flow = m.with_flow(m.flow() / 2.0).unwrap();
        let i_full = m.solve_at_voltage(0.3).unwrap().current.value();
        let i_half = half_flow.solve_at_voltage(0.3).unwrap().current.value();
        assert!(i_full > i_half, "full {i_full} vs half {i_half}");
    }

    #[test]
    fn transport_limit_flags_at_low_voltage() {
        let m = power7_channel_model();
        let sol = m.solve_at_voltage(0.05).unwrap();
        assert!(sol.transport_limited_stations() > 0 || sol.current.value() > 0.0);
    }

    #[test]
    fn current_density_decays_downstream() {
        // Boundary-layer growth starves downstream stations.
        let m = power7_channel_model();
        let sol = m.solve_at_voltage(0.6).unwrap();
        let prof = sol.current_density_profile();
        let inlet_avg: f64 = prof[..10].iter().sum::<f64>() / 10.0;
        let outlet_avg: f64 = prof[prof.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(
            inlet_avg > outlet_avg,
            "inlet {inlet_avg} vs outlet {outlet_avg}"
        );
    }

    fn assert_bitwise_equal(a: &CellSolution, b: &CellSolution) {
        assert_eq!(a.voltage().value().to_bits(), b.voltage().value().to_bits());
        assert_eq!(a.current().value().to_bits(), b.current().value().to_bits());
        assert_eq!(a.current_density_profile().len(), b.current_density_profile().len());
        for (x, y) in a
            .current_density_profile()
            .iter()
            .zip(b.current_density_profile())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(
            a.transport_limited_stations(),
            b.transport_limited_stations()
        );
    }

    #[test]
    fn retarget_flow_matches_cold_build_bitwise() {
        let mut m = power7_channel_model();
        m.solve_at_voltage(1.0).unwrap();
        let base = m.context_stats();
        assert_eq!(base.geometry_builds, 1);
        assert_eq!(base.coefficient_builds, 1);
        // Isothermal: exactly one distinct operator per side.
        assert_eq!(base.op_builds, 2);

        let half = m.flow() / 2.0;
        m.retarget_flow(half).unwrap();
        let warm = m.solve_at_voltage(0.9).unwrap();
        let cold = power7_channel_model()
            .with_flow(half)
            .unwrap()
            .solve_at_voltage(0.9)
            .unwrap();
        assert_bitwise_equal(&warm, &cold);

        let stats = m.context_stats();
        assert_eq!(stats.geometry_builds, 1, "flow retarget must not re-solve the duct");
        assert_eq!(stats.op_builds, base.op_builds, "flow retarget must not build operators");
        assert_eq!(stats.op_refreshes, 2, "one in-place re-stamp per side");
        assert_eq!(stats.coefficient_refreshes, 1);
        assert_eq!(stats.coefficient_builds, 1);
    }

    #[test]
    fn retarget_temperature_matches_cold_build_bitwise() {
        let mut m = power7_channel_model();
        m.solve_at_voltage(1.0).unwrap();
        let base = m.context_stats();
        let profile = TemperatureProfile::Sampled(vec![
            Kelvin::new(301.0),
            Kelvin::new(306.0),
            Kelvin::new(311.0),
        ]);
        m.retarget_temperature(profile.clone()).unwrap();
        let warm = m.solve_at_voltage(1.0).unwrap();
        let cold = power7_channel_model()
            .with_temperature(profile)
            .unwrap()
            .solve_at_voltage(1.0)
            .unwrap();
        assert_bitwise_equal(&warm, &cold);
        let stats = m.context_stats();
        assert_eq!(stats.geometry_builds, 1);
        // The sampled profile needs more distinct operators than the
        // isothermal pool held; those extra builds are honest — but the
        // pooled isothermal pair must have been refreshed, not rebuilt.
        assert!(stats.op_refreshes >= 2, "{stats:?}");
        // Back to isothermal: the pool logically shrinks, pure
        // refreshes again.
        let before = m.context_stats().op_builds;
        m.retarget_temperature(TemperatureProfile::Uniform(Kelvin::new(300.0)))
            .unwrap();
        let back = m.solve_at_voltage(1.0).unwrap();
        let cold_back = power7_channel_model().solve_at_voltage(1.0).unwrap();
        assert_bitwise_equal(&back, &cold_back);
        assert_eq!(m.context_stats().op_builds, before, "shrinking pool rebuilt ops");
        // Oscillating back to the sampled profile reuses the kept
        // surplus operators: still zero new builds.
        m.retarget_temperature(TemperatureProfile::Sampled(vec![
            Kelvin::new(301.0),
            Kelvin::new(306.0),
            Kelvin::new(311.0),
        ]))
        .unwrap();
        assert_eq!(
            m.context_stats().op_builds,
            before,
            "oscillating profile shapes must not rebuild operators"
        );
        let _ = base;
    }

    #[test]
    fn retarget_inlets_skips_operator_restamp_entirely() {
        use bright_echem::Electrolyte;
        use bright_units::MolePerCubicMeter;

        let mut m = power7_channel_model();
        m.solve_at_voltage(1.0).unwrap();
        let base = m.context_stats();
        let neg = Electrolyte::new(
            MolePerCubicMeter::new(150.0),
            MolePerCubicMeter::new(1500.0),
        )
        .unwrap();
        let pos = Electrolyte::new(
            MolePerCubicMeter::new(1500.0),
            MolePerCubicMeter::new(150.0),
        )
        .unwrap();
        m.retarget_inlets(neg, pos).unwrap();
        let warm = m.solve_at_voltage(1.0).unwrap();
        let stats = m.context_stats();
        assert_eq!(stats.op_builds, base.op_builds, "inlet retarget built ops");
        assert_eq!(
            stats.op_refreshes, base.op_refreshes,
            "inlet retarget must not even re-stamp (diffusivities unchanged)"
        );
        assert_eq!(stats.geometry_builds, 1);
        assert_eq!(stats.coefficient_refreshes, 1);

        // Cold model with the same inlets agrees bitwise.
        let mut chem = bright_echem::vanadium::power7_cell_chemistry();
        chem.negative.inlet = neg;
        chem.positive.inlet = pos;
        let cold = CellModel::new(
            *m.geometry(),
            chem,
            m.flow(),
            m.temperature().clone(),
            m.options().clone(),
        )
        .unwrap()
        .solve_at_voltage(1.0)
        .unwrap();
        assert_bitwise_equal(&warm, &cold);
    }

    #[test]
    fn retarget_geometry_matches_cold_build_bitwise() {
        use bright_flow::RectChannel;
        use bright_units::Meters;

        let mut m = power7_channel_model();
        m.solve_at_voltage(1.0).unwrap();
        assert_eq!(m.context_stats().geometry_builds, 1);

        let wider = CellGeometry::new(
            RectChannel::new(
                Meters::from_micrometers(210.0),
                Meters::from_micrometers(400.0),
                Meters::from_millimeters(22.0),
            )
            .unwrap(),
        );
        m.retarget_geometry(wider, None).unwrap();
        let warm = m.solve_at_voltage(0.9).unwrap();
        let cold = CellModel::new(
            wider,
            bright_echem::vanadium::power7_cell_chemistry(),
            m.flow(),
            m.temperature().clone(),
            m.options().clone(),
        )
        .unwrap()
        .solve_at_voltage(0.9)
        .unwrap();
        assert_bitwise_equal(&warm, &cold);
        let stats = m.context_stats();
        assert_eq!(stats.geometry_builds, 2, "uncached geometry retarget pays a build");
        assert_eq!(stats.coefficient_builds, 1, "coefficients refreshed, not rebuilt");
        assert_eq!(stats.coefficient_refreshes, 1);
        // Retargeting to the current geometry is free.
        m.retarget_geometry(wider, None).unwrap();
        assert_eq!(m.context_stats().geometry_builds, 2);
        assert_eq!(m.context_stats().coefficient_refreshes, 1);
    }

    #[test]
    fn geometry_cache_shares_duct_solves_across_retargets() {
        use bright_flow::RectChannel;
        use bright_units::Meters;

        let geom = |w_um: f64| {
            CellGeometry::new(
                RectChannel::new(
                    Meters::from_micrometers(w_um),
                    Meters::from_micrometers(400.0),
                    Meters::from_millimeters(22.0),
                )
                .unwrap(),
            )
        };
        let cache = GeometryCache::new();
        let mut m = power7_channel_model();
        m.solve_at_voltage(1.0).unwrap();
        cache.warm_from(&m).unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 1));

        // Oscillate between two sampled geometries: one miss each,
        // every revisit a hit — the model never pays a second build
        // for a fingerprint the cache has seen.
        for (i, w) in [210.0, 220.0, 210.0, 220.0, 200.0].iter().enumerate() {
            m.retarget_geometry(geom(*w), Some(&cache)).unwrap();
            m.solve_at_voltage(1.0).unwrap();
            let _ = i;
        }
        assert_eq!(cache.misses(), 2, "only two distinct new fingerprints");
        assert_eq!(cache.hits(), 3, "revisits (incl. the seeded base) are hits");
        assert_eq!(cache.len(), 3);
        assert_eq!(
            m.context_stats().geometry_builds,
            1 + 2,
            "builds paid: the cold one plus the two cache misses"
        );
        // Cached revisit agrees bitwise with a cold model.
        m.retarget_geometry(geom(210.0), Some(&cache)).unwrap();
        let warm = m.solve_at_voltage(0.9).unwrap();
        let cold = CellModel::new(
            geom(210.0),
            bright_echem::vanadium::power7_cell_chemistry(),
            m.flow(),
            m.temperature().clone(),
            m.options().clone(),
        )
        .unwrap()
        .solve_at_voltage(0.9)
        .unwrap();
        assert_bitwise_equal(&warm, &cold);
    }

    #[test]
    fn retarget_contact_asr_matches_cold_build_bitwise() {
        let mut m = power7_channel_model();
        m.solve_at_voltage(1.0).unwrap();
        let base = m.context_stats();

        m.retarget_contact_asr(2e-4).unwrap();
        let warm = m.solve_at_voltage(1.0).unwrap();
        let cold = CellModel::new(
            *m.geometry(),
            bright_echem::vanadium::power7_cell_chemistry(),
            m.flow(),
            m.temperature().clone(),
            SolverOptions {
                contact_asr: 2e-4,
                ..m.options().clone()
            },
        )
        .unwrap()
        .solve_at_voltage(1.0)
        .unwrap();
        assert_bitwise_equal(&warm, &cold);
        // ASR is a series term in the station balance: higher resistance
        // must cost current at fixed voltage.
        assert!(warm.current().value() < m.retarget_contact_asr(0.0).map(|()| {
            m.solve_at_voltage(1.0).unwrap().current().value()
        }).unwrap());

        let stats = m.context_stats();
        assert_eq!(stats.geometry_builds, 1);
        assert_eq!(stats.op_builds, base.op_builds, "ASR retarget must not touch operators");
        assert_eq!(stats.op_refreshes, base.op_refreshes, "diffusivities unchanged: no re-stamp");
        assert_eq!(stats.coefficient_refreshes, 2);
        // Invalid values are rejected without touching the model.
        assert!(m.retarget_contact_asr(-1.0).is_err());
        assert!(m.retarget_contact_asr(f64::NAN).is_err());
        assert_eq!(m.options().contact_asr, 0.0);
    }

    #[test]
    fn sibling_models_share_one_geometry_context() {
        let m = power7_channel_model();
        m.warm_geometry().unwrap();
        let warm = m
            .with_temperature(TemperatureProfile::Uniform(Kelvin::new(310.0)))
            .unwrap();
        let throttled = m.with_flow(m.flow() / 3.0).unwrap();
        assert!(m.shares_geometry_with(&warm));
        assert!(m.shares_geometry_with(&throttled));
        // Shared geometry is telemetry-visible: the siblings never pay
        // for a duct solve of their own.
        warm.solve_at_voltage(1.0).unwrap();
        assert_eq!(warm.context_stats().geometry_builds, 0);
        // A fresh model without sharing pays for its own.
        let fresh = power7_channel_model();
        fresh.solve_at_voltage(1.0).unwrap();
        assert!(!m.shares_geometry_with(&fresh));
        assert_eq!(fresh.context_stats().geometry_builds, 1);
    }

    #[test]
    fn warm_geometry_build_is_attributed_to_the_payer() {
        // Warming geometry before the first solve must not hide the
        // duct build from the telemetry.
        let m = power7_channel_model();
        m.warm_geometry().unwrap();
        m.solve_at_voltage(1.0).unwrap();
        assert_eq!(m.context_stats().geometry_builds, 1);
        // A clone shares the Arc and paid nothing: no double-counting.
        assert_eq!(m.clone().context_stats().geometry_builds, 0);
    }

    #[test]
    fn retarget_before_first_solve_is_a_plain_parameter_update() {
        let mut m = power7_channel_model();
        let half = m.flow() / 2.0;
        m.retarget_flow(half).unwrap();
        assert_eq!(m.context_stats(), CellContextStats::default());
        let warm = m.solve_at_voltage(0.9).unwrap();
        let cold = power7_channel_model()
            .with_flow(half)
            .unwrap()
            .solve_at_voltage(0.9)
            .unwrap();
        assert_bitwise_equal(&warm, &cold);
    }

    #[test]
    fn counters_survive_a_failed_refresh() {
        // A refresh that errors clears the context (the next solve
        // rebuilds cold) — but the telemetry must stay monotonic: the
        // rebuild resumes from the salvaged counters.
        let mut m = power7_channel_model();
        m.solve_at_voltage(1.0).unwrap();
        m.retarget_flow(m.flow() / 2.0).unwrap();
        let before = m.context_stats();
        assert_eq!(before.coefficient_refreshes, 1);

        // Inject a refresh failure past the public validation: a
        // non-physical temperature assigned directly (same-module test
        // access) makes compute_stations error inside the refresh.
        m.temperature = TemperatureProfile::Uniform(Kelvin::new(f64::INFINITY));
        assert!(m.refresh_context(true, false, false).is_err());
        assert_eq!(
            m.context_stats().coefficient_refreshes,
            before.coefficient_refreshes,
            "salvaged counters must persist while no context is built"
        );

        m.temperature = TemperatureProfile::Uniform(Kelvin::new(300.0));
        m.solve_at_voltage(1.0).unwrap();
        let after = m.context_stats();
        assert_eq!(after.coefficient_builds, 2, "forced rebuild must count");
        assert_eq!(after.coefficient_refreshes, before.coefficient_refreshes);
        assert!(after.op_builds >= before.op_builds);
        assert!(after.op_refreshes >= before.op_refreshes);
        assert_eq!(after.geometry_builds, 1, "geometry survives the clear");
        // And the model keeps working: further retargets refresh again.
        m.retarget_flow(m.flow() * 2.0).unwrap();
        assert_eq!(m.context_stats().coefficient_refreshes, 2);
    }

    #[test]
    fn retarget_rejects_bad_inputs_and_keeps_state() {
        let mut m = power7_channel_model();
        let i_before = m.solve_at_voltage(1.0).unwrap().current().value();
        assert!(m.retarget_flow(CubicMetersPerSecond::new(0.0)).is_err());
        assert!(m.retarget_flow(CubicMetersPerSecond::new(f64::NAN)).is_err());
        assert!(m
            .retarget_temperature(TemperatureProfile::Uniform(Kelvin::new(-3.0)))
            .is_err());
        let i_after = m.solve_at_voltage(1.0).unwrap().current().value();
        assert_eq!(i_before.to_bits(), i_after.to_bits());
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = power7_channel_model();
        assert!(m.solve_at_voltage(-0.1).is_err());
        assert!(m.solve_at_voltage(f64::NAN).is_err());
        assert!(m.polarization_curve(1).is_err());
        assert!(m
            .with_flow(CubicMetersPerSecond::new(0.0))
            .is_err());
    }
}
