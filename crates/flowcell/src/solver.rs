//! The coupled flow-cell solver.
//!
//! For a trial terminal voltage `V`, the solver marches down the channel;
//! at every station the local current density `i(x)` must satisfy the
//! voltage balance (paper Section II-A):
//!
//! ```text
//! V = U_eq(T) − η_act+mt,anode(i) + η_act+mt,cathode(i) − i·ASR(T)
//! ```
//!
//! where the activation and mass-transfer overpotentials come from the
//! Butler–Volmer inversion with *surface* concentrations, which the
//! transport marcher exposes as exact affine functions of the wall flux.
//! The scalar balance is solved per station with Brent's method; the
//! committed flux then advances both streams' concentration fields.

use crate::geometry::CellGeometry;
use crate::options::{SolverOptions, TemperatureProfile, VelocityModel};
use crate::polarization::{PolarizationCurve, PolarizationPoint};
use crate::transport::{HalfCellMarcher, TransportOp};
use crate::FlowCellError;
use std::sync::{Arc, OnceLock};
use bright_echem::electrolyte::area_specific_resistance;
use bright_echem::{CellChemistry, SurfaceState};
use bright_flow::profile::{plane_poiseuille, DuctFlowSolution};
use bright_num::roots::{brent, RootOptions};
use bright_units::constants::FARADAY;
use bright_units::{
    Ampere, AmperePerSquareMeter, CubicMetersPerSecond, Kelvin, MolePerCubicMeter, SquareMeters,
    Volt, Watt,
};

/// A configured single-channel flow cell.
#[derive(Debug, Clone)]
pub struct CellModel {
    geometry: CellGeometry,
    chemistry: CellChemistry,
    flow: CubicMetersPerSecond,
    temperature: TemperatureProfile,
    options: SolverOptions,
    /// Lazily built solve context (station chemistry, velocity profile,
    /// factored transport operators), shared by every solve on this
    /// model. Rebuilt automatically by `with_*` since those construct a
    /// fresh model.
    ctx: OnceLock<SolveContext>,
}

/// Per-station chemistry snapshot (temperature-resolved).
#[derive(Debug, Clone)]
struct StationChem {
    chem: CellChemistry,
    ocv: f64,
    asr: f64,
    t: Kelvin,
}

/// Precomputed solve context shared by all voltage points of a sweep:
/// per-station chemistry snapshots plus the factored cross-stream
/// transport operators of both electrode streams (stations with equal
/// diffusivity share one operator via `Arc`, so the isothermal case
/// factors exactly once per side).
#[derive(Debug, Clone)]
struct SolveContext {
    stations: Vec<StationChem>,
    velocity_half: Vec<f64>,
    dx: f64,
    anode_ops: Vec<Arc<TransportOp>>,
    cathode_ops: Vec<Arc<TransportOp>>,
}

/// The solved state of a cell at one operating point.
#[derive(Debug, Clone)]
pub struct CellSolution {
    voltage: Volt,
    current: Ampere,
    current_density: Vec<f64>,
    eta_anode: Vec<f64>,
    eta_cathode: Vec<f64>,
    electrode_area: SquareMeters,
    transport_limited_stations: usize,
}

impl CellSolution {
    /// Terminal voltage.
    #[inline]
    pub fn voltage(&self) -> Volt {
        self.voltage
    }

    /// Delivered current.
    #[inline]
    pub fn current(&self) -> Ampere {
        self.current
    }

    /// Delivered power `V·I`.
    #[inline]
    pub fn power(&self) -> Watt {
        self.voltage * self.current
    }

    /// Local current density per marching station (A/m²), inlet to outlet.
    pub fn current_density_profile(&self) -> &[f64] {
        &self.current_density
    }

    /// Mean current density over the electrode.
    pub fn mean_current_density(&self) -> AmperePerSquareMeter {
        self.current / self.electrode_area
    }

    /// Anode overpotential per station (V).
    pub fn anode_overpotential_profile(&self) -> &[f64] {
        &self.eta_anode
    }

    /// Cathode overpotential per station (V, negative in discharge).
    pub fn cathode_overpotential_profile(&self) -> &[f64] {
        &self.eta_cathode
    }

    /// Electrode geometric area used to convert current ↔ density.
    #[inline]
    pub fn electrode_area(&self) -> SquareMeters {
        self.electrode_area
    }

    /// Number of stations clamped at the local transport limit. Non-zero
    /// values indicate operation on the limiting-current plateau.
    #[inline]
    pub fn transport_limited_stations(&self) -> usize {
        self.transport_limited_stations
    }
}

impl CellModel {
    /// Creates a cell model.
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] for invalid options or a
    /// non-positive flow rate.
    pub fn new(
        geometry: CellGeometry,
        chemistry: CellChemistry,
        flow: CubicMetersPerSecond,
        temperature: TemperatureProfile,
        options: SolverOptions,
    ) -> Result<Self, FlowCellError> {
        options.validate()?;
        if !(flow.value() > 0.0 && flow.is_finite()) {
            return Err(FlowCellError::InvalidConfig(format!(
                "flow must be positive, got {flow}"
            )));
        }
        temperature.resample(options.nx)?;
        Ok(Self {
            geometry,
            chemistry,
            flow,
            temperature,
            options,
            ctx: OnceLock::new(),
        })
    }

    /// The cell geometry.
    #[inline]
    pub fn geometry(&self) -> &CellGeometry {
        &self.geometry
    }

    /// The cell chemistry.
    #[inline]
    pub fn chemistry(&self) -> &CellChemistry {
        &self.chemistry
    }

    /// Per-channel volumetric flow rate.
    #[inline]
    pub fn flow(&self) -> CubicMetersPerSecond {
        self.flow
    }

    /// The temperature profile seen by the cell.
    #[inline]
    pub fn temperature(&self) -> &TemperatureProfile {
        &self.temperature
    }

    /// Solver options.
    #[inline]
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Returns a copy with a different temperature profile (used by the
    /// electro-thermal co-simulation loop).
    ///
    /// # Errors
    ///
    /// As [`CellModel::new`].
    pub fn with_temperature(&self, temperature: TemperatureProfile) -> Result<Self, FlowCellError> {
        Self::new(
            self.geometry,
            self.chemistry.clone(),
            self.flow,
            temperature,
            self.options.clone(),
        )
    }

    /// Returns a copy with a different per-channel flow rate.
    ///
    /// # Errors
    ///
    /// As [`CellModel::new`].
    pub fn with_flow(&self, flow: CubicMetersPerSecond) -> Result<Self, FlowCellError> {
        Self::new(
            self.geometry,
            self.chemistry.clone(),
            flow,
            self.temperature.clone(),
            self.options.clone(),
        )
    }

    /// Open-circuit voltage at the mean channel temperature.
    ///
    /// # Errors
    ///
    /// Propagates chemistry validation errors.
    pub fn open_circuit_voltage(&self) -> Result<Volt, FlowCellError> {
        Ok(self.chemistry.open_circuit_voltage(self.temperature.mean())?)
    }

    /// The cached solve context, built on first use.
    fn context(&self) -> Result<&SolveContext, FlowCellError> {
        bright_num::lazy::get_or_try_init(&self.ctx, || self.build_context())
    }

    fn build_context(&self) -> Result<SolveContext, FlowCellError> {
        let nx = self.options.nx;
        let ny = self.options.ny;
        let temps = self.temperature.resample(nx)?;

        // Per-station chemistry; reuse a single snapshot when isothermal.
        let uniform = temps.windows(2).all(|w| w[0] == w[1]);
        let mut stations = Vec::with_capacity(nx);
        let make = |t: Kelvin| -> Result<StationChem, FlowCellError> {
            let chem = self.chemistry.at_temperature(t)?;
            let ocv = chem.open_circuit_voltage(t)?.value();
            let sigma = chem.conductivity.at(t)?;
            let asr = area_specific_resistance(self.geometry.electrode_gap().value(), sigma)?
                + self.options.contact_asr;
            Ok(StationChem { chem, ocv, asr, t })
        };
        if uniform {
            let proto = make(temps[0])?;
            for _ in 0..nx {
                stations.push(proto.clone());
            }
        } else {
            for t in &temps {
                stations.push(make(*t)?);
            }
        }

        // Height-averaged velocity profile across the half width.
        let v_mean = self
            .flow
            .mean_velocity(self.geometry.channel().cross_section())
            .value();
        let velocity_half: Vec<f64> = match self.options.velocity {
            VelocityModel::PlanePoiseuille => (0..ny)
                .map(|j| {
                    let xi = (j as f64 + 0.5) / (2.0 * ny as f64);
                    v_mean * plane_poiseuille(xi)
                })
                .collect(),
            VelocityModel::Duct { nz } => {
                let sol = DuctFlowSolution::solve(self.geometry.channel(), 2 * ny, nz)?;
                sol.width_profile()[..ny]
                    .iter()
                    .map(|u| u * v_mean)
                    .collect()
            }
        };
        // Factor the cross-stream transport operators once per distinct
        // diffusivity (equal-temperature stations share one `Arc`).
        let dx = self.geometry.electrode_length().value() / nx as f64;
        let dy = self.geometry.stream_half_width().value() / ny as f64;
        let mut anode_ops: Vec<Arc<TransportOp>> = Vec::with_capacity(nx);
        let mut cathode_ops: Vec<Arc<TransportOp>> = Vec::with_capacity(nx);
        for st in &stations {
            let d_a = st.chem.negative.diffusivity.value();
            let d_c = st.chem.positive.diffusivity.value();
            let op_a = match anode_ops.last() {
                Some(prev) if prev.diffusivity() == d_a => Arc::clone(prev),
                _ => Arc::new(TransportOp::new(&velocity_half, dx, dy, d_a)?),
            };
            let op_c = match cathode_ops.last() {
                Some(prev) if prev.diffusivity() == d_c => Arc::clone(prev),
                _ => Arc::new(TransportOp::new(&velocity_half, dx, dy, d_c)?),
            };
            anode_ops.push(op_a);
            cathode_ops.push(op_c);
        }
        Ok(SolveContext {
            stations,
            velocity_half,
            dx,
            anode_ops,
            cathode_ops,
        })
    }

    fn marchers(
        &self,
        ctx: &SolveContext,
    ) -> Result<(HalfCellMarcher, HalfCellMarcher), FlowCellError> {
        let half_w = self.geometry.stream_half_width().value();
        let len = self.geometry.electrode_length().value();
        let anode = HalfCellMarcher::new(
            half_w,
            len,
            self.options.nx,
            ctx.velocity_half.clone(),
            self.chemistry.negative.inlet.c_red.value(),
            self.chemistry.negative.inlet.c_ox.value(),
        )?;
        let cathode = HalfCellMarcher::new(
            half_w,
            len,
            self.options.nx,
            ctx.velocity_half.clone(),
            self.chemistry.positive.inlet.c_ox.value(),
            self.chemistry.positive.inlet.c_red.value(),
        )?;
        Ok((anode, cathode))
    }

    fn solve_with_context(
        &self,
        voltage: f64,
        ctx: &SolveContext,
    ) -> Result<CellSolution, FlowCellError> {
        self.solve_with_context_warm(voltage, ctx, None)
    }

    /// Core marching solve. `hint`, when present, carries the station
    /// current densities of a previously solved nearby operating point
    /// (e.g. the neighbouring voltage of a polarization sweep); each
    /// station then brackets Brent's method around its hint instead of
    /// the full `[0, i_lim]` interval, cutting the kinetics evaluations
    /// roughly in half. The committed result satisfies the same residual
    /// tolerance as the cold path.
    fn solve_with_context_warm(
        &self,
        voltage: f64,
        ctx: &SolveContext,
        hint: Option<&[f64]>,
    ) -> Result<CellSolution, FlowCellError> {
        if !(voltage >= 0.0 && voltage.is_finite()) {
            return Err(FlowCellError::Infeasible(format!(
                "terminal voltage must be non-negative and finite, got {voltage}"
            )));
        }
        let nx = self.options.nx;
        let (mut anode, mut cathode) = self.marchers(ctx)?;
        let mut current_density = Vec::with_capacity(nx);
        let mut eta_anode = Vec::with_capacity(nx);
        let mut eta_cathode = Vec::with_capacity(nx);
        let mut clamped = 0usize;

        for (station, st) in ctx.stations.iter().enumerate() {
            let n_neg = st.chem.negative.kinetics.couple().electrons() as f64;
            let n_pos = st.chem.positive.kinetics.couple().electrons() as f64;
            let resp_a = anode.prepare_with(&ctx.anode_ops[station])?;
            let resp_c = cathode.prepare_with(&ctx.cathode_ops[station])?;

            let track = self.options.track_products;
            let eval = |i: f64| -> Result<(f64, f64, f64), FlowCellError> {
                let q_a = i / (n_neg * FARADAY);
                let q_c = i / (n_pos * FARADAY);
                let surf_a = SurfaceState {
                    c_red: MolePerCubicMeter::new(resp_a.reactant_surface(q_a)),
                    c_ox: MolePerCubicMeter::new(if track {
                        resp_a.product_surface(q_a)
                    } else {
                        resp_a.p0
                    }),
                };
                let eta_a = st.chem.negative.kinetics.overpotential_for_current(
                    AmperePerSquareMeter::new(i),
                    surf_a,
                    st.t,
                )?;
                let surf_c = SurfaceState {
                    c_ox: MolePerCubicMeter::new(resp_c.reactant_surface(q_c)),
                    c_red: MolePerCubicMeter::new(if track {
                        resp_c.product_surface(q_c)
                    } else {
                        resp_c.p0
                    }),
                };
                let eta_c = st.chem.positive.kinetics.overpotential_for_current(
                    AmperePerSquareMeter::new(-i),
                    surf_c,
                    st.t,
                )?;
                let residual = st.ocv - eta_a + eta_c - i * st.asr - voltage;
                Ok((residual, eta_a, eta_c))
            };

            let (r0, ea0, ec0) = eval(0.0)?;
            let (i_k, ea_k, ec_k, was_clamped) = if r0 <= 0.0 {
                // Local balance wants zero (or charging) current: clamp.
                (0.0, ea0, ec0, false)
            } else {
                let i_hi = (1.0 - 1e-9)
                    * (resp_a.q_max * n_neg * FARADAY).min(resp_c.q_max * n_pos * FARADAY);
                let (r_hi, ea_hi, ec_hi) = eval(i_hi)?;
                if r_hi >= 0.0 {
                    // Even near-total surface depletion cannot absorb the
                    // driving force: transport-limited plateau.
                    (i_hi, ea_hi, ec_hi, true)
                } else {
                    // The residual decreases monotonically in `i`, so a
                    // hint from a nearby operating point splits the
                    // bracket by one sign probe.
                    let (mut lo, mut hi) = (0.0, i_hi);
                    if let Some(h) = hint {
                        let i_h = h
                            .get(station)
                            .copied()
                            .unwrap_or(0.0)
                            .clamp(0.0, i_hi * (1.0 - 1e-9));
                        if i_h > 0.0 {
                            let (r_h, _, _) = eval(i_h)?;
                            if r_h > 0.0 {
                                lo = i_h;
                            } else {
                                hi = i_h;
                            }
                        }
                    }
                    let root = brent(
                        |i| match eval(i) {
                            Ok((r, _, _)) => r,
                            Err(_) => f64::NAN,
                        },
                        lo,
                        hi,
                        &RootOptions {
                            x_tolerance: (i_hi * 1e-12).max(1e-14),
                            f_tolerance: 1e-10,
                            max_iterations: 200,
                        },
                    )
                    .map_err(FlowCellError::from)?;
                    let (_, ea, ec) = eval(root)?;
                    (root, ea, ec, false)
                }
            };
            if was_clamped {
                clamped += 1;
            }
            anode.commit(i_k / (n_neg * FARADAY));
            cathode.commit(i_k / (n_pos * FARADAY));
            current_density.push(i_k);
            eta_anode.push(ea_k);
            eta_cathode.push(ec_k);
        }

        let height = self.geometry.channel().height().value();
        let current: f64 = current_density.iter().sum::<f64>() * ctx.dx * height;
        Ok(CellSolution {
            voltage: Volt::new(voltage),
            current: Ampere::new(current),
            current_density,
            eta_anode,
            eta_cathode,
            electrode_area: self.geometry.electrode_area(),
            transport_limited_stations: clamped,
        })
    }

    /// Solves the cell at a fixed terminal voltage.
    ///
    /// # Errors
    ///
    /// * [`FlowCellError::Infeasible`] for a negative/non-finite voltage,
    /// * solver errors propagated from transport and kinetics.
    pub fn solve_at_voltage(&self, voltage: f64) -> Result<CellSolution, FlowCellError> {
        let ctx = self.context()?;
        self.solve_with_context(voltage, ctx)
    }

    /// Solves a whole voltage ladder with one cached context, each point
    /// warm-starting its station root brackets from the previous point's
    /// current-density profile — the amortized path used by polarization
    /// sweeps and the sweep engines.
    ///
    /// # Errors
    ///
    /// As [`CellModel::solve_at_voltage`].
    pub fn sweep_at_voltages(&self, voltages: &[f64]) -> Result<Vec<CellSolution>, FlowCellError> {
        let ctx = self.context()?;
        let mut out: Vec<CellSolution> = Vec::with_capacity(voltages.len());
        let mut hint: Option<Vec<f64>> = None;
        for &v in voltages {
            let sol = self.solve_with_context_warm(v, ctx, hint.as_deref())?;
            hint = Some(sol.current_density.clone());
            out.push(sol);
        }
        Ok(out)
    }

    /// Solves the cell at a fixed delivered current by inverting the
    /// voltage–current map with Brent's method.
    ///
    /// # Errors
    ///
    /// [`FlowCellError::Infeasible`] if `target` exceeds the cell's
    /// limiting current (or is negative).
    pub fn solve_at_current(&self, target: Ampere) -> Result<CellSolution, FlowCellError> {
        if !(target.value() >= 0.0 && target.is_finite()) {
            return Err(FlowCellError::Infeasible(format!(
                "target current must be non-negative, got {target}"
            )));
        }
        let ctx = self.context()?;
        let v_floor = 0.02;
        let i_max = self.solve_with_context(v_floor, ctx)?.current.value();
        if target.value() > i_max {
            return Err(FlowCellError::Infeasible(format!(
                "target {target} exceeds limiting current {i_max:.4} A at {v_floor} V"
            )));
        }
        let ocv = ctx
            .stations
            .iter()
            .map(|s| s.ocv)
            .fold(f64::NEG_INFINITY, f64::max);
        let v = brent(
            |v| match self.solve_with_context(v, ctx) {
                Ok(sol) => sol.current.value() - target.value(),
                Err(_) => f64::NAN,
            },
            v_floor,
            ocv,
            &RootOptions {
                x_tolerance: 1e-7,
                f_tolerance: (target.value() * 1e-7).max(1e-12),
                max_iterations: 100,
            },
        )
        .map_err(FlowCellError::from)?;
        self.solve_with_context(v, ctx)
    }

    /// Sweeps the polarization curve with `n ≥ 2` voltage points between
    /// 0.05 V and the open-circuit voltage (the exact OCV/zero-current
    /// point is appended).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; [`FlowCellError::InvalidConfig`] if
    /// `n < 2`.
    pub fn polarization_curve(&self, n: usize) -> Result<PolarizationCurve, FlowCellError> {
        if n < 2 {
            return Err(FlowCellError::InvalidConfig(
                "need at least 2 sweep points".into(),
            ));
        }
        let ctx = self.context()?;
        let ocv = ctx
            .stations
            .iter()
            .map(|s| s.ocv)
            .sum::<f64>()
            / ctx.stations.len() as f64;
        let v_lo = 0.05_f64.min(ocv / 2.0);
        let voltages: Vec<f64> = (0..n)
            .map(|k| v_lo + (ocv - 1e-4 - v_lo) * k as f64 / (n - 1) as f64)
            .collect();
        let mut points: Vec<PolarizationPoint> = self
            .sweep_at_voltages(&voltages)?
            .iter()
            .map(|sol| PolarizationPoint {
                voltage: sol.voltage(),
                current: sol.current(),
                power: sol.power(),
            })
            .collect();
        points.push(PolarizationPoint {
            voltage: Volt::new(ocv),
            current: Ampere::new(0.0),
            power: Watt::new(0.0),
        });
        PolarizationCurve::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn power7_channel_model() -> CellModel {
        presets::power7_channel().expect("valid preset")
    }

    #[test]
    fn ocv_is_the_zero_current_point() {
        let m = power7_channel_model();
        let ocv = m.open_circuit_voltage().unwrap().value();
        let sol = m.solve_at_voltage(ocv).unwrap();
        assert!(
            sol.current.value().abs() < 1e-6,
            "I at OCV = {}",
            sol.current
        );
    }

    #[test]
    fn current_increases_as_voltage_drops() {
        let m = power7_channel_model();
        let i_12 = m.solve_at_voltage(1.2).unwrap().current.value();
        let i_10 = m.solve_at_voltage(1.0).unwrap().current.value();
        let i_06 = m.solve_at_voltage(0.6).unwrap().current.value();
        assert!(i_12 < i_10 && i_10 < i_06, "{i_12} {i_10} {i_06}");
        assert!(i_10 > 0.0);
    }

    #[test]
    fn per_channel_current_at_1v_is_tens_of_milliamps() {
        // 88 channels supply ~amps in Fig. 7, so each channel delivers
        // tens of mA at 1 V.
        let m = power7_channel_model();
        let i = m.solve_at_voltage(1.0).unwrap().current.value();
        assert!(i > 0.01 && i < 0.2, "I = {i} A");
    }

    #[test]
    fn solve_at_current_roundtrips() {
        let m = power7_channel_model();
        let sol_v = m.solve_at_voltage(1.1).unwrap();
        let sol_i = m.solve_at_current(sol_v.current()).unwrap();
        assert!(
            (sol_i.voltage().value() - 1.1).abs() < 1e-3,
            "V = {}",
            sol_i.voltage()
        );
    }

    #[test]
    fn infeasible_current_is_rejected() {
        let m = power7_channel_model();
        assert!(matches!(
            m.solve_at_current(Ampere::new(100.0)),
            Err(FlowCellError::Infeasible(_))
        ));
        assert!(m.solve_at_current(Ampere::new(-1.0)).is_err());
    }

    #[test]
    fn polarization_curve_is_monotone_with_plateau() {
        let m = power7_channel_model();
        let curve = m.polarization_curve(12).unwrap();
        assert!(curve.open_circuit_voltage().value() > 1.5);
        // The low-voltage end approaches the transport-limited plateau:
        // current at 0.2 V within 25% of current at 0.05 V.
        let i_low = curve.current_at_voltage(0.2).unwrap().value();
        let i_lim = curve.limiting_current().value();
        assert!(i_low > 0.7 * i_lim, "knee: {i_low} vs plateau {i_lim}");
    }

    #[test]
    fn warmer_cell_delivers_more_current() {
        // The paper's Section III-B observation, at channel scale.
        let m = power7_channel_model();
        let warm = m
            .with_temperature(TemperatureProfile::Uniform(Kelvin::new(310.0)))
            .unwrap();
        let i_cold = m.solve_at_voltage(1.0).unwrap().current.value();
        let i_warm = warm.solve_at_voltage(1.0).unwrap().current.value();
        assert!(
            i_warm > i_cold * 1.05,
            "cold {i_cold} A vs warm {i_warm} A"
        );
    }

    #[test]
    fn higher_flow_raises_limiting_current() {
        let m = power7_channel_model();
        let half_flow = m.with_flow(m.flow() / 2.0).unwrap();
        let i_full = m.solve_at_voltage(0.3).unwrap().current.value();
        let i_half = half_flow.solve_at_voltage(0.3).unwrap().current.value();
        assert!(i_full > i_half, "full {i_full} vs half {i_half}");
    }

    #[test]
    fn transport_limit_flags_at_low_voltage() {
        let m = power7_channel_model();
        let sol = m.solve_at_voltage(0.05).unwrap();
        assert!(sol.transport_limited_stations() > 0 || sol.current.value() > 0.0);
    }

    #[test]
    fn current_density_decays_downstream() {
        // Boundary-layer growth starves downstream stations.
        let m = power7_channel_model();
        let sol = m.solve_at_voltage(0.6).unwrap();
        let prof = sol.current_density_profile();
        let inlet_avg: f64 = prof[..10].iter().sum::<f64>() / 10.0;
        let outlet_avg: f64 = prof[prof.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(
            inlet_avg > outlet_avg,
            "inlet {inlet_avg} vs outlet {outlet_avg}"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let m = power7_channel_model();
        assert!(m.solve_at_voltage(-0.1).is_err());
        assert!(m.solve_at_voltage(f64::NAN).is_err());
        assert!(m.polarization_curve(1).is_err());
        assert!(m
            .with_flow(CubicMetersPerSecond::new(0.0))
            .is_err());
    }
}
