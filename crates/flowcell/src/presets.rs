//! Ready-made configurations for the paper's Table I and Table II.

use crate::array::CellArray;
use crate::geometry::CellGeometry;
use crate::options::{SolverOptions, TemperatureProfile, VelocityModel};
use crate::solver::CellModel;
use crate::FlowCellError;
use bright_echem::vanadium;
use bright_flow::RectChannel;
use bright_units::{CubicMetersPerSecond, Kelvin, Meters};

/// Number of channels in the POWER7+ array (Table II).
pub const POWER7_CHANNEL_COUNT: usize = 88;

/// Total volumetric flow of the POWER7+ array in ml/min (Table II).
pub const POWER7_TOTAL_FLOW_ML_MIN: f64 = 676.0;

/// Area-specific series resistance of the Kjeang graphite-rod cell
/// (Ω·m²): rod electrodes, contacts and external wiring dominate the
/// measured polarization slope of the 2007 experiment (cell resistances
/// of tens of Ω over the 0.05 cm² electrodes ⇒ ~20 Ω·cm²).
pub const KJEANG_CONTACT_ASR: f64 = 2.0e-3;

/// The Kjeang et al. (2007) validation cell of Table I at a given
/// *per-stream* flow rate in µL/min (the table lists 2.5, 10, 60 and
/// 300 µL/min).
///
/// Geometry: 33 mm long, 2 mm wide (inter-electrode), 150 µm high, with
/// graphite electrodes along the side walls and the experimental series
/// resistance [`KJEANG_CONTACT_ASR`].
///
/// # Errors
///
/// Returns [`FlowCellError`] variants for invalid flow rates.
pub fn kjeang2007(flow_ul_min_per_stream: f64) -> Result<CellModel, FlowCellError> {
    let channel = RectChannel::new(
        Meters::from_millimeters(2.0),
        Meters::from_micrometers(150.0),
        Meters::from_millimeters(33.0),
    )?;
    let total_flow =
        CubicMetersPerSecond::from_microliters_per_minute(2.0 * flow_ul_min_per_stream);
    CellModel::new(
        CellGeometry::new(channel),
        vanadium::kjeang_cell_chemistry(),
        total_flow,
        TemperatureProfile::Uniform(Kelvin::new(300.0)),
        SolverOptions {
            ny: 96,
            nx: 260,
            velocity: VelocityModel::Duct { nz: 12 },
            contact_asr: KJEANG_CONTACT_ASR,
            ..SolverOptions::default()
        },
    )
}

/// The four per-stream flow rates of Table I (µL/min).
pub const KJEANG_FLOW_RATES_UL_MIN: [f64; 4] = [2.5, 10.0, 60.0, 300.0];

/// One channel of the POWER7+ array (Table II): 200 µm × 400 µm × 22 mm at
/// the nominal per-channel share of the 676 ml/min total flow, isothermal
/// at the 300 K inlet temperature.
///
/// # Errors
///
/// Returns [`FlowCellError`] variants if construction fails (cannot happen
/// for the encoded constants).
pub fn power7_channel() -> Result<CellModel, FlowCellError> {
    power7_channel_at(
        CubicMetersPerSecond::from_milliliters_per_minute(
            POWER7_TOTAL_FLOW_ML_MIN / POWER7_CHANNEL_COUNT as f64,
        ),
        TemperatureProfile::Uniform(Kelvin::new(300.0)),
    )
}

/// One POWER7+ channel at an explicit per-channel flow and temperature
/// profile (used by the co-simulation and the flow/temperature sweeps).
///
/// # Errors
///
/// As [`power7_channel`].
pub fn power7_channel_at(
    per_channel_flow: CubicMetersPerSecond,
    temperature: TemperatureProfile,
) -> Result<CellModel, FlowCellError> {
    let channel = RectChannel::new(
        Meters::from_micrometers(200.0),
        Meters::from_micrometers(400.0),
        Meters::from_millimeters(22.0),
    )?;
    CellModel::new(
        CellGeometry::new(channel),
        vanadium::power7_cell_chemistry(),
        per_channel_flow,
        temperature,
        SolverOptions::default(),
    )
}

/// The full 88-channel POWER7+ array of Table II (Fig. 7's device).
///
/// # Errors
///
/// As [`power7_channel`].
pub fn power7_array() -> Result<CellArray, FlowCellError> {
    CellArray::new(power7_channel()?, POWER7_CHANNEL_COUNT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_construct() {
        assert!(kjeang2007(60.0).is_ok());
        assert!(power7_channel().is_ok());
        assert!(power7_array().is_ok());
        assert!(kjeang2007(-1.0).is_err());
    }

    #[test]
    fn power7_channel_flow_share() {
        let m = power7_channel().unwrap();
        assert!((m.flow().to_milliliters_per_minute() - 676.0 / 88.0).abs() < 1e-9);
    }

    #[test]
    fn kjeang_total_flow_doubles_stream_flow() {
        let m = kjeang2007(60.0).unwrap();
        assert!((m.flow().to_microliters_per_minute() - 120.0).abs() < 1e-9);
    }
}
