//! Flow-cell geometry: a rectangular channel with wall electrodes.

use crate::FlowCellError;
use bright_flow::RectChannel;
use bright_units::{Meters, SquareMeters};

/// Geometry of one co-laminar flow cell.
///
/// The two electrolyte streams share the channel side by side across the
/// *width*; the anode lines the side wall at `y = 0` and the cathode the
/// wall at `y = width` (Fig. 2 of the paper). Each electrode therefore has
/// geometric area `length × height`, and the ionic current crosses the
/// full channel width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGeometry {
    channel: RectChannel,
    electrode_coverage: f64,
}

impl CellGeometry {
    /// Creates a cell geometry with electrodes covering the full channel
    /// length (`coverage = 1`).
    pub fn new(channel: RectChannel) -> Self {
        Self {
            channel,
            electrode_coverage: 1.0,
        }
    }

    /// Creates a cell whose electrodes cover only the downstream fraction
    /// `coverage ∈ (0, 1]` of the channel length (some experimental cells
    /// leave an inlet development section uncoated).
    ///
    /// # Errors
    ///
    /// Returns [`FlowCellError::InvalidConfig`] for coverage outside
    /// `(0, 1]`.
    pub fn with_coverage(channel: RectChannel, coverage: f64) -> Result<Self, FlowCellError> {
        if !(coverage > 0.0 && coverage <= 1.0) {
            return Err(FlowCellError::InvalidConfig(format!(
                "electrode coverage must be in (0,1], got {coverage}"
            )));
        }
        Ok(Self {
            channel,
            electrode_coverage: coverage,
        })
    }

    /// The channel.
    #[inline]
    pub fn channel(&self) -> &RectChannel {
        &self.channel
    }

    /// Fraction of the channel length covered by the electrodes.
    #[inline]
    pub fn electrode_coverage(&self) -> f64 {
        self.electrode_coverage
    }

    /// Electrode length along the channel.
    #[inline]
    pub fn electrode_length(&self) -> Meters {
        self.channel.length() * self.electrode_coverage
    }

    /// Geometric area of one electrode (`electrode length × channel
    /// height`).
    #[inline]
    pub fn electrode_area(&self) -> SquareMeters {
        self.electrode_length() * self.channel.height()
    }

    /// Width of one electrolyte stream (`channel width / 2`).
    #[inline]
    pub fn stream_half_width(&self) -> Meters {
        self.channel.width() / 2.0
    }

    /// Inter-electrode gap (the full channel width).
    #[inline]
    pub fn electrode_gap(&self) -> Meters {
        self.channel.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> RectChannel {
        RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap()
    }

    #[test]
    fn electrode_area_is_sidewall() {
        let g = CellGeometry::new(channel());
        // 22 mm x 400 um = 8.8e-6 m^2 = 0.088 cm^2.
        assert!((g.electrode_area().to_square_centimeters() - 0.088).abs() < 1e-9);
        assert!((g.electrode_gap().to_micrometers() - 200.0).abs() < 1e-9);
        assert!((g.stream_half_width().to_micrometers() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn partial_coverage_scales_area() {
        let g = CellGeometry::with_coverage(channel(), 0.5).unwrap();
        assert!((g.electrode_area().to_square_centimeters() - 0.044).abs() < 1e-9);
        assert!(CellGeometry::with_coverage(channel(), 0.0).is_err());
        assert!(CellGeometry::with_coverage(channel(), 1.5).is_err());
    }
}
