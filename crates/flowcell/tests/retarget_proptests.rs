//! Property tests of the geometry/coefficient context split: a model
//! driven through a random sequence of `retarget_flow` /
//! `retarget_temperature` / `retarget_inlets` mutations must produce
//! solves **bitwise-equal** to a model built cold at the final
//! parameters, while never rebuilding its geometry context.

use proptest::prelude::*;

use bright_echem::{vanadium, Electrolyte};
use bright_flow::RectChannel;
use bright_flowcell::options::{SolverOptions, TemperatureProfile, VelocityModel};
use bright_flowcell::{CellGeometry, CellModel, CellSolution};
use bright_units::{CubicMetersPerSecond, Kelvin, Meters, MolePerCubicMeter};

fn geometry() -> CellGeometry {
    CellGeometry::new(
        RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap(),
    )
}

fn options(velocity: VelocityModel) -> SolverOptions {
    SolverOptions {
        ny: 16,
        nx: 40,
        velocity,
        ..SolverOptions::default()
    }
}

/// The plain-parameter description of an operating point; builds the
/// cold reference model.
#[derive(Clone)]
struct Spec {
    flow: CubicMetersPerSecond,
    temperature: TemperatureProfile,
    neg_inlet: Electrolyte,
    pos_inlet: Electrolyte,
    velocity: VelocityModel,
}

impl Spec {
    fn base(velocity: VelocityModel) -> Self {
        let chem = vanadium::power7_cell_chemistry();
        Self {
            flow: CubicMetersPerSecond::from_milliliters_per_minute(7.68),
            temperature: TemperatureProfile::Uniform(Kelvin::new(300.0)),
            neg_inlet: chem.negative.inlet,
            pos_inlet: chem.positive.inlet,
            velocity,
        }
    }

    fn cold_model(&self) -> CellModel {
        let mut chem = vanadium::power7_cell_chemistry();
        chem.negative.inlet = self.neg_inlet;
        chem.positive.inlet = self.pos_inlet;
        CellModel::new(
            geometry(),
            chem,
            self.flow,
            self.temperature.clone(),
            options(self.velocity),
        )
        .unwrap()
    }
}

/// Applies retarget step `kind` (parameterized by `p ∈ [0,1)`) to both
/// the warm model and the spec.
fn apply_step(model: &mut CellModel, spec: &mut Spec, kind: usize, p: f64) {
    match kind % 4 {
        0 => {
            let flow = CubicMetersPerSecond::from_milliliters_per_minute(2.0 + 18.0 * p);
            model.retarget_flow(flow).unwrap();
            spec.flow = flow;
        }
        1 => {
            let t = TemperatureProfile::Uniform(Kelvin::new(292.0 + 30.0 * p));
            model.retarget_temperature(t.clone()).unwrap();
            spec.temperature = t;
        }
        2 => {
            let t = TemperatureProfile::Sampled(vec![
                Kelvin::new(296.0 + 10.0 * p),
                Kelvin::new(300.0 + 12.0 * p),
                Kelvin::new(303.0 + 14.0 * p),
            ]);
            model.retarget_temperature(t.clone()).unwrap();
            spec.temperature = t;
        }
        _ => {
            let total = MolePerCubicMeter::new(2000.0);
            let soc = 0.2 + 0.6 * p;
            let neg = Electrolyte::negative_at_soc(total, soc).unwrap();
            let pos = Electrolyte::positive_at_soc(total, soc).unwrap();
            model.retarget_inlets(neg, pos).unwrap();
            spec.neg_inlet = neg;
            spec.pos_inlet = pos;
        }
    }
}

fn assert_bitwise_equal(warm: &CellSolution, cold: &CellSolution) {
    assert_eq!(warm.voltage().value().to_bits(), cold.voltage().value().to_bits());
    assert_eq!(warm.current().value().to_bits(), cold.current().value().to_bits());
    let (wp, cp) = (warm.current_density_profile(), cold.current_density_profile());
    assert_eq!(wp.len(), cp.len());
    for (w, c) in wp.iter().zip(cp) {
        assert_eq!(w.to_bits(), c.to_bits());
    }
    for (w, c) in warm
        .anode_overpotential_profile()
        .iter()
        .zip(cold.anode_overpotential_profile())
    {
        assert_eq!(w.to_bits(), c.to_bits());
    }
    assert_eq!(
        warm.transport_limited_stations(),
        cold.transport_limited_stations()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn retarget_sequences_match_cold_builds_bitwise(
        k1 in 0usize..4,
        p1 in 0.0..1.0f64,
        k2 in 0usize..4,
        p2 in 0.0..1.0f64,
        k3 in 0usize..4,
        p3 in 0.0..1.0f64,
        v_probe in 0.3..1.3f64,
    ) {
        let mut spec = Spec::base(VelocityModel::PlanePoiseuille);
        let mut model = spec.cold_model();
        model.solve_at_voltage(1.0).unwrap();
        let base = model.context_stats();
        prop_assert_eq!(base.geometry_builds, 1);

        for (k, p) in [(k1, p1), (k2, p2), (k3, p3)] {
            apply_step(&mut model, &mut spec, k, p);
            let warm = model.solve_at_voltage(v_probe).unwrap();
            let cold = spec.cold_model().solve_at_voltage(v_probe).unwrap();
            assert_bitwise_equal(&warm, &cold);
        }
        let stats = model.context_stats();
        prop_assert_eq!(stats.geometry_builds, 1);
        prop_assert_eq!(stats.coefficient_builds, 1);
        prop_assert_eq!(stats.coefficient_refreshes, 3);
    }

    #[test]
    fn duct_retargets_never_resolve_the_duct(
        p1 in 0.0..1.0f64,
        p2 in 0.0..1.0f64,
    ) {
        // Duct velocity model: the geometry context holds a real Poisson
        // solve. Flow and uniform-temperature retargets must reuse it
        // (zero further duct solves, zero new operator builds) and stay
        // bitwise-equal to cold builds.
        let mut spec = Spec::base(VelocityModel::Duct { nz: 6 });
        let mut model = spec.cold_model();
        model.solve_at_voltage(1.0).unwrap();
        let base = model.context_stats();
        prop_assert_eq!(base.geometry_builds, 1);
        prop_assert_eq!(base.op_builds, 2);

        for (k, p) in [(0usize, p1), (1usize, p2)] {
            apply_step(&mut model, &mut spec, k, p);
            let warm = model.solve_at_voltage(0.8).unwrap();
            let cold = spec.cold_model().solve_at_voltage(0.8).unwrap();
            assert_bitwise_equal(&warm, &cold);
        }
        let stats = model.context_stats();
        prop_assert_eq!(stats.geometry_builds, 1, "duct was re-solved");
        prop_assert_eq!(stats.op_builds, 2, "flow/temperature retargets built new operators");
        prop_assert!(stats.op_refreshes >= 2);
    }
}
