//! Physics invariants of the flow-cell solver across operating points.

use bright_echem::vanadium;
use bright_flow::RectChannel;
use bright_flowcell::options::{SolverOptions, TemperatureProfile, VelocityModel};
use bright_flowcell::{CellGeometry, CellModel};
use bright_units::{CubicMetersPerSecond, Kelvin, Meters};

fn fast_model(flow_ml_min: f64, t: f64) -> CellModel {
    let channel = RectChannel::new(
        Meters::from_micrometers(200.0),
        Meters::from_micrometers(400.0),
        Meters::from_millimeters(22.0),
    )
    .unwrap();
    CellModel::new(
        CellGeometry::new(channel),
        vanadium::power7_cell_chemistry(),
        CubicMetersPerSecond::from_milliliters_per_minute(flow_ml_min),
        TemperatureProfile::Uniform(Kelvin::new(t)),
        SolverOptions {
            ny: 24,
            nx: 60,
            velocity: VelocityModel::PlanePoiseuille,
            ..SolverOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn current_never_negative_over_voltage_sweep() {
    let m = fast_model(7.68, 300.0);
    for k in 0..12 {
        let v = 0.1 + 1.6 * k as f64 / 11.0;
        let sol = m.solve_at_voltage(v).unwrap();
        assert!(
            sol.current().value() >= -1e-12,
            "negative current {} at {v} V",
            sol.current()
        );
        assert!(
            sol.current_density_profile().iter().all(|&i| i >= 0.0),
            "negative local density at {v} V"
        );
    }
}

#[test]
fn polarization_is_monotone_under_grid_refinement() {
    // The curve shape must not depend qualitatively on resolution.
    let coarse = fast_model(7.68, 300.0);
    let channel = *coarse.geometry().channel();
    let fine = CellModel::new(
        CellGeometry::new(channel),
        vanadium::power7_cell_chemistry(),
        coarse.flow(),
        TemperatureProfile::Uniform(Kelvin::new(300.0)),
        SolverOptions {
            ny: 48,
            nx: 120,
            velocity: VelocityModel::PlanePoiseuille,
            ..SolverOptions::default()
        },
    )
    .unwrap();
    let i_coarse = coarse.solve_at_voltage(1.0).unwrap().current().value();
    let i_fine = fine.solve_at_voltage(1.0).unwrap().current().value();
    assert!(
        ((i_coarse - i_fine) / i_fine).abs() < 0.15,
        "coarse {i_coarse} vs fine {i_fine}"
    );
}

#[test]
fn overpotentials_have_correct_signs_in_discharge() {
    let m = fast_model(7.68, 300.0);
    let sol = m.solve_at_voltage(1.0).unwrap();
    for (ea, ec) in sol
        .anode_overpotential_profile()
        .iter()
        .zip(sol.cathode_overpotential_profile())
    {
        assert!(*ea >= -1e-9, "anode overpotential must be >= 0, got {ea}");
        assert!(*ec <= 1e-9, "cathode overpotential must be <= 0, got {ec}");
    }
}

#[test]
fn power_equals_voltage_times_current() {
    let m = fast_model(7.68, 300.0);
    for v in [0.4, 0.8, 1.2] {
        let sol = m.solve_at_voltage(v).unwrap();
        let p = sol.power().value();
        assert!((p - v * sol.current().value()).abs() < 1e-12 * p.max(1.0));
    }
}

#[test]
fn limiting_current_scales_with_cube_root_of_flow() {
    // Leveque: i_lim ~ Q^(1/3) (shear ~ Q).
    let m1 = fast_model(4.0, 300.0);
    let m8 = fast_model(32.0, 300.0);
    let i1 = m1.solve_at_voltage(0.1).unwrap().current().value();
    let i8 = m8.solve_at_voltage(0.1).unwrap().current().value();
    let ratio = i8 / i1;
    assert!(
        (ratio - 2.0).abs() < 0.35,
        "8x flow should double the plateau, ratio {ratio}"
    );
}

#[test]
fn colder_electrolyte_always_loses() {
    let cold = fast_model(7.68, 290.0);
    let warm = fast_model(7.68, 320.0);
    for v in [0.6, 1.0, 1.3] {
        let i_cold = cold.solve_at_voltage(v).unwrap().current().value();
        let i_warm = warm.solve_at_voltage(v).unwrap().current().value();
        assert!(i_warm > i_cold, "at {v} V: warm {i_warm} <= cold {i_cold}");
    }
}

#[test]
fn product_tracking_lowers_the_curve() {
    // Tracking product accumulation adds a real (Nernstian) penalty.
    let with = fast_model(7.68, 300.0);
    let mut opts = with.options().clone();
    opts.track_products = false;
    let without = CellModel::new(
        *with.geometry(),
        vanadium::power7_cell_chemistry(),
        with.flow(),
        TemperatureProfile::Uniform(Kelvin::new(300.0)),
        opts,
    )
    .unwrap();
    let i_with = with.solve_at_voltage(1.2).unwrap().current().value();
    let i_without = without.solve_at_voltage(1.2).unwrap().current().value();
    assert!(
        i_without >= i_with,
        "ignoring products must not reduce current: {i_without} vs {i_with}"
    );
}

#[test]
fn contact_resistance_flattens_the_knee() {
    let base = fast_model(7.68, 300.0);
    let mut opts = base.options().clone();
    opts.contact_asr = 2.0e-3;
    let resistive = CellModel::new(
        *base.geometry(),
        vanadium::power7_cell_chemistry(),
        base.flow(),
        TemperatureProfile::Uniform(Kelvin::new(300.0)),
        opts,
    )
    .unwrap();
    // Same OCV...
    let ocv_a = base.open_circuit_voltage().unwrap().value();
    let ocv_b = resistive.open_circuit_voltage().unwrap().value();
    assert!((ocv_a - ocv_b).abs() < 1e-12);
    // ...but less current at mid-voltage.
    let i_base = base.solve_at_voltage(1.2).unwrap().current().value();
    let i_res = resistive.solve_at_voltage(1.2).unwrap().current().value();
    assert!(i_res < i_base, "resistive {i_res} vs base {i_base}");
}

#[test]
fn nonuniform_temperature_profile_beats_its_minimum() {
    let ramp = TemperatureProfile::Sampled(vec![
        Kelvin::new(300.0),
        Kelvin::new(305.0),
        Kelvin::new(310.0),
    ]);
    let base = fast_model(7.68, 300.0);
    let ramped = base.with_temperature(ramp).unwrap();
    let i_base = base.solve_at_voltage(1.0).unwrap().current().value();
    let i_ramp = ramped.solve_at_voltage(1.0).unwrap().current().value();
    assert!(i_ramp > i_base);
    // And stays below the everywhere-hot bound.
    let hot = fast_model(7.68, 310.0);
    let i_hot = hot.solve_at_voltage(1.0).unwrap().current().value();
    assert!(i_ramp < i_hot * 1.001);
}
