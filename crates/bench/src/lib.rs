//! Shared helpers for the reproduction harness binaries and benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the DATE
//! 2014 paper and prints a paper-vs-measured comparison; the Criterion
//! benches in `benches/` track the cost of the underlying solvers. This
//! library hosts the small formatting utilities they share.

#![deny(missing_docs)]
#![warn(clippy::all)]

/// Prints a section header for a reproduction binary.
pub fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Formats a paper-vs-measured comparison row.
pub fn compare_row(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    let ratio = if paper.abs() > 1e-300 {
        measured / paper
    } else {
        f64::NAN
    };
    format!(
        "  {label:<42} paper {paper:>9.3} {unit:<8} measured {measured:>9.3} {unit:<8} ratio {ratio:>5.2}"
    )
}

/// Simple fixed-width table printer.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let header = headers
        .iter()
        .map(|h| format!("{h:>12}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{header}");
    for row in rows {
        let line = row
            .iter()
            .map(|c| format!("{c:>12}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_row_reports_ratio() {
        let row = compare_row("peak current", 6.0, 4.0, "A");
        assert!(row.contains("0.67"));
        assert!(row.contains("peak current"));
    }

    #[test]
    fn compare_row_handles_zero_reference() {
        let row = compare_row("zero", 0.0, 1.0, "W");
        assert!(row.contains("NaN"));
    }
}
