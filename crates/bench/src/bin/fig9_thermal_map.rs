//! **F9** — Fig. 9 of the paper: thermal map of the POWER7+ at full load
//! cooled by the redox flow-cell array (676 ml/min, 27 °C inlet; paper
//! reports a 41 °C peak).

use bright_bench::{banner, compare_row};
use bright_floorplan::{power7, PowerScenario};
use bright_mesh::render::{render_ascii, RenderOptions};
use bright_thermal::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("F9", "Fig. 9 - full-load thermal map under flow-cell cooling");

    let model = presets::power7_stack()?;
    let plan = power7::floorplan();
    let power = PowerScenario::full_load().rasterize(&plan, model.grid())?;
    println!(
        "chip load: {:.1} W over {:.2} cm^2 (peak density 26.7 W/cm^2 in cores)\n",
        power.integral(),
        plan.die_area().to_square_centimeters()
    );

    let sol = model.solve_steady(&power)?;
    let mut celsius = sol.junction_map().clone();
    celsius.map_in_place(|k| k - 273.15);
    println!("junction temperature map (degC):");
    println!(
        "{}",
        render_ascii(
            &celsius,
            &RenderOptions {
                width: 80,
                height: 24,
                ..RenderOptions::default()
            }
        )
    );

    let peak_c = sol.max_temperature().to_celsius().value();
    let (lvl, ix, iy) = sol.max_location();
    println!(
        "hottest cell: level {lvl}, channel column {ix}, station {iy} \
         (channels flow bottom-to-top)"
    );
    println!();
    println!("{}", compare_row("peak temperature", 41.0, peak_c, "degC"));
    println!(
        "{}",
        compare_row(
            "coolant outlet mean",
            28.5,
            sol.outlet_mean().to_celsius().value(),
            "degC"
        )
    );
    println!(
        "  energy balance: injected {:.2} W vs absorbed {:.2} W",
        power.integral(),
        sol.absorbed_power().value()
    );
    Ok(())
}
