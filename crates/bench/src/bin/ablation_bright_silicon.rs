//! **A3** — the conclusion's two-pronged path to full electrochemical
//! supply: (1) lower chip power density through better architectures,
//! (2) higher cell power density through better electrochemistry. Sweeps
//! both axes and prints the coverage fraction of full-chip demand, with
//! the break-even frontier marked.

use bright_bench::banner;
use bright_floorplan::power7;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "A3",
        "bright-silicon frontier: cell density vs chip density",
    );

    let plan = power7::floorplan();
    let die_cm2 = plan.die_area().to_square_centimeters();
    // Electrode area the channel layer offers per cm^2 of die footprint:
    // 88 channels x 2 side walls x (22 mm x 400 um) over 5.67 cm^2.
    let electrode_cm2 = 88.0 * 2.0 * (2.2 * 0.04);
    let area_ratio = electrode_cm2 / die_cm2;
    println!(
        "die {die_cm2:.2} cm^2, electrode area {electrode_cm2:.2} cm^2 \
         (ratio {area_ratio:.2})\n"
    );

    let chip_densities = [26.7, 20.0, 15.0, 10.0, 5.0, 2.0, 1.0];
    let cell_densities = [0.3, 0.46, 0.77, 1.0, 2.0, 5.0, 10.0];
    // 0.46 = our Table II model MPP; 0.3 = membrane-less record [15];
    // 0.77 = membrane-based record [14]; >1 = the paper's "massively
    // improved" future cells.

    print!("{:>14}", "chip\\cell W/cm2");
    for cd in cell_densities {
        print!("{cd:>8.2}");
    }
    println!();
    for chip in chip_densities {
        print!("{chip:>14.1}");
        for cell in cell_densities {
            let coverage = cell * area_ratio / chip;
            if coverage >= 1.0 {
                print!("{:>8}", "BRIGHT");
            } else {
                print!("{:>7.0}%", coverage * 100.0);
            }
        }
        println!();
    }

    println!(
        "\nBRIGHT = the flow-cell layer covers the full chip demand.\n\
         At the paper's 26.7 W/cm^2 peak and today's <1 W/cm^2 cells the\n\
         gap is >10x (Section II's '10-50x' statement); the frontier\n\
         closes at chip densities of a few W/cm^2 (specialized, less\n\
         power-hungry architectures) or cell densities near 10 W/cm^2 —\n\
         exactly the two efforts the conclusion calls for."
    );

    // Sanity anchors for the regression suite.
    let today = 0.46 * area_ratio / 26.7;
    assert!(today > 0.02 && today < 0.2, "today's coverage {today}");
    let bright = 10.0 * area_ratio / 2.0;
    assert!(bright >= 1.0, "future point should be bright");
    Ok(())
}
