//! **A1** — the conclusion's design-space assessment: "power density as
//! function of channel dimensions, flow rate and temperature". Sweeps the
//! Table II chemistry across each axis and prints the max-power-point
//! areal density (all state-of-the-art flow cells sit below 1 W/cm²,
//! 10–50× below processor demand — the paper's Section II framing).

use bright_bench::{banner, print_table};
use bright_core::sweeps;
use bright_units::Kelvin;

fn rows_of(rows: &[sweeps::PowerDensityRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.width_um),
                format!("{:.0}", r.height_um),
                format!("{:.0}", r.flow_ul_min),
                format!("{:.0}", r.temperature_k),
                format!("{:.3}", r.peak_power_density_w_cm2),
                format!("{:.2}", r.mpp_voltage),
            ]
        })
        .collect()
}

const HEADERS: [&str; 6] = [
    "w (um)",
    "h (um)",
    "Q (uL/min)",
    "T (K)",
    "P (W/cm2)",
    "V_mpp (V)",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("A1", "power density vs channel dimensions, flow and temperature");

    println!("\nchannel-width sweep (fixed 1.6 m/s mean velocity, 400 um height):");
    let widths = sweeps::width_sweep(
        &[400.0, 300.0, 200.0, 150.0, 100.0, 75.0],
        400.0,
        1.6,
        Kelvin::new(300.0),
    )?;
    print_table(&HEADERS, &rows_of(&widths));

    println!("\nper-channel flow sweep (Table II geometry):");
    let flows = sweeps::flow_sweep(
        &[100.0, 400.0, 1600.0, 7681.8, 30000.0],
        Kelvin::new(300.0),
    )?;
    print_table(&HEADERS, &rows_of(&flows));

    println!("\ntemperature sweep (Table II geometry, nominal flow):");
    let temps = sweeps::temperature_sweep(&[290.0, 300.0, 310.0, 320.0, 330.0])?;
    print_table(&HEADERS, &rows_of(&temps));

    let best = widths
        .iter()
        .chain(&flows)
        .chain(&temps)
        .map(|r| r.peak_power_density_w_cm2)
        .fold(0.0_f64, f64::max);
    println!(
        "\nbest density in the swept space: {best:.3} W/cm^2 — consistent with \
         the paper's Section II ceiling (all reported cells < 1 W/cm^2, \
         10-50x below processor demand)."
    );
    Ok(())
}
