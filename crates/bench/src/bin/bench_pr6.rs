//! PR-6 robustness gate: fault-tolerant solve pipeline. Records the
//! results in `BENCH_PR6.json`.
//!
//! Two gate families, mirroring the acceptance criteria:
//!
//! * `session_recovery_overhead` — repeated refresh+solve epochs on a
//!   representative SPD operator with the recovery ladder **enabled**
//!   (the default) vs. `RecoveryPolicy::disabled()`, faults off. The
//!   ladder must cost nothing on the clean path: all it adds is a
//!   handful of branch checks and a post-solve finite scan. Gate:
//!   enabled ≤ 1.05× disabled (plus a millisecond of absolute slack
//!   for timer noise on short runs).
//! * `seeded_fault_batch` — a mixed steady/transient/polarization
//!   engine batch of 20 requests under a seeded fault plan combining
//!   NaN corruption, forced breakdowns, budget truncation and one
//!   scripted worker panic. Gates: the caller never panics, exactly
//!   one request reports `WorkerPanic`, every other request completes
//!   `Ok`, and the engine's recovery/degradation counters are
//!   consistent.
//!
//! Usage: `bench_pr6 [--quick] [--out <path>]` (default `BENCH_PR6.json`).

use bright_core::{
    CoreError, EngineReport, LoadStep, PolarizationRequest, Scenario, ScenarioEngine,
    SteppingMode, TransientRequest,
};
use bright_jsonio::Value;
use bright_num::faults::{self, FaultPlan};
use bright_num::solvers::IterOptions;
use bright_num::{PrecondSpec, RecoveryPolicy, SolverSession, TripletMatrix};
use bright_units::{CubicMetersPerSecond, Kelvin};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up, then the best of `reps` timed repetitions
    // (minimum is the least noisy statistic on a shared host).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// A 1-D diffusion chain with a conductance knob — the same operator
/// family the thermal/PDN sessions refresh between sweep points.
fn chain(n: usize, k: f64) -> TripletMatrix {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 2.0 * k + 1.0).unwrap();
        if i > 0 {
            t.push(i, i - 1, -k).unwrap();
        }
        if i + 1 < n {
            t.push(i, i + 1, -k).unwrap();
        }
    }
    t
}

struct OverheadRow {
    disabled_s: f64,
    enabled_s: f64,
    epochs: usize,
}

impl OverheadRow {
    fn overhead(&self) -> f64 {
        self.enabled_s / self.disabled_s - 1.0
    }
}

/// Gate 1: the recovery ladder must be free when nothing fails.
fn bench_recovery_overhead(reps: usize, n: usize, epochs: usize) -> OverheadRow {
    let b = vec![1.0; n];
    let timed = |policy: RecoveryPolicy| {
        let mut session = SolverSession::new(IterOptions {
            preconditioner: PrecondSpec::ssor(),
            ..IterOptions::default()
        });
        session.set_recovery_policy(policy);
        session.bind_triplets(&chain(n, 1.0)).unwrap();
        let mut epoch = 0u64;
        time(reps, || {
            // Faults forced off: this is the clean path by construction,
            // even if the environment carries a BRIGHT_FAULTS plan.
            faults::with_plan(None, || {
                for e in 0..epochs {
                    let k = 1.0 + 0.25 * (e % 5) as f64;
                    epoch += 1;
                    session.refresh_values(&chain(n, k), epoch).unwrap();
                    black_box(session.solve_spd(&b).unwrap());
                }
            })
        })
    };
    let disabled_s = timed(RecoveryPolicy::disabled());
    let enabled_s = timed(RecoveryPolicy::default());
    OverheadRow {
        disabled_s,
        enabled_s,
        epochs,
    }
}

struct FaultBatchRow {
    requests: usize,
    ok: usize,
    worker_panics: usize,
    degraded: usize,
    recovered_solves: u64,
    quarantined_workers: u64,
    panicked_requests: u64,
}

/// Gate 2: the acceptance batch — mixed request kinds under a seeded
/// fault plan; returns per-kind outcome counts for the gate checks.
fn bench_seeded_fault_batch() -> FaultBatchRow {
    let flow_scenario = |ml_min: f64| {
        let mut s = Scenario::power7_reduced();
        s.total_flow = CubicMetersPerSecond::from_milliliters_per_minute(ml_min);
        s
    };
    let transient_request = || TransientRequest {
        scenario: Scenario::power7_reduced(),
        trace: vec![LoadStep::new(0.01, bright_floorplan::PowerScenario::full_load())],
        initial_temperature: Kelvin::new(300.0),
        stepping: SteppingMode::Fixed { dt: 2e-3 },
    };

    let plan = FaultPlan {
        seed: 5,
        nan: 5,
        breakdown: 7,
        budget: 6,
        panic: u64::MAX, // one shot, at opportunity n == seed
        ..FaultPlan::default()
    };
    let mut engine = ScenarioEngine::new();
    for i in 0..10 {
        engine.submit(flow_scenario(650.0 - 30.0 * i as f64));
    }
    for _ in 0..6 {
        engine.submit_transient(transient_request());
    }
    for i in 0..4 {
        let mut s = Scenario::power7_reduced();
        s.inlet_temperature = Kelvin::new(300.0 + i as f64);
        engine.submit_polarization(PolarizationRequest::new(s));
    }
    // The scripted panic is expected and isolated by the engine; keep
    // the default hook from spraying a backtrace over the bench output.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let reports = faults::with_plan(Some(plan), || {
        faults::reset_counters();
        engine.run_all_pending()
    });
    std::panic::set_hook(hook);

    let mut ok = 0usize;
    let mut worker_panics = 0usize;
    let mut degraded = 0usize;
    for r in &reports {
        let (is_ok, is_panic, is_degraded) = match r {
            EngineReport::Steady(s) => (
                s.result.is_ok(),
                matches!(s.result, Err(CoreError::WorkerPanic(_))),
                s.degraded.is_some(),
            ),
            EngineReport::Transient(t) => (
                t.result.is_ok(),
                matches!(t.result, Err(CoreError::WorkerPanic(_))),
                t.degraded.is_some(),
            ),
            EngineReport::Polarization(p) => (
                p.result.is_ok(),
                matches!(p.result, Err(CoreError::WorkerPanic(_))),
                p.degraded.is_some(),
            ),
        };
        ok += usize::from(is_ok);
        worker_panics += usize::from(is_panic);
        degraded += usize::from(is_degraded);
    }
    let stats = engine.stats();
    FaultBatchRow {
        requests: reports.len(),
        ok,
        worker_panics,
        degraded,
        recovered_solves: stats.recovered_solves,
        quarantined_workers: stats.quarantined_workers,
        panicked_requests: stats.panicked_requests,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let reps = if quick { 3 } else { 6 };
    let n = if quick { 1200 } else { 2500 };
    let epochs = if quick { 10 } else { 20 };

    bright_bench::banner(
        "BENCH_PR6",
        "fault-tolerant solve pipeline: ladder overhead, seeded-fault batch",
    );

    let overhead = bench_recovery_overhead(reps, n, epochs);
    println!(
        "  session_recovery_overhead    disabled {:>9.4} s  enabled {:>9.4} s  overhead {:>6.2}%  ({} refresh+solve epochs)",
        overhead.disabled_s,
        overhead.enabled_s,
        overhead.overhead() * 100.0,
        overhead.epochs,
    );

    let batch = bench_seeded_fault_batch();
    println!(
        "  seeded_fault_batch           {} requests: {} ok, {} panicked, {} degraded; {} recovered solves, {} quarantined workers",
        batch.requests,
        batch.ok,
        batch.worker_panics,
        batch.degraded,
        batch.recovered_solves,
        batch.quarantined_workers,
    );

    let doc = Value::object([
        (
            "session_recovery_overhead".into(),
            Value::object([
                ("disabled_s".into(), Value::Number(overhead.disabled_s)),
                ("enabled_s".into(), Value::Number(overhead.enabled_s)),
                ("overhead".into(), Value::Number(overhead.overhead())),
                ("epochs".into(), Value::Number(overhead.epochs as f64)),
            ]),
        ),
        (
            "seeded_fault_batch".into(),
            Value::object([
                ("requests".into(), Value::Number(batch.requests as f64)),
                ("ok".into(), Value::Number(batch.ok as f64)),
                (
                    "worker_panics".into(),
                    Value::Number(batch.worker_panics as f64),
                ),
                ("degraded".into(), Value::Number(batch.degraded as f64)),
                (
                    "recovered_solves".into(),
                    Value::Number(batch.recovered_solves as f64),
                ),
                (
                    "quarantined_workers".into(),
                    Value::Number(batch.quarantined_workers as f64),
                ),
            ]),
        ),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                ("max_clean_path_overhead".into(), Value::Number(0.05)),
                ("required_worker_panics".into(), Value::Number(1.0)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR6.json");
    println!("  results written to {out_path}");

    // Fail loudly when an acceptance gate regresses.
    let mut failed = false;
    // A millisecond of absolute slack keeps short timed sections from
    // tripping the relative gate on timer noise alone.
    if overhead.enabled_s > overhead.disabled_s * 1.05 + 1e-3 {
        eprintln!(
            "GATE FAILED: clean-path recovery overhead {:.2}% > 5%",
            overhead.overhead() * 100.0
        );
        failed = true;
    }
    if batch.requests != 20 || batch.worker_panics != 1 || batch.ok != batch.requests - 1 {
        eprintln!(
            "GATE FAILED: seeded batch must complete 19/20 with exactly one WorkerPanic, got {} ok / {} panicked of {}",
            batch.ok, batch.worker_panics, batch.requests
        );
        failed = true;
    }
    if batch.panicked_requests != batch.worker_panics as u64 {
        eprintln!(
            "GATE FAILED: engine panicked_requests {} disagrees with reports {}",
            batch.panicked_requests, batch.worker_panics
        );
        failed = true;
    }
    if batch.recovered_solves == 0 || batch.degraded == 0 {
        eprintln!(
            "GATE FAILED: seeded plan must exercise the recovery ladder \
             ({} recovered solves, {} degraded reports)",
            batch.recovered_solves, batch.degraded
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all robustness gates passed");
}
