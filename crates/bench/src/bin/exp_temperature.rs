//! **E2** — Section III-B temperature coupling: at the nominal 676 ml/min
//! the chip's heat barely changes the polarization (≤4 % more current at
//! fixed potential); throttling to 48 ml/min or pre-heating the inlet to
//! 37 °C raises the generated power by up to 23 %.

use bright_bench::{banner, compare_row};
use bright_core::{CoSimulation, Scenario};

fn run(label: &str, scenario: Scenario) -> Result<bright_core::CoSimReport, Box<dyn std::error::Error>> {
    let report = CoSimulation::new(scenario)?.run()?;
    println!(
        "  {label:<28} peak {:>6.1} degC   I(1V) {:>6.3} A   boost {:+6.1}%",
        report.peak_temperature.to_celsius().value(),
        report.current_at_1v.value(),
        report.thermal_boost_percent
    );
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("E2", "thermal enhancement of power generation");
    println!("  (boost = current at 1 V with chip heat vs isothermal inlet)\n");

    let nominal = run("nominal 676 ml/min, 27 C", Scenario::power7_nominal())?;
    let throttled = run("throttled 48 ml/min", Scenario::power7_throttled())?;
    let warm = run("warm inlet 37 C", Scenario::power7_warm_inlet())?;

    println!();
    println!(
        "{}",
        compare_row(
            "nominal-flow boost (paper: <= 4 %)",
            4.0,
            nominal.thermal_boost_percent,
            "%"
        )
    );
    println!(
        "{}",
        compare_row(
            "throttled-flow boost (paper: up to 23 %)",
            23.0,
            throttled.thermal_boost_percent,
            "%"
        )
    );
    // The warm-inlet comparison in the paper is against the 27 C inlet:
    // compare currents at 1 V between the two runs directly.
    let warm_gain =
        (warm.current_at_1v.value() / nominal.current_at_1v.value() - 1.0) * 100.0;
    println!(
        "{}",
        compare_row("37 C inlet gain vs 27 C (paper: up to 23 %)", 23.0, warm_gain, "%")
    );
    println!(
        "\nthrottled peak temperature: {:.1} degC (hotter chip, better cell)",
        throttled.peak_temperature.to_celsius().value()
    );
    Ok(())
}
