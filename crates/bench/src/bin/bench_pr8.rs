//! PR-8 performance gate: the Monte Carlo uncertainty engine. Records
//! the results in `BENCH_PR8.json`.
//!
//! Three gate families, mirroring the acceptance criteria:
//!
//! * `throughput` — a seeded yield study served warm through the
//!   retarget mutators and the shared geometry cache
//!   ([`bright_core::montecarlo::run`]) versus the naive baseline that
//!   cold-builds a [`bright_core::CoSimulation`] for every sample.
//!   Both legs are serial and solve the identical sample sequence; the
//!   warm path must be ≥ 5× faster at the full sample count.
//! * `determinism` — the same seeded study run at chunk sizes
//!   {1, 64, n} × worker counts {1, 4}: every `McReport` JSON document
//!   must be bitwise identical (samples are a pure function of
//!   `(seed, index)` and the streaming reduction is a pure function of
//!   the index range).
//! * `memory` — the streaming accumulators at 64 and 1024 samples: the
//!   live merge-forest nodes stay logarithmic (≤ 12) and the total
//!   accumulator footprint grows by at most 2× while the sample count
//!   grows 16× — the study never stores per-sample results.
//!
//! Usage: `bench_pr8 [--quick] [--out <path>]` (default
//! `BENCH_PR8.json`). `--quick` shrinks the sample counts (200-sample
//! throughput/determinism legs, 32/256-sample memory legs) to keep CI
//! wall-clock in check; the gates themselves are unchanged.

use bright_core::montecarlo::{self, McSpec};
use bright_core::{CoSimulation, Scenario};
use bright_jsonio::Value;
use bright_num::rng::{CorrelatedSampler, Distribution};
use std::time::Instant;

/// Required speedup of the warm retarget-served study over cold
/// per-sample co-simulation builds.
const MIN_WARM_SPEEDUP: f64 = 5.0;
/// Live-node ceiling for the streaming reduction (log2 of any
/// practical sample count, with slack).
const MAX_LIVE_NODES: u64 = 12;
/// Footprint-growth ceiling while the sample count grows 16×.
const MAX_MEMORY_GROWTH: f64 = 2.0;

/// The reduced-resolution POWER7+ point with thermal and cell grids
/// coarsened further so one yield solve costs milliseconds and
/// thousands of them fit in a CI job. The PDN stays at the paper's
/// Fig. 8 resolution (106×85): the rail-droop metric the yield study
/// reads comes from that grid, and it is where the engine's amortized
/// Cholesky factor separates warm serving from per-sample cold builds.
fn tiny_scenario() -> Scenario {
    let mut s = Scenario::power7_reduced();
    s.thermal_columns = 11;
    s.thermal_ny = 8;
    s.cell_options.ny = 12;
    s.cell_options.nx = 24;
    s
}

fn spec_for(samples: usize) -> McSpec {
    let mut spec = McSpec::power7_tolerances(tiny_scenario());
    spec.samples = samples;
    spec
}

struct ThroughputRow {
    samples: usize,
    cold_s: f64,
    warm_s: f64,
    speedup: f64,
    cold_skipped: usize,
    warm_retargets: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl ThroughputRow {
    fn to_value(&self) -> Value {
        Value::object([
            ("samples".into(), Value::Number(self.samples as f64)),
            ("cold_s".into(), Value::Number(self.cold_s)),
            ("warm_s".into(), Value::Number(self.warm_s)),
            ("speedup".into(), Value::Number(self.speedup)),
            ("cold_skipped".into(), Value::Number(self.cold_skipped as f64)),
            ("warm_retargets".into(), Value::Number(self.warm_retargets as f64)),
            ("geometry_cache_hits".into(), Value::Number(self.cache_hits as f64)),
            ("geometry_cache_misses".into(), Value::Number(self.cache_misses as f64)),
        ])
    }
}

/// Gate 1: the warm engine versus per-sample cold builds on the same
/// sample sequence, both serial.
fn bench_throughput(samples: usize) -> ThroughputRow {
    let mut spec = spec_for(samples);
    spec.chunk = samples;
    spec.workers = Some(1);

    // Cold baseline: rebuild the full co-simulation (thermal model,
    // duct solve, flow-cell contexts, PDN factorization) per sample.
    let marginals: Vec<Distribution> = spec.variables.iter().map(|v| v.distribution).collect();
    let sampler = CorrelatedSampler::new(spec.seed, marginals, spec.correlation.as_deref())
        .expect("valid sampler");
    let mut cold_skipped = 0usize;
    let t0 = Instant::now();
    for i in 0..samples {
        let values = sampler.sample(i as u64);
        match montecarlo::apply_sample(&spec.base, &spec.variables, &values) {
            Ok(scenario) => {
                let mut sim = CoSimulation::new(scenario).expect("valid scenario");
                sim.run_yield().expect("cold yield solve");
            }
            Err(_) => cold_skipped += 1,
        }
    }
    let cold_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let run = montecarlo::run(&spec).expect("warm yield study");
    let warm_s = t1.elapsed().as_secs_f64();

    ThroughputRow {
        samples,
        cold_s,
        warm_s,
        speedup: cold_s / warm_s,
        cold_skipped,
        warm_retargets: run.stats.retargets,
        cache_hits: run.stats.geometry_cache_hits,
        cache_misses: run.stats.geometry_cache_misses,
    }
}

struct DeterminismRow {
    chunk: usize,
    workers: usize,
    run_s: f64,
    json: String,
}

impl DeterminismRow {
    fn to_value(&self) -> Value {
        Value::object([
            ("chunk".into(), Value::Number(self.chunk as f64)),
            ("workers".into(), Value::Number(self.workers as f64)),
            ("run_s".into(), Value::Number(self.run_s)),
            ("json_bytes".into(), Value::Number(self.json.len() as f64)),
        ])
    }
}

/// Gate 2: one seeded study at every (chunk, workers) combination; the
/// report JSON must never change.
fn bench_determinism(samples: usize, chunks: &[usize]) -> Vec<DeterminismRow> {
    let mut rows = Vec::new();
    for &chunk in chunks {
        for workers in [1usize, 4] {
            let mut spec = spec_for(samples);
            spec.chunk = chunk;
            spec.workers = Some(workers);
            let t0 = Instant::now();
            let run = montecarlo::run(&spec).expect("yield study");
            rows.push(DeterminismRow {
                chunk,
                workers,
                run_s: t0.elapsed().as_secs_f64(),
                json: run.report.to_json().to_json_string_pretty(),
            });
        }
    }
    rows
}

struct MemoryRow {
    samples: usize,
    peak_live_nodes: u64,
    state_bytes: u64,
}

impl MemoryRow {
    fn to_value(&self) -> Value {
        Value::object([
            ("samples".into(), Value::Number(self.samples as f64)),
            ("peak_live_nodes".into(), Value::Number(self.peak_live_nodes as f64)),
            ("state_bytes".into(), Value::Number(self.state_bytes as f64)),
        ])
    }
}

/// Gate 3: streaming footprint at a 16× sample-count spread.
fn bench_memory(samples: usize) -> MemoryRow {
    let mut spec = spec_for(samples);
    spec.chunk = 32.min(samples);
    let run = montecarlo::run(&spec).expect("yield study");
    MemoryRow {
        samples,
        peak_live_nodes: run.stats.peak_live_nodes,
        state_bytes: run.stats.accumulator_state_bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    bright_bench::banner(
        "BENCH_PR8",
        "Monte Carlo uncertainty engine: warm throughput, bitwise determinism, streaming memory",
    );

    let tp_samples = if quick { 200 } else { 1000 };
    let det_samples = if quick { 200 } else { 1000 };
    let det_chunks: Vec<usize> = vec![1, if quick { 16 } else { 64 }, det_samples];
    let (mem_small, mem_large) = if quick { (32, 256) } else { (64, 1024) };

    println!("-- throughput ({tp_samples} samples, serial) --");
    let tp = bench_throughput(tp_samples);
    println!(
        "  cold per-sample builds: {:.2} s   warm retarget-served: {:.2} s   speedup {:.2}x",
        tp.cold_s, tp.warm_s, tp.speedup
    );
    println!(
        "  warm leg: {} retargets, geometry cache {} hits / {} misses",
        tp.warm_retargets, tp.cache_hits, tp.cache_misses
    );

    println!("-- determinism ({det_samples} samples, chunks {det_chunks:?} x workers [1, 4]) --");
    let det = bench_determinism(det_samples, &det_chunks);
    let identical = det.iter().all(|r| r.json == det[0].json);
    for r in &det {
        println!(
            "  chunk {:>5}  workers {}  {:.2} s  report {}",
            r.chunk,
            r.workers,
            r.run_s,
            if r.json == det[0].json { "identical" } else { "DIVERGED" }
        );
    }

    println!("-- memory ({mem_small} vs {mem_large} samples) --");
    let mem = [bench_memory(mem_small), bench_memory(mem_large)];
    for m in &mem {
        println!(
            "  {:>5} samples: {:>2} peak live nodes, {} accumulator bytes",
            m.samples, m.peak_live_nodes, m.state_bytes
        );
    }
    let growth = mem[1].state_bytes as f64 / mem[0].state_bytes.max(1) as f64;
    println!(
        "  footprint growth {:.2}x for a {}x sample-count spread",
        growth,
        mem[1].samples / mem[0].samples
    );

    let doc = Value::object([
        ("bench".into(), Value::String("pr8".into())),
        ("quick".into(), Value::Bool(quick)),
        ("throughput".into(), tp.to_value()),
        (
            "determinism".into(),
            Value::object([
                ("samples".into(), Value::Number(det_samples as f64)),
                ("bitwise_identical".into(), Value::Bool(identical)),
                (
                    "configs".into(),
                    Value::Array(det.iter().map(DeterminismRow::to_value).collect()),
                ),
            ]),
        ),
        (
            "memory".into(),
            Value::object([
                ("rows".into(), Value::Array(mem.iter().map(MemoryRow::to_value).collect())),
                ("growth".into(), Value::Number(growth)),
            ]),
        ),
        (
            "gates".into(),
            Value::object([
                ("min_warm_speedup".into(), Value::Number(MIN_WARM_SPEEDUP)),
                ("max_live_nodes".into(), Value::Number(MAX_LIVE_NODES as f64)),
                ("max_memory_growth".into(), Value::Number(MAX_MEMORY_GROWTH)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write bench json");
    println!("wrote {out_path}");

    let mut failed = false;
    if tp.speedup < MIN_WARM_SPEEDUP {
        eprintln!(
            "GATE FAILED: warm Monte Carlo throughput is {:.2}x over cold per-sample builds \
             (need >= {MIN_WARM_SPEEDUP}x): cold {:.2} s vs warm {:.2} s",
            tp.speedup, tp.cold_s, tp.warm_s
        );
        failed = true;
    }
    if !identical {
        eprintln!(
            "GATE FAILED: McReport JSON diverged across chunk sizes {det_chunks:?} and \
             worker counts [1, 4] at seed 2014"
        );
        failed = true;
    }
    for m in &mem {
        if m.peak_live_nodes > MAX_LIVE_NODES {
            eprintln!(
                "GATE FAILED: {} samples peaked at {} live merge nodes \
                 (limit {MAX_LIVE_NODES}): the reduction must stay logarithmic",
                m.samples, m.peak_live_nodes
            );
            failed = true;
        }
    }
    if growth > MAX_MEMORY_GROWTH {
        eprintln!(
            "GATE FAILED: accumulator footprint grew {growth:.2}x across a 16x sample spread \
             (limit {MAX_MEMORY_GROWTH}x): {} -> {} bytes",
            mem[0].state_bytes, mem[1].state_bytes
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all Monte Carlo gates passed");
}
