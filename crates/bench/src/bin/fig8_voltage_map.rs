//! **F8** — Fig. 8 of the paper: voltage distribution in the power grid
//! supplying the POWER7+ cache memories from the microfluidic cell array
//! (1.0 V rail, uniform TSV/VRM ports, color scale 0.96–1.0 V).

use bright_bench::{banner, compare_row};
use bright_floorplan::power7;
use bright_mesh::render::{render_ascii, RenderOptions};
use bright_pdn::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("F8", "Fig. 8 - cache rail voltage map");

    let grid = presets::power7_cache_rail()?;
    println!(
        "grid: {}x{} cells, {} supply ports, {:.2} A cache load\n",
        grid.grid().nx(),
        grid.grid().ny(),
        grid.port_count(),
        grid.total_sink_current().value()
    );

    let sol = grid.solve()?;
    let map = render_ascii(
        sol.voltage_map(),
        &RenderOptions {
            width: 80,
            height: 26,
            scale_min: Some(0.96),
            scale_max: Some(1.0),
            ..RenderOptions::default()
        },
    );
    println!("{map}");

    let plan = power7::floorplan();
    println!("per-block mean rail voltage:");
    for name in ["l3_0", "l3_1", "l2_0", "l2_4", "core0", "io_left"] {
        let rect = *plan.block(name).expect("known block").rect();
        let v = sol
            .mean_voltage_where(|x, y| rect.contains(x, y))
            .expect("block covers cells");
        println!("  {name:<10} {:.4} V", v.value());
    }

    println!();
    println!(
        "{}",
        compare_row("minimum rail voltage", 0.96, sol.min_voltage().value(), "V")
    );
    println!(
        "{}",
        compare_row("maximum rail voltage", 1.0, sol.max_voltage().value(), "V")
    );
    println!(
        "  worst IR drop: {:.1} mV; delivered power {:.2} W",
        sol.worst_drop().value() * 1e3,
        sol.delivered_power().value()
    );
    Ok(())
}
