//! Exports a full co-simulation report as JSON (for plotting/downstream
//! tooling). Pass `--nominal`, `--throttled`, `--warm-inlet` or
//! `--reduced` (default `--reduced` to keep the run short).

use bright_core::{CoSimulation, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "--reduced".into());
    let scenario = match arg.as_str() {
        "--nominal" => Scenario::power7_nominal(),
        "--throttled" => Scenario::power7_throttled(),
        "--warm-inlet" => Scenario::power7_warm_inlet(),
        "--reduced" => Scenario::power7_reduced(),
        other => {
            eprintln!(
                "unknown scenario '{other}'; expected --nominal, --throttled, \
                 --warm-inlet or --reduced"
            );
            std::process::exit(2);
        }
    };
    let report = CoSimulation::new(scenario)?.run()?;
    println!("{}", report.to_json_string_pretty());
    Ok(())
}
