//! PR-9 gates: the durable scenario service. Records the results in
//! `BENCH_PR9.json`.
//!
//! Three gate families, mirroring the acceptance criteria:
//!
//! * `clean_path` — a mixed batch (steady sweep + transient traces +
//!   polarization) served end-to-end through the durable service
//!   (spec files, write-ahead journal, checksummed reports) versus
//!   the same work pushed straight through a
//!   [`bright_core::ScenarioEngine`], min-of-N per leg, gated on
//!   process CPU time so scheduler interference on a shared host
//!   cannot flip the verdict. The durability layer must cost <= 5%
//!   on the clean path; wall-clock and mixed jobs/sec figures are
//!   recorded alongside.
//! * `crash_recovery` — the condensed kill matrix: a one-shot process
//!   kill scheduled at the k-th store-write opportunity for every k
//!   until the schedule runs past the last write, each killed store
//!   reopened, resubmitted and drained. Every recovered report set
//!   must be bitwise identical to the uninterrupted baseline with zero
//!   lost or duplicated jobs.
//! * `bounded_cache` — a capacity-1 service fed two distinct operator
//!   patterns: the LRU must evict (counter visible in `EngineStats`)
//!   and the resident count must respect the bound.
//!
//! Usage: `bench_pr9 [--quick] [--out <path>]` (default
//! `BENCH_PR9.json`). `--quick` shrinks the clean-path batch; the
//! gates themselves are unchanged.

use bright_core::service::{JobKind, JobSpec, JobStatus, LoadRef, Priority};
use bright_core::{
    LoadStep, PolarizationRequest, ScenarioEngine, ScenarioService, ServiceClock, ServiceConfig,
    SteppingMode, TransientRequest,
};
use bright_floorplan::PowerScenario;
use bright_jsonio::Value;
use bright_num::faults::{self, FaultPlan};
use bright_units::Kelvin;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Ceiling on the durability layer's clean-path cost over the direct
/// engine (fractional: 0.05 = 5%).
const MAX_CLEAN_OVERHEAD: f64 = 0.05;

/// A fixed submission instant for the deterministic crash-matrix clock.
const T0: u64 = 1_700_000_000_000;

fn bench_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_pr9_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Coarse overrides so one job costs milliseconds (crash matrix /
/// cache legs).
fn coarse(mut spec: JobSpec) -> JobSpec {
    spec.overrides.thermal_columns = Some(11);
    spec.overrides.thermal_ny = Some(8);
    spec.overrides.cell_ny = Some(10);
    spec.overrides.cell_nx = Some(16);
    spec.overrides.sweep_points = Some(4);
    spec
}

fn transient_kind(scale: f64) -> JobKind {
    JobKind::Transient {
        trace: vec![
            (3e-3, LoadRef { base: "full_load".into(), scale }, None),
            (3e-3, LoadRef::cache_only(), None),
        ],
        initial_temperature_k: 300.0,
        stepping: SteppingMode::Fixed { dt: 1e-3 },
    }
}

/// Upsized `power7_reduced` overrides for the clean-path legs: each
/// job costs a few hundred milliseconds, so the per-job durability
/// constant (a handful of small file writes) amortizes and scheduler
/// noise on a one-core host stays small against the leg's wall clock.
fn heavy(mut spec: JobSpec) -> JobSpec {
    spec.overrides.thermal_columns = Some(44);
    spec.overrides.thermal_ny = Some(44);
    spec.overrides.cell_ny = Some(24);
    spec.overrides.cell_nx = Some(120);
    spec
}

/// The mixed clean-path batch at upsized `power7_reduced` resolution:
/// `n` steady points across a flow sweep, `n/2` transient traces with
/// distinct first loads (no shared prefixes, so the direct-engine leg
/// cannot amortize work the service does not), `n/2` polarization
/// sweeps.
fn mixed_batch(n: usize) -> Vec<JobSpec> {
    let mut specs = Vec::new();
    for i in 0..n {
        let mut spec = heavy(JobSpec::steady("power7_reduced"));
        spec.overrides.total_flow_ml_min = Some(600.0 + 20.0 * i as f64);
        specs.push(spec);
    }
    for i in 0..n / 2 {
        let mut spec = heavy(JobSpec::steady("power7_reduced"));
        spec.kind = transient_kind(1.0 - 0.1 * i as f64);
        spec.priority = Priority::Batch;
        specs.push(spec);
    }
    for i in 0..n / 2 {
        let mut spec = heavy(JobSpec::steady("power7_reduced"));
        spec.kind = JobKind::Polarization { points: 6 };
        spec.overrides.inlet_temperature_k = Some(300.0 + 2.0 * i as f64);
        spec.priority = Priority::Interactive;
        specs.push(spec);
    }
    specs
}

struct CleanPath {
    jobs: usize,
    direct_s: f64,
    service_s: f64,
    overhead: f64,
    jobs_per_sec: f64,
}

impl CleanPath {
    fn to_value(&self) -> Value {
        Value::object([
            ("jobs".into(), Value::Number(self.jobs as f64)),
            ("direct_engine_s".into(), Value::Number(self.direct_s)),
            ("service_s".into(), Value::Number(self.service_s)),
            ("overhead".into(), Value::Number(self.overhead)),
            ("mixed_jobs_per_sec".into(), Value::Number(self.jobs_per_sec)),
        ])
    }
}

/// Repetitions per clean-path leg; the minimum cost is kept. The min
/// over a few repetitions is the standard estimator for a workload's
/// intrinsic cost under interference.
const CLEAN_REPS: usize = 3;

/// Process CPU time (user + system, all threads) in arbitrary clock
/// ticks. Wall clock on a shared one-core host swings tens of percent
/// from scheduler interference alone, which would make a 5% gate pure
/// noise; CPU time charges exactly the work the process did. The
/// overhead gate is a ratio, so the tick unit cancels. Falls back to
/// wall clock off Linux.
fn cpu_time_ticks() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Skip past the parenthesised comm field, which may contain spaces.
    let rest = stat.get(stat.rfind(')')? + 2..)?;
    let mut fields = rest.split_whitespace();
    let utime: f64 = fields.nth(11)?.parse().ok()?;
    let stime: f64 = fields.next()?.parse().ok()?;
    Some(utime + stime)
}

/// Times one clean-path leg: CPU ticks for the gate (when available)
/// plus wall-clock seconds for the record.
fn time_leg<R>(body: impl FnOnce() -> R) -> (f64, f64, R) {
    let cpu0 = cpu_time_ticks();
    let t0 = Instant::now();
    let out = body();
    let wall_s = t0.elapsed().as_secs_f64();
    let cost = match (cpu0, cpu_time_ticks()) {
        (Some(a), Some(b)) => b - a,
        _ => wall_s,
    };
    (cost, wall_s, out)
}

/// Gate 1: the identical mixed workload through a bare deterministic
/// engine versus through the full durable service.
fn bench_clean_path(n: usize) -> CleanPath {
    let specs = mixed_batch(n);
    let jobs = specs.len();

    // Direct leg: one persistent engine, no store, no journal.
    let mut steady = Vec::new();
    let mut transients = Vec::new();
    let mut polarizations = Vec::new();
    for spec in &specs {
        let scenario = spec.scenario().expect("valid spec");
        match &spec.kind {
            JobKind::Steady => steady.push(scenario),
            JobKind::Transient {
                trace,
                initial_temperature_k,
                stepping,
            } => transients.push(TransientRequest {
                scenario,
                trace: trace
                    .iter()
                    .map(|(duration, load, _)| {
                        LoadStep::new(*duration, match load.base.as_str() {
                            "full_load" => PowerScenario::full_load().scaled(load.scale),
                            _ => PowerScenario::cache_only().scaled(load.scale),
                        })
                    })
                    .collect(),
                initial_temperature: Kelvin::new(*initial_temperature_k),
                stepping: *stepping,
            }),
            JobKind::Polarization { points } => {
                let mut request = PolarizationRequest::new(scenario);
                request.points = *points;
                polarizations.push(request);
            }
        }
    }
    // The two legs of one rep run back to back, so slow-host windows
    // (frequency scaling, steal time) inflate both about equally and
    // cancel in the per-rep ratio; taking the min ratio across reps
    // then discards any rep where interference hit one leg alone.
    let mut overhead = f64::INFINITY;
    let mut direct_s = f64::INFINITY;
    let mut service_s = f64::INFINITY;
    for _ in 0..CLEAN_REPS {
        // Direct rep: a fresh engine each time so no rep amortizes
        // warm state the others paid for.
        let (direct_cost, wall_s, ()) = time_leg(|| {
            let mut engine = ScenarioEngine::new();
            engine.set_deterministic(true);
            for report in engine.run_batch(steady.clone()) {
                report.result.expect("steady solve");
            }
            for report in engine.run_transient_batch(transients.clone()) {
                report.result.expect("transient solve");
            }
            for report in engine.run_polarization_batch(polarizations.clone()) {
                report.result.expect("polarization solve");
            }
        });
        direct_s = direct_s.min(wall_s);

        // Service rep: the same jobs through spec files, the
        // write-ahead journal, per-segment checkpoints and checksummed
        // reports, into a fresh store each time.
        let dir = bench_dir("clean");
        let (service_cost, wall_s, summary) = time_leg(|| {
            let mut service =
                ScenarioService::open(&dir, ServiceConfig::default(), ServiceClock::System)
                    .expect("service opens");
            for spec in specs.clone() {
                service.submit(spec).expect("admitted");
            }
            service.drain().expect("drain")
        });
        service_s = service_s.min(wall_s);
        assert_eq!(summary.completed as usize, jobs, "every job completes");
        let _ = std::fs::remove_dir_all(&dir);

        overhead = overhead.min(service_cost / direct_cost - 1.0);
    }

    CleanPath {
        jobs,
        direct_s,
        service_s,
        overhead,
        jobs_per_sec: jobs as f64 / service_s,
    }
}

fn report_bytes(root: &Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut out = std::collections::BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(root.join("reports")) {
        for entry in entries.flatten() {
            out.insert(
                entry.file_name().to_string_lossy().into_owned(),
                std::fs::read(entry.path()).expect("report readable"),
            );
        }
    }
    out
}

struct CrashLeg {
    kill_points: u64,
    all_identical: bool,
    lost_or_duplicated: u64,
    total_s: f64,
}

impl CrashLeg {
    fn to_value(&self) -> Value {
        Value::object([
            ("kill_points".into(), Value::Number(self.kill_points as f64)),
            ("all_identical".into(), Value::Bool(self.all_identical)),
            (
                "lost_or_duplicated".into(),
                Value::Number(self.lost_or_duplicated as f64),
            ),
            ("total_s".into(), Value::Number(self.total_s)),
        ])
    }
}

/// Gate 2: the condensed kill matrix — one scripted kill per
/// store-write opportunity, recover, compare bitwise.
fn bench_crash_recovery() -> CrashLeg {
    let specs = vec![coarse(JobSpec::steady("power7_reduced")), {
        let mut spec = coarse(JobSpec::steady("power7_reduced"));
        spec.kind = transient_kind(1.0);
        spec.priority = Priority::Batch;
        spec
    }];
    let open = |root: &Path| {
        ScenarioService::open(root, ServiceConfig::default(), ServiceClock::manual(T0))
            .expect("service opens")
    };

    let baseline_dir = bench_dir("crash_baseline");
    let mut baseline_svc = open(&baseline_dir);
    for spec in &specs {
        baseline_svc.submit(spec.clone()).expect("admitted");
    }
    baseline_svc.drain().expect("baseline drain");
    let baseline = report_bytes(&baseline_dir);
    drop(baseline_svc);

    // The matrix kills on purpose dozens of times; keep the default
    // panic report from flooding stderr.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let start = Instant::now();
    let mut kill_points = 0u64;
    let mut all_identical = true;
    let mut lost_or_duplicated = 0u64;
    for shot in 1..500u64 {
        let dir = bench_dir("crash_shot");
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            faults::with_scope(Some(FaultPlan::one_shot_crash(shot)), || {
                let mut svc = open(&dir);
                for spec in &specs {
                    svc.submit(spec.clone()).expect("admitted");
                }
                svc.drain().expect("drain");
            })
        }));
        if run.is_ok() {
            // The schedule ran past the last write opportunity.
            break;
        }
        kill_points += 1;
        let mut svc = open(&dir);
        let accepted = svc.statuses().len();
        for spec in &specs[accepted.min(specs.len())..] {
            svc.submit(spec.clone()).expect("resubmitted");
        }
        svc.drain().expect("recovery drain");
        if svc.statuses().len() != specs.len() {
            lost_or_duplicated += 1;
        }
        if report_bytes(&dir) != baseline {
            all_identical = false;
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    std::panic::set_hook(default_hook);
    let _ = std::fs::remove_dir_all(&baseline_dir);
    CrashLeg {
        kill_points,
        all_identical,
        lost_or_duplicated,
        total_s: start.elapsed().as_secs_f64(),
    }
}

struct CacheLeg {
    evicted_workers: u64,
    cache_residents: u64,
    cache_capacity: u64,
}

impl CacheLeg {
    fn to_value(&self) -> Value {
        Value::object([
            ("evicted_workers".into(), Value::Number(self.evicted_workers as f64)),
            ("cache_residents".into(), Value::Number(self.cache_residents as f64)),
            ("cache_capacity".into(), Value::Number(self.cache_capacity as f64)),
        ])
    }
}

/// Gate 3: a capacity-1 service over two distinct operator patterns
/// must evict and stay within the bound.
fn bench_bounded_cache() -> CacheLeg {
    let dir = bench_dir("cache");
    let config = ServiceConfig {
        cache_capacity: 1,
        ..ServiceConfig::default()
    };
    let mut svc =
        ScenarioService::open(&dir, config, ServiceClock::manual(T0)).expect("service opens");
    let first = coarse(JobSpec::steady("power7_reduced"));
    let mut second = coarse(JobSpec::steady("power7_reduced"));
    second.overrides.thermal_ny = Some(11); // a different operator pattern
    for spec in [first, second] {
        let id = svc.submit(spec).expect("admitted");
        svc.run_next().expect("dispatch");
        assert_eq!(svc.status(id).expect("known"), JobStatus::Done);
    }
    let stats = svc.engine_stats();
    let _ = std::fs::remove_dir_all(&dir);
    CacheLeg {
        evicted_workers: stats.evicted_workers,
        cache_residents: stats.cache_residents,
        cache_capacity: stats.cache_capacity,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    bright_bench::banner(
        "BENCH_PR9",
        "Durable scenario service: clean-path overhead, crash-recovery matrix, bounded caches",
    );

    // Large enough that the ~10 ms granularity of the CPU clock stays
    // around a percent of the leg.
    let n = if quick { 4 } else { 8 };

    println!("-- clean path (mixed batch, service vs direct engine) --");
    let clean = bench_clean_path(n);
    println!(
        "  {} jobs: direct engine {:.2} s   durable service {:.2} s   cpu overhead {:+.2}%",
        clean.jobs,
        clean.direct_s,
        clean.service_s,
        clean.overhead * 100.0
    );
    println!("  mixed throughput: {:.2} jobs/s", clean.jobs_per_sec);

    println!("-- crash recovery (one kill per store-write opportunity) --");
    let crash = bench_crash_recovery();
    println!(
        "  {} kill points in {:.2} s: reports {}, {} runs lost/duplicated jobs",
        crash.kill_points,
        crash.total_s,
        if crash.all_identical {
            "all bitwise identical"
        } else {
            "DIVERGED"
        },
        crash.lost_or_duplicated
    );

    println!("-- bounded caches (capacity 1, two operator patterns) --");
    let cache = bench_bounded_cache();
    println!(
        "  {} evictions, {} residents at capacity {}",
        cache.evicted_workers, cache.cache_residents, cache.cache_capacity
    );

    let doc = Value::object([
        ("bench".into(), Value::String("pr9".into())),
        ("quick".into(), Value::Bool(quick)),
        ("clean_path".into(), clean.to_value()),
        ("crash_recovery".into(), crash.to_value()),
        ("bounded_cache".into(), cache.to_value()),
        (
            "gates".into(),
            Value::object([(
                "max_clean_overhead".into(),
                Value::Number(MAX_CLEAN_OVERHEAD),
            )]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write bench json");
    println!("wrote {out_path}");

    let mut failed = false;
    if clean.overhead > MAX_CLEAN_OVERHEAD {
        eprintln!(
            "GATE FAILED: the durability layer costs {:.2}% CPU on the clean path \
             (limit {:.0}%): direct {:.2} s vs service {:.2} s wall",
            clean.overhead * 100.0,
            MAX_CLEAN_OVERHEAD * 100.0,
            clean.direct_s,
            clean.service_s
        );
        failed = true;
    }
    if crash.kill_points == 0 {
        eprintln!("GATE FAILED: the crash matrix never killed — fault sites not wired");
        failed = true;
    }
    if !crash.all_identical {
        eprintln!(
            "GATE FAILED: a recovered report set diverged bitwise from the \
             uninterrupted baseline"
        );
        failed = true;
    }
    if crash.lost_or_duplicated > 0 {
        eprintln!(
            "GATE FAILED: {} recovered runs lost or duplicated jobs",
            crash.lost_or_duplicated
        );
        failed = true;
    }
    if cache.evicted_workers == 0 || cache.cache_residents > 3 {
        eprintln!(
            "GATE FAILED: capacity-1 caches held {} residents with {} evictions \
             (must evict and respect the bound)",
            cache.cache_residents, cache.evicted_workers
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all durable-service gates passed");
}
