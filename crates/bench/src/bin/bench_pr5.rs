//! PR-5 performance gate: retargetable flow-cell sessions. Records the
//! results in `BENCH_PR5.json`.
//!
//! Two benchmark families, mirroring the acceptance criteria:
//!
//! * `polarization_retarget_sweep` — a flow/temperature ablation over a
//!   duct-velocity cell. Baseline rebuilds the `CellModel` per point
//!   (fresh duct solve + transport-operator factorizations, the
//!   pre-PR-5 sweep behaviour); the new path retargets one model in
//!   place (`retarget_flow` / `retarget_temperature`): the geometry
//!   context and operator storage survive every point. Gate ≥ 1.3×.
//! * `engine_polarization_batch` — the same ablation served as
//!   `ScenarioRequest::Polarization` through a `ScenarioEngine`
//!   (cached, retargeted cell workers) vs. per-request cold models.
//!   Gate ≥ 1.05× (the engine adds grouping/dispatch overhead on top
//!   of the same retarget win).
//!
//! Usage: `bench_pr5 [--quick] [--out <path>]` (default `BENCH_PR5.json`).

use bright_core::{PolarizationRequest, Scenario, ScenarioEngine};
use bright_echem::vanadium;
use bright_flow::RectChannel;
use bright_flowcell::options::{SolverOptions, TemperatureProfile, VelocityModel};
use bright_flowcell::{CellGeometry, CellModel};
use bright_jsonio::Value;
use bright_units::{CubicMetersPerSecond, Kelvin, Meters};
use std::hint::black_box;
use std::time::Instant;

struct SpeedupRow {
    name: &'static str,
    baseline_s: f64,
    optimized_s: f64,
    points: f64,
    unit: &'static str,
}

impl SpeedupRow {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s
    }

    fn to_json(&self) -> Value {
        Value::object([
            ("name".into(), Value::String(self.name.into())),
            ("baseline_s".into(), Value::Number(self.baseline_s)),
            ("optimized_s".into(), Value::Number(self.optimized_s)),
            ("speedup".into(), Value::Number(self.speedup())),
            (
                "optimized_per_sec".into(),
                Value::Number(self.points / self.optimized_s),
            ),
            ("unit".into(), Value::String(self.unit.into())),
        ])
    }
}

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up, then the best of `reps` timed repetitions
    // (minimum is the least noisy statistic on a shared host).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// The duct-velocity cell options of the benchmark: a real Poisson
/// solve in the geometry context, moderate transport grids.
fn bench_options() -> SolverOptions {
    SolverOptions {
        ny: 32,
        nx: 80,
        velocity: VelocityModel::Duct { nz: 16 },
        ..SolverOptions::default()
    }
}

fn bench_geometry() -> CellGeometry {
    CellGeometry::new(
        RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .expect("Table II channel"),
    )
}

fn cold_model(flow: CubicMetersPerSecond, inlet: Kelvin) -> CellModel {
    CellModel::new(
        bench_geometry(),
        vanadium::power7_cell_chemistry(),
        flow,
        TemperatureProfile::Uniform(inlet),
        bench_options(),
    )
    .expect("valid cell")
}

/// The ablation points: a flow ladder at 300 K plus a temperature
/// ladder at nominal flow (per-channel ml/min, K).
fn ablation_points(points: usize) -> Vec<(f64, f64)> {
    let n_flow = points / 2;
    let n_temp = points - n_flow;
    let mut out = Vec::with_capacity(points);
    for k in 0..n_flow {
        let ml_min = 7.68 - (7.68 - 0.55) * k as f64 / (n_flow - 1).max(1) as f64;
        out.push((ml_min, 300.0));
    }
    for k in 0..n_temp {
        let t = 295.0 + 30.0 * k as f64 / (n_temp - 1).max(1) as f64;
        out.push((7.68, t));
    }
    out
}

fn bench_retarget_sweep(reps: usize, points: usize, curve_n: usize) -> SpeedupRow {
    let ablation = ablation_points(points);

    // Baseline: rebuild the model at every point — a fresh duct solve
    // and fresh transport-operator factorizations each time.
    let baseline_s = time(reps, || {
        for &(ml_min, t) in &ablation {
            let model = cold_model(
                CubicMetersPerSecond::from_milliliters_per_minute(ml_min),
                Kelvin::new(t),
            );
            black_box(model.polarization_curve(curve_n).expect("sweep"));
        }
    });

    // Optimized: one model retargeted in place per point.
    let mut model = cold_model(
        CubicMetersPerSecond::from_milliliters_per_minute(7.68),
        Kelvin::new(300.0),
    );
    model.warm().expect("context");
    let optimized_s = time(reps, || {
        for &(ml_min, t) in &ablation {
            model
                .retarget_flow(CubicMetersPerSecond::from_milliliters_per_minute(ml_min))
                .expect("flow retarget");
            model
                .retarget_temperature(TemperatureProfile::Uniform(Kelvin::new(t)))
                .expect("temperature retarget");
            black_box(model.polarization_curve(curve_n).expect("sweep"));
        }
    });
    let stats = model.context_stats();
    assert_eq!(
        stats.geometry_builds, 1,
        "retarget sweep must solve the duct exactly once"
    );
    assert_eq!(
        stats.op_builds, 2,
        "retarget sweep must never rebuild transport operators"
    );
    SpeedupRow {
        name: "polarization_retarget_sweep",
        baseline_s,
        optimized_s,
        points: ablation.len() as f64,
        unit: "points",
    }
}

fn bench_engine_batch(reps: usize, requests: usize, curve_n: usize) -> SpeedupRow {
    let scenarios: Vec<Scenario> = ablation_points(requests)
        .into_iter()
        .map(|(ml_min, t)| {
            let mut s = Scenario::power7_nominal();
            s.cell_options = bench_options();
            s.total_flow = CubicMetersPerSecond::from_milliliters_per_minute(
                ml_min * s.channel_count as f64,
            );
            s.inlet_temperature = Kelvin::new(t);
            s
        })
        .collect();

    // Baseline: every request pays for a cold model.
    let baseline_s = time(reps, || {
        for s in &scenarios {
            let model = cold_model(s.per_channel_flow(), s.inlet_temperature);
            black_box(
                model
                    .polarization_curve(curve_n)
                    .expect("sweep")
                    .scaled_parallel(s.channel_count),
            );
        }
    });

    // Optimized: a long-lived engine serves the batch from one cached,
    // retargeted cell worker.
    let mut engine = ScenarioEngine::new();
    let optimized_s = time(reps, || {
        let reports = engine.run_polarization_batch(scenarios.iter().map(|s| {
            PolarizationRequest {
                scenario: s.clone(),
                points: curve_n,
            }
        }));
        for r in &reports {
            assert!(r.result.is_ok(), "engine request failed: {:?}", r.result);
        }
        black_box(reports);
    });
    let stats = engine.stats();
    assert_eq!(stats.cell_contexts_built, 1, "one pattern, one cold build");
    SpeedupRow {
        name: "engine_polarization_batch",
        baseline_s,
        optimized_s,
        points: requests as f64,
        unit: "requests",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());
    let reps = if quick { 2 } else { 4 };
    let sweep_points = if quick { 6 } else { 10 };
    let engine_requests = if quick { 6 } else { 10 };
    let curve_n = if quick { 6 } else { 8 };

    bright_bench::banner(
        "BENCH_PR5",
        "retargetable flow-cell sessions, engine-batched polarization",
    );
    let rows = [
        bench_retarget_sweep(reps, sweep_points, curve_n),
        bench_engine_batch(reps, engine_requests, curve_n),
    ];
    for row in &rows {
        println!(
            "  {:<28} baseline {:>9.4} s  optimized {:>9.4} s  speedup {:>5.2}x  ({:.1} {}/s optimized)",
            row.name,
            row.baseline_s,
            row.optimized_s,
            row.speedup(),
            row.points / row.optimized_s,
            row.unit,
        );
    }

    let doc = Value::object([
        (
            "benchmarks".into(),
            Value::Array(rows.iter().map(SpeedupRow::to_json).collect()),
        ),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                (
                    "polarization_retarget_sweep_min_speedup".into(),
                    Value::Number(1.3),
                ),
                (
                    "engine_polarization_batch_min_speedup".into(),
                    Value::Number(1.05),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR5.json");
    println!("  results written to {out_path}");

    // Fail loudly when an acceptance gate regresses.
    let mut failed = false;
    let gate = |rows: &[SpeedupRow], name: &str, min: f64, failed: &mut bool| {
        let row = rows.iter().find(|r| r.name == name).expect("known row");
        if row.speedup() < min {
            eprintln!(
                "GATE FAILED: {name} speedup {:.2}x < required {min:.2}x",
                row.speedup()
            );
            *failed = true;
        }
    };
    gate(&rows, "polarization_retarget_sweep", 1.3, &mut failed);
    gate(&rows, "engine_polarization_batch", 1.05, &mut failed);
    if failed {
        std::process::exit(1);
    }
    println!("  all performance gates passed");
}
