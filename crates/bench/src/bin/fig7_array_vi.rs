//! **F7** — Fig. 7 of the paper: voltage–current characteristic of the
//! 88-channel microfluidic flow-cell array, with the paper's "6 A at 1 V"
//! marker.

use bright_bench::{banner, compare_row, print_table};
use bright_flowcell::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("F7", "Fig. 7 - 88-channel array V-I characteristic");

    let array = presets::power7_array()?;
    let curve = array.polarization_curve(20)?;

    let rows: Vec<Vec<String>> = curve
        .points()
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.voltage.value()),
                format!("{:.3}", p.current.value()),
                format!("{:.3}", p.power.value()),
            ]
        })
        .collect();
    print_table(&["V (V)", "I (A)", "P (W)"], &rows);

    let ocv = curve.open_circuit_voltage().value();
    let i_1v = curve
        .current_at_voltage(1.0)
        .expect("1 V on curve")
        .value();
    let mpp = curve.max_power_point();

    println!();
    println!("{}", compare_row("open-circuit voltage", 1.65, ocv, "V"));
    println!("{}", compare_row("current at 1.0 V", 6.0, i_1v, "A"));
    println!(
        "{}",
        compare_row("power at 1.0 V (cache demand ~5.7 W)", 6.0, i_1v * 1.0, "W")
    );
    println!(
        "  max power point: {:.2} W at {:.3} V / {:.2} A",
        mpp.power.value(),
        mpp.voltage.value(),
        mpp.current.value()
    );
    println!(
        "  limiting current (transport plateau): {:.2} A",
        curve.limiting_current().value()
    );
    println!();
    println!("shape notes: OCV matches the Fig. 7 intercept; the measured");
    println!("1 V current is ~2/3 of the paper's 6 A because this model");
    println!("resolves the co-laminar mass-transfer limit of flat wall");
    println!("electrodes (see EXPERIMENTS.md).");
    Ok(())
}
