//! PR-2 performance gate: preconditioner strength on the production PDN
//! grid, coefficient-refresh sweeps, and batched engine serving. Records
//! the results in `BENCH_PR2.json`.
//!
//! Three benchmark families, mirroring the acceptance criteria:
//!
//! * `pdn_precond_*` — CG iteration counts on the 212×170 (full paper
//!   resolution) cache-rail grid under Jacobi, SSOR(1.0), SSOR(1.5) and
//!   IC(0), all through bound solver sessions. Gate: the best of
//!   SSOR/IC(0) needs ≤ half of Jacobi's iterations.
//! * `thermal_refresh_sweep` — a flow-rate ablation over the POWER7+
//!   stack. Baseline rebuilds `ThermalModel` per point (the pre-PR-2
//!   sweep behaviour); the new path refreshes coefficients through the
//!   cached pattern and solves through one warm session. Gate ≥ 1.3×.
//! * `engine_batch` — a flow-rate scenario batch served by a
//!   `ScenarioEngine` (cached, retargeted workers) vs. per-request cold
//!   `CoSimulation`s. Gate ≥ 1.05× (the co-simulation is dominated by
//!   the flow-cell polarization sweep, which a flow-varying batch cannot
//!   reuse; the engine's win here is thermal/PDN amortization).
//!
//! Usage: `bench_pr2 [--quick] [--out <path>]` (default `BENCH_PR2.json`).

use bright_core::{CoSimulation, Scenario, ScenarioEngine};
use bright_floorplan::{power7, PowerScenario};
use bright_jsonio::Value;
use bright_num::PrecondSpec;
use bright_pdn::{PortLayout, PowerGrid};
use bright_thermal::ThermalModel;
use bright_units::{CubicMetersPerSecond, Kelvin, Volt};
use std::hint::black_box;
use std::time::Instant;

/// The full-resolution PDN reference grid of the acceptance criteria.
const REF_NX: usize = 212;
const REF_NY: usize = 170;

struct PrecondRow {
    name: String,
    iterations: usize,
    solve_s: f64,
}

struct SpeedupRow {
    name: &'static str,
    baseline_s: f64,
    optimized_s: f64,
    points: f64,
    unit: &'static str,
}

impl SpeedupRow {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s
    }

    fn to_json(&self) -> Value {
        Value::object([
            ("name".into(), Value::String(self.name.into())),
            ("baseline_s".into(), Value::Number(self.baseline_s)),
            ("optimized_s".into(), Value::Number(self.optimized_s)),
            ("speedup".into(), Value::Number(self.speedup())),
            (
                "optimized_per_sec".into(),
                Value::Number(self.points / self.optimized_s),
            ),
            ("unit".into(), Value::String(self.unit.into())),
        ])
    }
}

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up, then the best of `reps` timed repetitions
    // (minimum is the least noisy statistic on a shared host).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Builds the 212×170 cache-rail grid with the Fig. 8 electrical
/// parameters.
fn reference_grid() -> PowerGrid {
    let plan = power7::floorplan();
    let grid = bright_mesh::Grid2d::from_extent(
        plan.width().value(),
        plan.height().value(),
        REF_NX,
        REF_NY,
    )
    .expect("grid");
    let load = PowerScenario::cache_only()
        .rasterize(&plan, &grid)
        .expect("rail map");
    PowerGrid::new(
        grid,
        bright_pdn::presets::CACHE_RAIL_SHEET_RESISTANCE,
        Volt::new(1.0),
        bright_pdn::presets::PORT_RESISTANCE,
        &PortLayout::UniformArray {
            pitch: bright_pdn::presets::PORT_PITCH,
        },
        &load,
    )
    .expect("valid grid")
}

fn bench_preconditioners(reps: usize) -> Vec<PrecondRow> {
    let pg = reference_grid();
    let specs: [(&str, PrecondSpec); 4] = [
        ("jacobi", PrecondSpec::Jacobi),
        ("ssor_1.0", PrecondSpec::ssor()),
        ("ssor_1.5", PrecondSpec::Ssor { omega: 1.5 }),
        ("ic0", PrecondSpec::Ic0),
    ];
    specs
        .iter()
        .map(|(name, spec)| {
            let mut iterations = 0usize;
            let solve_s = time(reps, || {
                // Fresh session per rep: cold start, so the iteration
                // count is the honest full-solve cost.
                let mut session = pg.session_with(*spec);
                black_box(pg.solve_warm(&mut session).expect("pdn solve"));
                iterations = session.last_stats().iterations;
            });
            println!(
                "  pdn_precond_{name:<9} {iterations:>5} iters  {solve_s:>9.4} s/solve ({REF_NX}x{REF_NY})"
            );
            PrecondRow {
                name: (*name).into(),
                iterations,
                solve_s,
            }
        })
        .collect()
}

fn bench_thermal_refresh(reps: usize, points: usize) -> SpeedupRow {
    let model = bright_thermal::presets::power7_stack().expect("Table II stack");
    let power = PowerScenario::full_load()
        .rasterize(&power7::floorplan(), model.grid())
        .expect("power map");
    let config = model.config().clone();
    let flows: Vec<CubicMetersPerSecond> = (0..points)
        .map(|k| {
            CubicMetersPerSecond::from_milliliters_per_minute(
                676.0 - (676.0 - 48.0) * k as f64 / (points - 1).max(1) as f64,
            )
        })
        .collect();
    let inlet = Kelvin::new(300.0);

    // Baseline: rebuild the model at every sweep point (assembly +
    // cold solve), the pre-PR-2 design-sweep behaviour.
    let baseline_s = time(reps, || {
        for flow in &flows {
            let mut cfg = config.clone();
            for layer in &mut cfg.layers {
                if let bright_thermal::LayerSpec::Microchannel { spec, .. } = layer {
                    spec.total_flow = *flow;
                    spec.inlet_temperature = inlet;
                }
            }
            let fresh = ThermalModel::new(cfg).expect("valid stack");
            black_box(fresh.solve_steady(&power).expect("steady solve"));
        }
    });

    // Optimized: one model, coefficients re-stamped through the cached
    // pattern, warm session across the sweep.
    let mut sweep_model = ThermalModel::new(config.clone()).expect("valid stack");
    let optimized_s = time(reps, || {
        let mut session = sweep_model.session().expect("assembled operator");
        for flow in &flows {
            sweep_model
                .refresh_coefficients(*flow, inlet)
                .expect("same pattern");
            black_box(
                sweep_model
                    .solve_steady_warm(&power, &mut session)
                    .expect("steady solve"),
            );
        }
    });
    assert_eq!(
        sweep_model.assembly_count(),
        1,
        "refresh sweep must assemble exactly once"
    );
    SpeedupRow {
        name: "thermal_refresh_sweep",
        baseline_s,
        optimized_s,
        points: flows.len() as f64,
        unit: "points",
    }
}

fn bench_engine(reps: usize, requests: usize) -> SpeedupRow {
    let scenarios: Vec<Scenario> = (0..requests)
        .map(|k| {
            let mut s = Scenario::power7_reduced();
            s.total_flow = CubicMetersPerSecond::from_milliliters_per_minute(
                676.0 - (676.0 - 96.0) * k as f64 / (requests - 1).max(1) as f64,
            );
            s
        })
        .collect();

    // Baseline: every request pays for a cold engine (fresh operators,
    // cold sessions).
    let baseline_s = time(reps, || {
        for s in &scenarios {
            let mut sim = CoSimulation::new(s.clone()).expect("valid scenario");
            black_box(sim.run().expect("cosim run"));
        }
    });

    // Optimized: a long-lived engine serves the batch from cached,
    // retargeted workers.
    let mut engine = ScenarioEngine::new();
    let optimized_s = time(reps, || {
        let reports = engine.run_batch(scenarios.iter().cloned());
        for r in &reports {
            assert!(r.result.is_ok(), "engine request failed: {:?}", r.result);
        }
        black_box(reports);
    });
    SpeedupRow {
        name: "engine_batch",
        baseline_s,
        optimized_s,
        points: requests as f64,
        unit: "requests",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let reps = if quick { 2 } else { 4 };
    let sweep_points = if quick { 4 } else { 8 };
    let engine_requests = if quick { 4 } else { 6 };

    bright_bench::banner(
        "BENCH_PR2",
        "solver sessions, preconditioners, batched scenario engine",
    );
    let precond = bench_preconditioners(reps);
    let rows = [
        bench_thermal_refresh(reps, sweep_points),
        bench_engine(reps, engine_requests),
    ];
    for row in &rows {
        println!(
            "  {:<24} baseline {:>9.4} s  optimized {:>9.4} s  speedup {:>5.2}x  ({:.1} {}/s optimized)",
            row.name,
            row.baseline_s,
            row.optimized_s,
            row.speedup(),
            row.points / row.optimized_s,
            row.unit,
        );
    }

    let jacobi_iters = precond
        .iter()
        .find(|r| r.name == "jacobi")
        .expect("jacobi row")
        .iterations;
    let best_strong = precond
        .iter()
        .filter(|r| r.name != "jacobi")
        .min_by_key(|r| r.iterations)
        .expect("strong rows");
    let iteration_ratio = jacobi_iters as f64 / best_strong.iterations as f64;
    println!(
        "  strongest preconditioner: {} ({} iters vs jacobi {} => {:.2}x fewer)",
        best_strong.name, best_strong.iterations, jacobi_iters, iteration_ratio
    );

    let doc = Value::object([
        (
            "pdn_preconditioners".into(),
            Value::Array(
                precond
                    .iter()
                    .map(|r| {
                        Value::object([
                            ("name".into(), Value::String(r.name.clone())),
                            ("iterations".into(), Value::Number(r.iterations as f64)),
                            ("solve_s".into(), Value::Number(r.solve_s)),
                            (
                                "grid".into(),
                                Value::String(format!("{REF_NX}x{REF_NY}")),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "pdn_iteration_reduction_vs_jacobi".into(),
            Value::Number(iteration_ratio),
        ),
        (
            "benchmarks".into(),
            Value::Array(rows.iter().map(SpeedupRow::to_json).collect()),
        ),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                (
                    "pdn_iteration_reduction_min".into(),
                    Value::Number(2.0),
                ),
                (
                    "thermal_refresh_sweep_min_speedup".into(),
                    Value::Number(1.3),
                ),
                ("engine_batch_min_speedup".into(), Value::Number(1.05)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR2.json");
    println!("  results written to {out_path}");

    // Fail loudly when an acceptance gate regresses.
    let mut failed = false;
    if iteration_ratio < 2.0 {
        eprintln!(
            "GATE FAILED: best preconditioner reduces PDN CG iterations only {iteration_ratio:.2}x (< 2.0x)"
        );
        failed = true;
    }
    let gate = |rows: &[SpeedupRow], name: &str, min: f64, failed: &mut bool| {
        let row = rows.iter().find(|r| r.name == name).expect("known row");
        if row.speedup() < min {
            eprintln!(
                "GATE FAILED: {name} speedup {:.2}x < required {min:.2}x",
                row.speedup()
            );
            *failed = true;
        }
    };
    gate(&rows, "thermal_refresh_sweep", 1.3, &mut failed);
    gate(&rows, "engine_batch", 1.05, &mut failed);
    if failed {
        std::process::exit(1);
    }
    println!("  all performance gates passed");
}
