//! **A2** — the introduction's I/O argument: conventional designs burn C4
//! bumps on power delivery (limiting off-chip bandwidth); fluidic power
//! delivery frees them for I/O.

use bright_bench::{banner, print_table};
use bright_floorplan::power7;
use bright_pdn::pins::PinModel;
use bright_units::Ampere;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("A2", "C4 pin budget: conventional vs fluidic power delivery");

    let plan = power7::floorplan();
    let die = plan.die_area();
    let model = PinModel::default();
    // Full-load POWER7+ at 1 V in this reconstruction: ~73 A.
    let chip_current = Ampere::new(73.0);

    println!(
        "die {:.1} mm^2, bump pitch {:.0} um, {:.0} mA/bump, 2x redundancy\n",
        die.value() * 1e6,
        model.bump_pitch * 1e6,
        model.max_current_per_bump * 1e3
    );

    let mut rows = Vec::new();
    for (label, fraction) in [
        ("conventional (0%)", 0.0),
        ("caches fluidic (8%)", 0.077),
        ("half fluidic (50%)", 0.5),
        ("fully fluidic (100%)", 1.0),
    ] {
        let b = model.with_fluidic_delivery(die, chip_current, fraction)?;
        rows.push(vec![
            label.to_string(),
            format!("{}", b.total),
            format!("{}", b.power_ground),
            format!("{}", b.io),
            format!("{:.1}%", b.io_fraction() * 100.0),
        ]);
    }
    print_table(&["scenario", "total", "pwr/gnd", "io", "io frac"], &rows);

    let conv = model.with_fluidic_delivery(die, chip_current, 0.0)?;
    let full = model.with_fluidic_delivery(die, chip_current, 1.0)?;
    println!(
        "\nfully fluidic delivery frees {} bumps (+{:.1}% I/O) — the paper's \
         'MPSoCs are expected to gain in I/O connectivity' claim.",
        full.io - conv.io,
        (full.io as f64 / conv.io as f64 - 1.0) * 100.0
    );
    Ok(())
}
