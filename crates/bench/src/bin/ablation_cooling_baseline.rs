//! **A4** — cooling baseline: the paper's microfluidic flow-cell layer
//! vs a conventional top-mounted heat sink on the same full-load
//! POWER7+. Quantifies the "issue (3)" framing of the introduction (the
//! energy/temperature cost of conventional heat removal).

use bright_bench::{banner, print_table};
use bright_floorplan::{power7, PowerScenario};
use bright_thermal::stack::{LayerSpec, StackConfig, TopCooling};
use bright_thermal::{presets, Material, ThermalModel};
use bright_units::{Kelvin, Meters};

fn conventional_stack(h: f64) -> ThermalModel {
    let plan = power7::floorplan();
    ThermalModel::new(StackConfig {
        width: plan.width(),
        height: plan.height(),
        nx: 88,
        ny: 44,
        layers: vec![LayerSpec::Solid {
            name: "die".into(),
            material: Material::silicon(),
            thickness: Meters::from_micrometers(700.0),
            sublayers: 3,
        }],
        top_cooling: Some(TopCooling {
            coefficient: h,
            ambient: Kelvin::new(298.15),
        }),
    })
    .expect("valid conventional stack")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("A4", "microfluidic flow-cell cooling vs conventional heat sinks");

    let plan = power7::floorplan();
    let micro = presets::power7_stack()?;
    let power = PowerScenario::full_load().rasterize(&plan, micro.grid())?;
    println!("full-load chip: {:.1} W\n", power.integral());

    let mut rows = Vec::new();
    for (label, h) in [
        ("natural convection", 50.0),
        ("forced air heat sink", 1500.0),
        ("high-end air / heat pipes", 5000.0),
        ("cold plate", 20000.0),
    ] {
        let model = conventional_stack(h);
        let sol = model.solve_steady(&power)?;
        rows.push(vec![
            label.to_string(),
            format!("{h:.0}"),
            format!("{:.1}", sol.max_temperature().to_celsius().value()),
            "0".to_string(),
        ]);
    }
    let sol = micro.solve_steady(&power)?;
    rows.push(vec![
        "microfluidic flow cells".to_string(),
        "-".to_string(),
        format!("{:.1}", sol.max_temperature().to_celsius().value()),
        "~4".to_string(),
    ]);
    print_table(
        &["cooling", "h (W/m2K)", "peak degC", "gen (W)"],
        &rows,
    );

    println!(
        "\nreading: only the cold-plate class matches the flow-cell layer's\n\
         peak temperature — and every conventional option *consumes* fan or\n\
         pump power, while the paper's channels *return* ~4 W of\n\
         electrochemical power on top of the cooling (Fig. 7/E3)."
    );
    Ok(())
}
