//! PR-7 performance gate: geometric multigrid preconditioning for
//! large-grid thermal/PDN solves. Records the results in
//! `BENCH_PR7.json`.
//!
//! Three gate families, mirroring the acceptance criteria:
//!
//! * `mesh_independence` — the scaled conduction stack
//!   ([`bright_thermal::presets::conduction_stack_scaled`]) solved
//!   under the multigrid preconditioner at plane scales 2 and 8: the
//!   unknown count grows exactly 16× (77 440 → 1 239 040) while the
//!   Krylov iteration count must grow by less than 1.5×. At the large
//!   scale the session's own auto-selection
//!   ([`bright_num::PrecondSpec::auto_for_grid`]) must have picked
//!   multigrid — only the small grid forces it explicitly.
//! * `ssor_comparison` — the same large stack solved cold under
//!   SSOR(ω = 1.5): multigrid must need ≥ 3× fewer iterations at the
//!   largest grid (≥ ~500k unknowns).
//! * `hierarchy_cache` — one session driven through
//!   bind → solve → coefficient re-stamp → solve on the conduction
//!   stack: the multigrid hierarchy must be built exactly once and
//!   refreshed in place exactly once (counter-based, via
//!   [`bright_num::SessionStats`]).
//!
//! A non-gated `pdn_rail` row records the SPD cache-rail sheet at
//! scale 8 (~577k unknowns), where
//! [`bright_pdn::PowerGrid::preferred_preconditioner`] auto-selects
//! multigrid.
//!
//! Usage: `bench_pr7 [--quick] [--out <path>]` (default
//! `BENCH_PR7.json`). `--quick` runs the SSOR comparison at scale 6
//! (~697k unknowns, still past the ~500k floor) to keep CI wall-clock
//! in check; the multigrid legs are cheap at every scale.

use bright_floorplan::{power7, PowerScenario};
use bright_jsonio::Value;
use bright_num::{MgConfig, PrecondSpec};
use bright_thermal::presets::conduction_stack_scaled;
use std::time::Instant;

/// Iteration-growth ceiling while unknowns grow 16×.
const MAX_ITER_GROWTH: f64 = 1.5;
/// Required multigrid advantage over SSOR(1.5) at the largest grid.
const MIN_SSOR_ADVANTAGE: f64 = 3.0;

struct SolveRow {
    scale: usize,
    unknowns: usize,
    iterations: usize,
    digest: String,
    bind_s: f64,
    solve_s: f64,
}

impl SolveRow {
    fn to_value(&self) -> Value {
        Value::object([
            ("scale".into(), Value::Number(self.scale as f64)),
            ("unknowns".into(), Value::Number(self.unknowns as f64)),
            ("iterations".into(), Value::Number(self.iterations as f64)),
            ("preconditioner".into(), Value::String(self.digest.clone())),
            ("bind_s".into(), Value::Number(self.bind_s)),
            ("solve_s".into(), Value::Number(self.solve_s)),
        ])
    }
}

/// Cold-solves the scaled conduction stack (full POWER7+ load on both
/// die faces) with the given preconditioner, `None` meaning whatever
/// `ThermalModel::solve_options` auto-selects for the grid.
fn solve_conduction(scale: usize, precond: Option<PrecondSpec>) -> SolveRow {
    let model = conduction_stack_scaled(scale).expect("conduction preset");
    let plan = power7::floorplan();
    let power = PowerScenario::full_load()
        .rasterize(&plan, model.grid())
        .expect("rasterize");
    let t0 = Instant::now();
    let mut session = model.session().expect("session");
    if let Some(spec) = precond {
        session.set_preconditioner(spec);
    }
    let bind_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    model
        .solve_steady_with_sources_warm(&[(0, &power), (2, &power)], &mut session)
        .expect("steady solve");
    let solve_s = t1.elapsed().as_secs_f64();
    let stats = session.last_stats();
    SolveRow {
        scale,
        unknowns: model.grid().len() * model.level_count(),
        iterations: stats.iterations,
        digest: session.precond_digest(),
        bind_s,
        solve_s,
    }
}

/// Forces multigrid on a grid below the auto-selection threshold.
fn forced_mg(scale: usize) -> PrecondSpec {
    let model = conduction_stack_scaled(scale).expect("conduction preset");
    PrecondSpec::Multigrid(MgConfig::for_grid(
        model.grid().nx(),
        model.grid().ny(),
        model.level_count(),
    ))
}

struct CacheRow {
    hierarchy_builds: u64,
    refreshes: u64,
    cold_iterations: usize,
    warm_iterations: usize,
}

/// Gate 3: bind → solve → coefficient re-stamp → solve must build the
/// multigrid hierarchy once and refresh its values in place once.
fn bench_hierarchy_cache() -> CacheRow {
    let scale = 2;
    let mut model = conduction_stack_scaled(scale).expect("conduction preset");
    let plan = power7::floorplan();
    let power = PowerScenario::full_load()
        .rasterize(&plan, model.grid())
        .expect("rasterize");
    let mut session = model.session().expect("session");
    session.set_preconditioner(forced_mg(scale));
    let sources = [(0usize, &power), (2usize, &power)];
    model
        .solve_steady_with_sources_warm(&sources, &mut session)
        .expect("cold solve");
    let cold_iterations = session.last_stats().iterations;
    // A value-only re-stamp: the closure touches nothing (the stack has
    // no microchannel layers), but the model still re-stamps the
    // operator through the cached pattern and advances its coefficient
    // epoch — exactly what a flow/inlet sweep does on the fluid stacks.
    // The session must answer with an O(nnz) value reload, not a
    // rebind, and the multigrid preconditioner must refresh its cached
    // hierarchy in place instead of rebuilding it.
    model
        .refresh_microchannels(|_| {})
        .expect("value-only re-stamp");
    model
        .solve_steady_with_sources_warm(&sources, &mut session)
        .expect("warm solve");
    let stats = session.stats();
    CacheRow {
        hierarchy_builds: stats.mg_hierarchy_builds,
        refreshes: stats.mg_refreshes,
        cold_iterations,
        warm_iterations: session.last_stats().iterations,
    }
}

struct PdnRow {
    unknowns: usize,
    iterations: usize,
    digest: String,
    solve_s: f64,
    min_voltage: f64,
}

/// Informational: the SPD cache-rail sheet at scale 8, where the PDN
/// session auto-selects multigrid.
fn bench_pdn_rail() -> PdnRow {
    let pg = bright_pdn::presets::power7_cache_rail_scaled(8).expect("pdn preset");
    let mut session = pg.session();
    let t0 = Instant::now();
    let sol = pg.solve_warm(&mut session).expect("pdn solve");
    let solve_s = t0.elapsed().as_secs_f64();
    PdnRow {
        unknowns: pg.grid().len(),
        iterations: session.last_stats().iterations,
        digest: session.precond_digest(),
        solve_s,
        min_voltage: sol.min_voltage().value(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());

    bright_bench::banner(
        "BENCH_PR7",
        "geometric multigrid: mesh independence, SSOR advantage, hierarchy cache",
    );

    // Gate 1: iteration growth across a 16× unknown-count jump. The
    // small grid sits below the auto-selection threshold, so multigrid
    // is forced there; the large grid must pick it on its own.
    let small = solve_conduction(2, Some(forced_mg(2)));
    let large = solve_conduction(8, None);
    for row in [&small, &large] {
        println!(
            "  mesh_independence  scale {}  {:>9} unknowns  {:>4} iterations  {}  bind {:>6.2} s  solve {:>6.2} s",
            row.scale, row.unknowns, row.iterations, row.digest, row.bind_s, row.solve_s,
        );
    }

    // Gate 2: SSOR(1.5) on a ≥ ~500k-unknown grid. Quick mode trims the
    // grid (scale 6, ~697k) because the point of the gate is the
    // iteration ratio, not the wall-clock of a deliberately weak
    // preconditioner at 1.24M unknowns.
    let ssor_scale = if quick { 6 } else { 8 };
    let ssor = solve_conduction(ssor_scale, Some(PrecondSpec::Ssor { omega: 1.5 }));
    let mg_extra;
    let mg_ref: &SolveRow = if ssor_scale == large.scale {
        &large
    } else {
        mg_extra = solve_conduction(ssor_scale, None);
        &mg_extra
    };
    println!(
        "  ssor_comparison    scale {}  {:>9} unknowns  ssor(1.5) {} iterations vs multigrid {}  ({:.1}x)",
        ssor.scale,
        ssor.unknowns,
        ssor.iterations,
        mg_ref.iterations,
        ssor.iterations as f64 / mg_ref.iterations as f64,
    );

    // Gate 3: hierarchy caching counters.
    let cache = bench_hierarchy_cache();
    println!(
        "  hierarchy_cache    {} build(s), {} in-place refresh(es); {} cold / {} warm iterations",
        cache.hierarchy_builds, cache.refreshes, cache.cold_iterations, cache.warm_iterations,
    );

    // Informational: the SPD PDN rail auto-selects multigrid at scale 8.
    let pdn = bench_pdn_rail();
    println!(
        "  pdn_rail           {:>9} unknowns  {:>4} iterations  {}  solve {:>6.2} s  min {:.4} V",
        pdn.unknowns, pdn.iterations, pdn.digest, pdn.solve_s, pdn.min_voltage,
    );

    let growth = large.iterations as f64 / small.iterations as f64;
    let advantage = ssor.iterations as f64 / mg_ref.iterations as f64;
    let doc = Value::object([
        (
            "mesh_independence".into(),
            Value::Array(vec![small.to_value(), large.to_value()]),
        ),
        (
            "ssor_comparison".into(),
            Value::object([
                ("ssor".into(), ssor.to_value()),
                ("multigrid".into(), mg_ref.to_value()),
                ("advantage".into(), Value::Number(advantage)),
            ]),
        ),
        (
            "hierarchy_cache".into(),
            Value::object([
                (
                    "mg_hierarchy_builds".into(),
                    Value::Number(cache.hierarchy_builds as f64),
                ),
                ("mg_refreshes".into(), Value::Number(cache.refreshes as f64)),
                (
                    "cold_iterations".into(),
                    Value::Number(cache.cold_iterations as f64),
                ),
                (
                    "warm_iterations".into(),
                    Value::Number(cache.warm_iterations as f64),
                ),
            ]),
        ),
        (
            "pdn_rail".into(),
            Value::object([
                ("unknowns".into(), Value::Number(pdn.unknowns as f64)),
                ("iterations".into(), Value::Number(pdn.iterations as f64)),
                ("preconditioner".into(), Value::String(pdn.digest.clone())),
                ("solve_s".into(), Value::Number(pdn.solve_s)),
                ("min_voltage".into(), Value::Number(pdn.min_voltage)),
            ]),
        ),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                ("max_iteration_growth".into(), Value::Number(MAX_ITER_GROWTH)),
                ("min_ssor_advantage".into(), Value::Number(MIN_SSOR_ADVANTAGE)),
                ("unknown_growth".into(), Value::Number(16.0)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR7.json");
    println!("  results written to {out_path}");

    // Fail loudly when an acceptance gate regresses.
    let mut failed = false;
    if large.unknowns != 16 * small.unknowns {
        eprintln!(
            "GATE FAILED: unknown growth must be exactly 16x, got {} -> {}",
            small.unknowns, large.unknowns
        );
        failed = true;
    }
    if growth >= MAX_ITER_GROWTH {
        eprintln!(
            "GATE FAILED: multigrid iterations grew {growth:.2}x across a 16x unknown jump \
             (limit {MAX_ITER_GROWTH}x): {} -> {}",
            small.iterations, large.iterations
        );
        failed = true;
    }
    if !large.digest.starts_with("mg(") {
        eprintln!(
            "GATE FAILED: the large grid must auto-select multigrid, got {}",
            large.digest
        );
        failed = true;
    }
    if ssor.unknowns < 500_000 {
        eprintln!(
            "GATE FAILED: the SSOR comparison grid must have >= ~500k unknowns, got {}",
            ssor.unknowns
        );
        failed = true;
    }
    if advantage < MIN_SSOR_ADVANTAGE {
        eprintln!(
            "GATE FAILED: multigrid advantage over SSOR(1.5) is {advantage:.2}x \
             (need >= {MIN_SSOR_ADVANTAGE}x): ssor {} vs mg {}",
            ssor.iterations, mg_ref.iterations
        );
        failed = true;
    }
    if cache.hierarchy_builds != 1 || cache.refreshes != 1 {
        eprintln!(
            "GATE FAILED: bind -> solve -> re-stamp -> solve must build the hierarchy once \
             and refresh once, got {} build(s) / {} refresh(es)",
            cache.hierarchy_builds, cache.refreshes
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all multigrid gates passed");
}
