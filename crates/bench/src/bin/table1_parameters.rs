//! **T1** — Table I of the paper: parameters of the validation flow cell
//! (Kjeang et al. 2007 geometry). Prints the encoded values and verifies
//! they match the published table.

use bright_bench::{banner, print_table};
use bright_flowcell::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("T1", "Table I - validation redox flow cell parameters");

    let model = presets::kjeang2007(60.0)?;
    let chem = model.chemistry();
    let ch = model.geometry().channel();

    println!(
        "geometry: {:.1} mm x {:.1} mm x {:.0} um (length x width x height)\n",
        ch.length().to_millimeters(),
        ch.width().to_millimeters(),
        ch.height().to_micrometers()
    );

    let rows = vec![
        vec![
            "E0 (V)".to_string(),
            format!("{:.3}", chem.negative.kinetics.couple().standard_potential().value()),
            format!("{:.3}", chem.positive.kinetics.couple().standard_potential().value()),
            "-0.255 / 0.991".to_string(),
        ],
        vec![
            "C*_Ox (mol/m3)".to_string(),
            format!("{:.0}", chem.negative.inlet.c_ox.value()),
            format!("{:.0}", chem.positive.inlet.c_ox.value()),
            "80 / 992".to_string(),
        ],
        vec![
            "C*_Red (mol/m3)".to_string(),
            format!("{:.0}", chem.negative.inlet.c_red.value()),
            format!("{:.0}", chem.positive.inlet.c_red.value()),
            "920 / 8".to_string(),
        ],
        vec![
            "D (1e-10 m2/s)".to_string(),
            format!("{:.1}", chem.negative.diffusivity.value() * 1e10),
            format!("{:.1}", chem.positive.diffusivity.value() * 1e10),
            "1.7 / 1.3".to_string(),
        ],
        vec![
            "k0 (1e-5 m/s)".to_string(),
            format!("{:.0}", chem.negative.kinetics.rate_constant().value() * 1e5),
            format!("{:.0}", chem.positive.kinetics.rate_constant().value() * 1e5),
            "2 / 1".to_string(),
        ],
    ];
    print_table(&["parameter", "anode", "cathode", "paper"], &rows);

    // Hard checks: the encoded values ARE the published ones.
    assert_eq!(chem.negative.inlet.c_ox.value(), 80.0);
    assert_eq!(chem.negative.inlet.c_red.value(), 920.0);
    assert_eq!(chem.positive.inlet.c_ox.value(), 992.0);
    assert_eq!(chem.positive.inlet.c_red.value(), 8.0);
    assert_eq!(chem.negative.diffusivity.value(), 1.7e-10);
    assert_eq!(chem.positive.diffusivity.value(), 1.3e-10);
    assert_eq!(chem.negative.kinetics.rate_constant().value(), 2.0e-5);
    assert_eq!(chem.positive.kinetics.rate_constant().value(), 1.0e-5);
    println!("\nall Table I values encoded exactly.");
    Ok(())
}
