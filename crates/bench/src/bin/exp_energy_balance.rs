//! **E3** — the paper's headline energy balance: the flow-cell array can
//! power the POWER7+ cache memories (paper: up to 6 W at 1 V vs a ~5 A
//! requirement) while cooling the whole chip to ~41 °C, spending less on
//! pumping (paper: 4.4 W) than it generates.

use bright_bench::{banner, compare_row};
use bright_core::{CoSimulation, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("E3", "integrated energy balance (the bright-silicon claim)");

    let report = CoSimulation::new(Scenario::power7_nominal())?.run()?;
    println!("{}", report.summary());

    println!("{}", compare_row("peak temperature", 41.0, report.peak_temperature.to_celsius().value(), "degC"));
    println!("{}", compare_row("array power at 1 V", 6.0, report.power_at_1v.value(), "W"));
    println!("{}", compare_row("cache-rail demand", 5.0, report.rail_power.value() , "W"));
    println!("{}", compare_row("pumping power", 4.4, report.pumping_power.value(), "W"));
    println!(
        "  net electrical gain at 1 V: {:+.2} W ({})",
        report.net_power_at_1v().value(),
        if report.is_net_positive() {
            "generation exceeds pumping: net-positive"
        } else {
            "pumping exceeds generation"
        }
    );

    match &report.operating_point {
        Some(op) => println!(
            "  matched operating point: array {:.3} V / {:.2} A -> rail {:.2} W \
             through a {:.0}%-efficient VRM",
            op.array_voltage.value(),
            op.array_current.value(),
            op.rail_power.value(),
            op.vrm_efficiency * 100.0
        ),
        None => println!("  NO matched operating point: supply deficit"),
    }

    println!("\ncache-rail voltage map (Fig. 8 view):");
    println!("{}", report.render_voltage_map(72, 20));
    println!("junction thermal map (Fig. 9 view, degC):");
    println!("{}", report.render_thermal_map(72, 20));
    Ok(())
}
