//! **F3 / E4** — Fig. 3 of the paper: polarization curves of the Table I
//! validation cell at 2.5/10/60/300 µL/min, model vs (approximately
//! digitized) experimental data, plus the paper's "model within 10 % of
//! experiment" validation metric (our tolerance vs the approximate
//! digitization is wider; see EXPERIMENTS.md).

use bright_bench::{banner, print_table};
use bright_flowcell::presets;
use bright_flowcell::validation::{kjeang_fig3_reference, max_relative_error};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "F3",
        "Fig. 3 - validation-cell polarization, model vs experiment",
    );

    let reference = kjeang_fig3_reference();
    let mut worst = 0.0_f64;

    for series in &reference {
        let model = presets::kjeang2007(series.flow_ul_min)?;
        let mut rows = Vec::new();
        let mut model_currents = Vec::new();
        for (v, exp_j) in series.voltage.iter().zip(&series.current_density_ma_cm2) {
            let sol = model.solve_at_voltage(*v)?;
            let j = sol
                .mean_current_density()
                .to_milliamps_per_square_centimeter();
            model_currents.push(j);
            rows.push(vec![
                format!("{v:.1}"),
                format!("{exp_j:.1}"),
                format!("{j:.1}"),
            ]);
        }
        println!("\nflow rate {} uL/min per stream:", series.flow_ul_min);
        print_table(&["V (V)", "exp (mA/cm2)", "model (mA/cm2)"], &rows);
        let err = max_relative_error(&series.current_density_ma_cm2, &model_currents)?;
        println!("  max relative deviation vs digitized experiment: {:.0}%", err * 100.0);
        worst = worst.max(err);

        let ocv = model.open_circuit_voltage()?;
        println!("  model OCV: {ocv:.3} (experimental curves start ~1.3-1.4 V)");
    }

    println!("\nworst-case deviation across all series: {:.0}%", worst * 100.0);
    println!("paper claims <=10% against the true experimental data; our");
    println!("reference here is an approximate digitization, so the regression");
    println!("gate in tests/ checks the physically robust quantities instead:");
    println!("limiting-current plateaus within 35% and Q^(1/3) flow ordering.");

    // Plateau comparison (the transport-limited low-voltage end).
    println!("\nlimiting-current plateaus (at 0.1 V):");
    for series in &reference {
        let model = presets::kjeang2007(series.flow_ul_min)?;
        let j = model
            .solve_at_voltage(0.1)?
            .mean_current_density()
            .to_milliamps_per_square_centimeter();
        let exp = *series.current_density_ma_cm2.last().expect("non-empty");
        println!(
            "  {:>5} uL/min: exp {exp:>5.1}, model {j:>5.1} mA/cm^2 ({:+.0}%)",
            series.flow_ul_min,
            (j / exp - 1.0) * 100.0
        );
    }
    Ok(())
}
