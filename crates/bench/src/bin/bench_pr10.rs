//! PR-10 performance gate: the TR-BDF2 embedded pair vs. legacy
//! step-doubling, coefficient-ramp traces without re-assembly, and
//! live-integrator carry-down in the engine's prefix tree. Records the
//! results in `BENCH_PR10.json`.
//!
//! Three benchmark families, mirroring the acceptance criteria:
//!
//! * `trbdf2_vs_step_doubling` — the throttling trace (full load →
//!   gated → full load on the 48 ml/min POWER7+ stack) integrated by
//!   both adaptive controllers *at equal boundary-sampled accuracy*:
//!   both are measured against a fine-Δt reference at every segment
//!   boundary, and the step-doubling baseline is the loosest tolerance
//!   (halving ladder) whose tracking error does not exceed the TR-BDF2
//!   run's. Gate: TR-BDF2 needs ≥ 1.8× fewer linear solves — the
//!   embedded estimate is free where step-doubling pays a third solve
//!   per step.
//! * `ramp_trace` — a pump spin-down ramp (676 → 48 ml/min, then hold)
//!   riding a single model. Gates: exactly one operator assembly (ramps
//!   must ride O(nnz) value refreshes) and a positive re-stamp count.
//! * `carry_down` — a duty-cycle batch over the engine's prefix tree.
//!   Gate: every single-child chain extends the parent's live
//!   integrator instead of rebuilding from its checkpoint.
//!
//! Usage: `bench_pr10 [--quick] [--out <path>]` (default `BENCH_PR10.json`).

use bright_core::{LoadRamp, LoadStep, ScenarioEngine, SteppingMode, TransientRequest};
use bright_floorplan::{power7, PowerScenario};
use bright_jsonio::Value;
use bright_num::vec_ops::wrms_diff;
use bright_thermal::{
    presets, AdaptiveConfig, AdaptiveTransient, CoefficientRamp, Controller, PowerTrace,
    ThermalModel, TraceSegment, TransientSimulation,
};
use bright_units::{CubicMetersPerSecond, Kelvin};

/// The throttling trace: full load, a power-gated dip, full load again —
/// on the 48 ml/min (throttled-pump) stack. Identical to the PR-3
/// setup, so the two benchmark files stay comparable.
fn throttling_setup(scale: f64) -> (ThermalModel, PowerTrace, AdaptiveConfig) {
    let model = presets::power7_stack_at(
        CubicMetersPerSecond::from_milliliters_per_minute(48.0),
        Kelvin::new(300.0),
    )
    .expect("Table II stack");
    let plan = power7::floorplan();
    let full = PowerScenario::full_load()
        .rasterize(&plan, model.grid())
        .expect("power map");
    let gated = PowerScenario::cache_only()
        .rasterize(&plan, model.grid())
        .expect("power map");
    let trace = PowerTrace::new(vec![
        TraceSegment::constant(0.10 * scale, full.clone()),
        TraceSegment::constant(0.30 * scale, gated),
        TraceSegment::constant(0.20 * scale, full),
    ])
    .expect("valid trace");
    let cfg = AdaptiveConfig {
        abs_tol: 0.01,
        dt_init: 1e-3,
        dt_min: 2.5e-4,
        dt_max: 0.1,
        ..AdaptiveConfig::default()
    };
    (model, trace, cfg)
}

/// Integrates the trace at fixed Δt, sampling the field at every
/// segment boundary.
fn run_fixed_sampled(model: &ThermalModel, trace: &PowerTrace, t0: f64, dt: f64) -> Vec<Vec<f64>> {
    let mut sim = TransientSimulation::new(model.clone(), &trace.segments()[0].power, t0, dt)
        .expect("fixed sim");
    let mut samples = Vec::with_capacity(trace.len());
    for seg in trace.segments() {
        let single = PowerTrace::new(vec![seg.clone()]).expect("segment trace");
        sim.run_trace(&single).expect("fixed trace");
        samples.push(sim.temperatures().to_vec());
    }
    samples
}

/// Runs one adaptive controller over the trace, sampling at segment
/// boundaries; returns (solves, accepted steps, samples).
fn run_adaptive_sampled(
    model: &ThermalModel,
    trace: &PowerTrace,
    t0: f64,
    cfg: AdaptiveConfig,
) -> (u64, u64, Vec<Vec<f64>>) {
    let mut sim = AdaptiveTransient::new(model.clone(), trace.clone(), t0, cfg)
        .expect("adaptive sim");
    let mut samples: Vec<Vec<f64>> = Vec::with_capacity(trace.len());
    let mut cursor = 0;
    while !sim.finished() {
        sim.step().expect("adaptive step");
        if sim.segment_index() > cursor {
            samples.push(sim.temperatures().to_vec());
            cursor = sim.segment_index();
        }
    }
    let stats = sim.stats();
    (stats.solves, stats.accepted, samples)
}

/// Tracking error in *base* tolerance units: worst weighted-RMS
/// distance from the reference over the boundary samples.
fn tracking_err(samples: &[Vec<f64>], reference: &[Vec<f64>], cfg: &AdaptiveConfig) -> f64 {
    samples
        .iter()
        .zip(reference)
        .map(|(s, r)| wrms_diff(s, r, cfg.abs_tol, cfg.rel_tol))
        .fold(0.0, f64::max)
}

struct PairRow {
    trbdf2_solves: u64,
    trbdf2_steps: u64,
    trbdf2_err: f64,
    doubling_solves: u64,
    doubling_steps: u64,
    doubling_err: f64,
    doubling_abs_tol: f64,
    solve_ratio: f64,
}

fn bench_trbdf2_vs_step_doubling(quick: bool) -> PairRow {
    let scale = if quick { 0.5 } else { 1.0 };
    let (model, trace, cfg) = throttling_setup(scale);
    let t0 = 300.0;

    // Reference: fine fixed Δt at the controllers' step floor.
    let ref_samples = run_fixed_sampled(&model, &trace, t0, cfg.dt_min);

    let (t_solves, t_steps, t_samples) = run_adaptive_sampled(&model, &trace, t0, cfg);
    let t_err = tracking_err(&t_samples, &ref_samples, &cfg);
    println!(
        "  tr-bdf2:       {t_steps:>4} steps, {t_solves:>4} solves, tracking err {t_err:.3} tol units"
    );

    // Step-doubling at equal accuracy: the loosest tolerance (halving
    // ladder from 8x the base) whose tracking error does not exceed the
    // TR-BDF2 run's. If even the tightest candidate is less accurate,
    // its solve count still *under*-states what equal accuracy would
    // cost, so the gate stays conservative.
    let mut d_solves = 0;
    let mut d_steps = 0;
    let mut d_err = f64::INFINITY;
    let mut d_tol = 0.0;
    let mut tol_scale = 8.0;
    while tol_scale >= 1.0 / 64.0 {
        let d_cfg = AdaptiveConfig {
            controller: Controller::StepDoubling,
            abs_tol: cfg.abs_tol * tol_scale,
            rel_tol: cfg.rel_tol * tol_scale,
            ..cfg
        };
        let (solves, steps, samples) = run_adaptive_sampled(&model, &trace, t0, d_cfg);
        let err = tracking_err(&samples, &ref_samples, &cfg);
        println!(
            "  step-doubling (tol x{tol_scale:>6.3}): {steps:>4} steps, {solves:>4} solves, \
             tracking err {err:.3} tol units"
        );
        d_solves = solves;
        d_steps = steps;
        d_err = err;
        d_tol = d_cfg.abs_tol;
        if err <= t_err {
            break;
        }
        tol_scale /= 2.0;
    }
    let solve_ratio = d_solves as f64 / t_solves as f64;
    println!(
        "  trbdf2_vs_step_doubling: {d_solves} solves vs {t_solves} => {solve_ratio:.2}x fewer \
         at equal boundary-sampled accuracy"
    );
    PairRow {
        trbdf2_solves: t_solves,
        trbdf2_steps: t_steps,
        trbdf2_err: t_err,
        doubling_solves: d_solves,
        doubling_steps: d_steps,
        doubling_err: d_err,
        doubling_abs_tol: d_tol,
        solve_ratio,
    }
}

struct RampRow {
    solves: u64,
    refreshes: u64,
    assemblies: usize,
}

/// A pump spin-down (676 → 48 ml/min over the first segment, held for
/// the second) under full load, integrated by TR-BDF2 on one model.
fn bench_ramp_trace(quick: bool) -> RampRow {
    let scale = if quick { 0.5 } else { 1.0 };
    let model = presets::power7_stack().expect("Table II stack");
    let plan = power7::floorplan();
    let full = PowerScenario::full_load()
        .rasterize(&plan, model.grid())
        .expect("power map");
    let (nominal_flow, inlet) = model.operating_point().expect("liquid-cooled preset");
    let throttled = CubicMetersPerSecond::from_milliliters_per_minute(48.0);
    let trace = PowerTrace::new(vec![
        TraceSegment::constant(0.15 * scale, full.clone()).with_ramp(CoefficientRamp {
            flow_start: nominal_flow,
            flow_end: throttled,
            inlet_start: inlet,
            inlet_end: inlet,
        }),
        TraceSegment::constant(0.25 * scale, full).with_ramp(CoefficientRamp {
            flow_start: throttled,
            flow_end: throttled,
            inlet_start: inlet,
            inlet_end: inlet,
        }),
    ])
    .expect("valid trace");
    let cfg = AdaptiveConfig {
        abs_tol: 0.01,
        dt_init: 1e-3,
        dt_min: 2.5e-4,
        dt_max: 0.1,
        ..AdaptiveConfig::default()
    };
    let mut sim = AdaptiveTransient::new(model, trace, 300.0, cfg).expect("adaptive sim");
    sim.run_to_end().expect("ramped trace");
    let row = RampRow {
        solves: sim.stats().solves,
        refreshes: sim.coefficient_refreshes(),
        assemblies: sim.model().assembly_count(),
    };
    println!(
        "  ramp_trace: {} solves, {} coefficient re-stamps, {} operator assembly",
        row.solves, row.refreshes, row.assemblies
    );
    row
}

struct CarryRow {
    solo_carried: u64,
    solo_expected: u64,
    batch_carried: u64,
    batch_expected: u64,
    segments_integrated: u64,
    segments_reused: u64,
}

fn bench_carry_down(quick: bool) -> CarryRow {
    let seg_s = if quick { 0.02 } else { 0.04 };
    let dimmed = |dark: usize| {
        let mut load = PowerScenario::full_load();
        for i in 0..dark {
            load.set_block_density(
                format!("core{i}"),
                bright_units::WattPerSquareMeter::new(0.0),
            );
        }
        load
    };
    let request = |k: usize| TransientRequest {
        scenario: bright_core::Scenario::power7_reduced(),
        trace: vec![
            LoadStep::new(seg_s, PowerScenario::full_load())
                .with_ramp(LoadRamp::flow(1.0, 0.5)),
            LoadStep::new(seg_s, PowerScenario::cache_only())
                .with_ramp(LoadRamp::flow(0.5, 0.5)),
            LoadStep::new(seg_s, dimmed(k + 1)),
        ],
        initial_temperature: Kelvin::new(300.0),
        stepping: SteppingMode::Adaptive(AdaptiveConfig::default()),
    };

    // Solo: a 3-segment chain is single-child all the way down — both
    // interior boundaries must extend the live integrator.
    let mut engine = ScenarioEngine::new();
    let reports = engine.run_transient_batch([request(0)]);
    assert!(reports[0].result.is_ok(), "solo trace failed");
    let solo_carried = engine.stats().trace_integrators_carried;
    let solo_expected = 2;

    // Batched: four variants share a 2-segment prefix, so the second
    // prefix segment rides the live integrator; the four tails branch
    // from its checkpoint.
    let mut engine = ScenarioEngine::new();
    let reports = engine.run_transient_batch((0..4).map(request));
    for r in &reports {
        assert!(r.result.is_ok(), "batched variant failed: {:?}", r.result);
    }
    let stats = engine.stats();
    println!(
        "  carry_down: solo {} / {} carried, batch {} / {} carried \
         ({} nodes integrated, {} reused)",
        solo_carried,
        solo_expected,
        stats.trace_integrators_carried,
        1,
        stats.trace_segments_integrated,
        stats.trace_segments_reused
    );
    CarryRow {
        solo_carried,
        solo_expected,
        batch_carried: stats.trace_integrators_carried,
        batch_expected: 1,
        segments_integrated: stats.trace_segments_integrated,
        segments_reused: stats.trace_segments_reused,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    bright_bench::banner(
        "BENCH_PR10",
        "TR-BDF2 embedded pair, coefficient ramps, live-integrator carry-down",
    );
    let pair = bench_trbdf2_vs_step_doubling(quick);
    let ramp = bench_ramp_trace(quick);
    let carry = bench_carry_down(quick);

    let doc = Value::object([
        (
            "trbdf2_vs_step_doubling".into(),
            Value::object([
                ("trbdf2_solves".into(), Value::Number(pair.trbdf2_solves as f64)),
                ("trbdf2_steps".into(), Value::Number(pair.trbdf2_steps as f64)),
                ("trbdf2_err_tol_units".into(), Value::Number(pair.trbdf2_err)),
                (
                    "step_doubling_solves_at_equal_accuracy".into(),
                    Value::Number(pair.doubling_solves as f64),
                ),
                (
                    "step_doubling_steps".into(),
                    Value::Number(pair.doubling_steps as f64),
                ),
                (
                    "step_doubling_err_tol_units".into(),
                    Value::Number(pair.doubling_err),
                ),
                (
                    "step_doubling_abs_tol".into(),
                    Value::Number(pair.doubling_abs_tol),
                ),
                ("solve_reduction".into(), Value::Number(pair.solve_ratio)),
            ]),
        ),
        (
            "ramp_trace".into(),
            Value::object([
                ("solves".into(), Value::Number(ramp.solves as f64)),
                (
                    "coefficient_refreshes".into(),
                    Value::Number(ramp.refreshes as f64),
                ),
                ("assemblies".into(), Value::Number(ramp.assemblies as f64)),
            ]),
        ),
        (
            "carry_down".into(),
            Value::object([
                ("solo_carried".into(), Value::Number(carry.solo_carried as f64)),
                ("batch_carried".into(), Value::Number(carry.batch_carried as f64)),
                (
                    "segments_integrated".into(),
                    Value::Number(carry.segments_integrated as f64),
                ),
                (
                    "segments_reused".into(),
                    Value::Number(carry.segments_reused as f64),
                ),
            ]),
        ),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                ("solve_reduction_min".into(), Value::Number(1.8)),
                ("ramp_max_assemblies".into(), Value::Number(1.0)),
                (
                    "solo_carried_expected".into(),
                    Value::Number(carry.solo_expected as f64),
                ),
                (
                    "batch_carried_expected".into(),
                    Value::Number(carry.batch_expected as f64),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR10.json");
    println!("  results written to {out_path}");

    // Fail loudly when an acceptance gate regresses.
    let mut failed = false;
    if pair.solve_ratio < 1.8 {
        eprintln!(
            "GATE FAILED: TR-BDF2 cuts solves only {:.2}x (< 1.8x) vs step-doubling at equal \
             boundary-sampled accuracy",
            pair.solve_ratio
        );
        failed = true;
    }
    if ramp.assemblies != 1 {
        eprintln!(
            "GATE FAILED: ramped trace re-assembled the operator ({} assemblies, expected 1)",
            ramp.assemblies
        );
        failed = true;
    }
    if ramp.refreshes == 0 {
        eprintln!("GATE FAILED: ramped trace performed no coefficient re-stamps");
        failed = true;
    }
    if carry.solo_carried != carry.solo_expected {
        eprintln!(
            "GATE FAILED: solo chain carried {} live integrators (expected {})",
            carry.solo_carried, carry.solo_expected
        );
        failed = true;
    }
    if carry.batch_carried != carry.batch_expected {
        eprintln!(
            "GATE FAILED: batched prefix carried {} live integrators (expected {})",
            carry.batch_carried, carry.batch_expected
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all performance gates passed");
}
