//! PR-4 performance gate: multi-backend hot kernels. Records the
//! results in `BENCH_PR4.json`.
//!
//! Three benchmark families, mirroring the acceptance criteria:
//!
//! * `matvec_backends` — CSR matvec on the 212×170 (full paper
//!   resolution) PDN conductance operator under the scalar, blocked
//!   and threaded backends. Gate: threaded ≥ 2× over scalar.
//! * `ssor_level_sweep` — one SSOR(1.5) application (forward sweep,
//!   diagonal scaling, backward sweep) on a 3×-resolution PDN grid,
//!   sequential vs level-scheduled parallel. Gate ≥ 1.5×.
//! * `bicgstab_fused` — an end-to-end BiCGSTAB solve of a 212×170
//!   upwind convection–diffusion system: the shipped PR-4 path
//!   (backend-dispatched matvec + fused pairwise reductions) vs the
//!   pre-PR-4 loop (scalar matvec, sequential unfused dots),
//!   replicated in this binary as the baseline. Gate ≥ 1.1×.
//!
//! The parallel gates measure wall-clock speedup from threading, so
//! they are **enforced only on hosts with ≥ 4 hardware threads** (the
//! CI runners); on smaller hosts the numbers are still measured and
//! recorded, with `gates.enforced = false` and the reason string.
//!
//! Usage: `bench_pr4 [--quick] [--out <path>]` (default `BENCH_PR4.json`).

use bright_floorplan::{power7, PowerScenario};
use bright_jsonio::Value;
use bright_num::kernels::{hardware_threads, kernel_threads};
use bright_num::solvers::{bicgstab_with_workspace, IterOptions, KrylovWorkspace};
use bright_num::{
    Backend, CsrMatrix, KernelSpec, PrecondSpec, TripletMatrix,
};
use bright_pdn::{PortLayout, PowerGrid};
use bright_units::Volt;
use std::hint::black_box;
use std::time::Instant;

/// The full-resolution PDN reference grid of the acceptance criteria.
const REF_NX: usize = 212;
const REF_NY: usize = 170;
/// The "big grid" for the sweep benchmark: 5× the paper resolution per
/// axis — the through-chip microchannel-stack class of the related
/// work, and a grid whose ~1900 anti-diagonal dependency levels are
/// ~470 rows wide on average, wide enough to shard across workers.
const SWEEP_NX: usize = 1060;
const SWEEP_NY: usize = 850;

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up, then the best of `reps` timed repetitions
    // (minimum is the least noisy statistic on a shared host).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Builds the cache-rail PDN grid at the given resolution with the
/// Fig. 8 electrical parameters.
fn pdn_grid(nx: usize, ny: usize) -> PowerGrid {
    let plan = power7::floorplan();
    let grid =
        bright_mesh::Grid2d::from_extent(plan.width().value(), plan.height().value(), nx, ny)
            .expect("grid");
    let load = PowerScenario::cache_only()
        .rasterize(&plan, &grid)
        .expect("rail map");
    PowerGrid::new(
        grid,
        bright_pdn::presets::CACHE_RAIL_SHEET_RESISTANCE,
        Volt::new(1.0),
        bright_pdn::presets::PORT_RESISTANCE,
        &PortLayout::UniformArray {
            pitch: bright_pdn::presets::PORT_PITCH,
        },
        &load,
    )
    .expect("valid grid")
}

/// Upwind 2-D convection–diffusion operator (nonsymmetric; the thermal
/// advection structure at PDN-grid scale).
fn convection_diffusion_2d(nx: usize, ny: usize, peclet: f64) -> CsrMatrix {
    let idx = |i: usize, j: usize| i * ny + j;
    let mut t = TripletMatrix::with_capacity(nx * ny, nx * ny, 5 * nx * ny);
    for i in 0..nx {
        for j in 0..ny {
            let me = idx(i, j);
            let mut diag = 4.0 + peclet;
            if i > 0 {
                t.push(me, idx(i - 1, j), -1.0 - peclet).unwrap();
            } else {
                diag += peclet;
            }
            if i + 1 < nx {
                t.push(me, idx(i + 1, j), -1.0).unwrap();
            }
            if j > 0 {
                t.push(me, idx(i, j - 1), -1.0).unwrap();
            }
            if j + 1 < ny {
                t.push(me, idx(i, j + 1), -1.0).unwrap();
            }
            t.push(me, me, diag).unwrap();
        }
    }
    t.to_csr()
}

struct MatvecResult {
    scalar_s: f64,
    blocked_s: f64,
    threaded_s: f64,
    n: usize,
    nnz: usize,
}

fn bench_matvec(reps: usize, inner: usize) -> MatvecResult {
    let pg = pdn_grid(REF_NX, REF_NY);
    let session = pg.session();
    let a = session.matrix();
    let n = a.rows();
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.37).sin()).collect();
    let mut y = vec![0.0; n];
    let mut run = |backend: Backend| {
        time(reps, || {
            for _ in 0..inner {
                a.matvec_into_backend(&x, &mut y, backend).expect("matvec");
            }
            black_box(&y);
        }) / inner as f64
    };
    let scalar_s = run(Backend::Scalar);
    let blocked_s = run(Backend::Blocked);
    let threaded_s = run(Backend::Threaded);
    for (name, s) in [
        ("scalar", scalar_s),
        ("blocked", blocked_s),
        ("threaded", threaded_s),
    ] {
        println!(
            "  matvec_{name:<9} {:>9.2} us/matvec  ({:.2}x vs scalar)  [{REF_NX}x{REF_NY}, nnz {}]",
            s * 1e6,
            scalar_s / s,
            a.nnz()
        );
    }
    MatvecResult {
        scalar_s,
        blocked_s,
        threaded_s,
        n,
        nnz: a.nnz(),
    }
}

struct SweepResult {
    scalar_s: f64,
    threaded_s: f64,
    n: usize,
}

fn bench_ssor_sweep(reps: usize, inner: usize, nx: usize, ny: usize) -> SweepResult {
    let pg = pdn_grid(nx, ny);
    let session = pg.session();
    let a = session.matrix();
    let n = a.rows();
    let src: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.23).cos()).collect();
    let mut dst = vec![0.0; n];
    let mut run = |kernel: KernelSpec| {
        let mut p = PrecondSpec::Ssor { omega: 1.5 }.build();
        p.set_kernel(kernel);
        p.setup(a).expect("SSOR setup");
        // Warm once so lazily built level schedules are excluded.
        p.apply(&mut dst, &src);
        time(reps, || {
            for _ in 0..inner {
                p.apply(&mut dst, &src);
            }
            black_box(&dst);
        }) / inner as f64
    };
    let scalar_s = run(KernelSpec::Fixed(Backend::Scalar));
    let threaded_s = run(KernelSpec::Fixed(Backend::Threaded));
    println!(
        "  ssor_sweep scalar {:>9.2} us  level-scheduled {:>9.2} us  speedup {:.2}x  [{nx}x{ny}]",
        scalar_s * 1e6,
        threaded_s * 1e6,
        scalar_s / threaded_s
    );
    SweepResult {
        scalar_s,
        threaded_s,
        n,
    }
}

/// The pre-PR-4 BiCGSTAB loop: scalar matvec, sequential unfused
/// reductions, Jacobi preconditioning — the baseline the fused
/// multi-backend path is gated against.
mod baseline {
    use bright_num::CsrMatrix;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn norm2(a: &[f64]) -> f64 {
        dot(a, a).sqrt()
    }

    #[allow(clippy::many_single_char_names, clippy::similar_names)]
    pub fn bicgstab_jacobi(
        a: &CsrMatrix,
        b: &[f64],
        tol: f64,
        max_it: usize,
    ) -> (Vec<f64>, usize) {
        let n = b.len();
        let inv_diag: Vec<f64> = a.diagonal().iter().map(|d| 1.0 / d).collect();
        let apply = |dst: &mut [f64], src: &[f64], inv: &[f64]| {
            for ((d, s), m) in dst.iter_mut().zip(src).zip(inv) {
                *d = s * m;
            }
        };
        let b_norm = norm2(b);
        let mut x = vec![0.0; n];
        let mut r = b.to_vec();
        let r_hat = r.clone();
        let mut v = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut p_hat = vec![0.0; n];
        let mut s = vec![0.0; n];
        let mut s_hat = vec![0.0; n];
        let mut t = vec![0.0; n];
        let (mut rho, mut alpha, mut omega) = (1.0f64, 1.0f64, 1.0f64);
        for it in 0..max_it {
            if norm2(&r) / b_norm <= tol {
                return (x, it);
            }
            let rho_new = dot(&r_hat, &r);
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
            apply(&mut p_hat, &p, &inv_diag);
            a.matvec_into(&p_hat, &mut v).unwrap();
            alpha = rho / dot(&r_hat, &v);
            for i in 0..n {
                s[i] = r[i] - alpha * v[i];
            }
            if norm2(&s) / b_norm <= tol {
                for i in 0..n {
                    x[i] += alpha * p_hat[i];
                }
                return (x, it + 1);
            }
            apply(&mut s_hat, &s, &inv_diag);
            a.matvec_into(&s_hat, &mut t).unwrap();
            omega = dot(&t, &s) / dot(&t, &t);
            for i in 0..n {
                x[i] += alpha * p_hat[i] + omega * s_hat[i];
                r[i] = s[i] - omega * t[i];
            }
        }
        (x, max_it)
    }
}

struct SolveResult {
    baseline_s: f64,
    optimized_s: f64,
    baseline_iters: usize,
    optimized_iters: usize,
}

fn bench_bicgstab(reps: usize) -> SolveResult {
    let a = convection_diffusion_2d(REF_NX, REF_NY, 2.0);
    let n = a.rows();
    let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.11).sin()).collect();
    let b = a.matvec(&x_true).unwrap();
    let tol = 1e-10;

    let mut baseline_iters = 0usize;
    let baseline_s = time(reps, || {
        let (x, iters) = baseline::bicgstab_jacobi(&a, &b, tol, 50_000);
        baseline_iters = iters;
        black_box(x);
    });

    let opts = IterOptions {
        tolerance: tol,
        max_iterations: 50_000,
        preconditioner: PrecondSpec::Jacobi,
        kernel: KernelSpec::Auto,
    };
    let mut optimized_iters = 0usize;
    let mut check = Vec::new();
    let optimized_s = time(reps, || {
        let mut ws = KrylovWorkspace::new();
        let mut x = Vec::new();
        let stats = bicgstab_with_workspace(&a, &b, &mut x, &opts, &mut ws).expect("solve");
        optimized_iters = stats.iterations;
        check = x;
        black_box(&check);
    });
    // Both paths must reach the same solution.
    for (u, v) in check.iter().zip(&x_true) {
        assert!((u - v).abs() < 1e-6, "fused solve diverged: {u} vs {v}");
    }
    println!(
        "  bicgstab_fused baseline {:>8.4} s ({baseline_iters} it)  optimized {:>8.4} s ({optimized_iters} it)  speedup {:.2}x  [{REF_NX}x{REF_NY}]",
        baseline_s,
        optimized_s,
        baseline_s / optimized_s
    );
    SolveResult {
        baseline_s,
        optimized_s,
        baseline_iters,
        optimized_iters,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let reps = if quick { 3 } else { 5 };
    let inner = if quick { 30 } else { 100 };
    let solve_reps = if quick { 2 } else { 3 };

    bright_bench::banner(
        "BENCH_PR4",
        "multi-backend kernels: blocked/threaded matvec, level-scheduled sweeps, fused reductions",
    );
    if std::env::var("BRIGHT_KERNEL_BACKEND").is_ok() {
        eprintln!(
            "WARNING: BRIGHT_KERNEL_BACKEND overrides every fixed backend; \
             unset it for meaningful backend comparisons"
        );
    }
    let hw = hardware_threads();
    let pool = kernel_threads();
    println!("  host: {hw} hardware threads, kernel pool {pool}");

    let matvec = bench_matvec(reps, inner);
    let sweep = bench_ssor_sweep(reps, inner.min(40), SWEEP_NX, SWEEP_NY);
    let solve = bench_bicgstab(solve_reps);

    // Parallel wall-clock gates need real cores; record everywhere,
    // enforce on CI-class hosts.
    let enforced = hw >= 4;
    let threaded_matvec_speedup = matvec.scalar_s / matvec.threaded_s;
    let blocked_matvec_speedup = matvec.scalar_s / matvec.blocked_s;
    let sweep_speedup = sweep.scalar_s / sweep.threaded_s;
    let solve_speedup = solve.baseline_s / solve.optimized_s;

    let doc = Value::object([
        ("hardware_threads".into(), Value::Number(hw as f64)),
        ("pool_threads".into(), Value::Number(pool as f64)),
        (
            "matvec".into(),
            Value::object([
                ("grid".into(), Value::String(format!("{REF_NX}x{REF_NY}"))),
                ("rows".into(), Value::Number(matvec.n as f64)),
                ("nnz".into(), Value::Number(matvec.nnz as f64)),
                ("scalar_s".into(), Value::Number(matvec.scalar_s)),
                ("blocked_s".into(), Value::Number(matvec.blocked_s)),
                ("threaded_s".into(), Value::Number(matvec.threaded_s)),
                (
                    "blocked_speedup".into(),
                    Value::Number(blocked_matvec_speedup),
                ),
                (
                    "threaded_speedup".into(),
                    Value::Number(threaded_matvec_speedup),
                ),
            ]),
        ),
        (
            "ssor_level_sweep".into(),
            Value::object([
                ("grid".into(), Value::String(format!("{SWEEP_NX}x{SWEEP_NY}"))),
                ("rows".into(), Value::Number(sweep.n as f64)),
                ("scalar_s".into(), Value::Number(sweep.scalar_s)),
                ("threaded_s".into(), Value::Number(sweep.threaded_s)),
                ("speedup".into(), Value::Number(sweep_speedup)),
            ]),
        ),
        (
            "bicgstab_fused".into(),
            Value::object([
                ("grid".into(), Value::String(format!("{REF_NX}x{REF_NY}"))),
                ("baseline_s".into(), Value::Number(solve.baseline_s)),
                ("optimized_s".into(), Value::Number(solve.optimized_s)),
                (
                    "baseline_iterations".into(),
                    Value::Number(solve.baseline_iters as f64),
                ),
                (
                    "optimized_iterations".into(),
                    Value::Number(solve.optimized_iters as f64),
                ),
                ("speedup".into(), Value::Number(solve_speedup)),
            ]),
        ),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                ("threaded_matvec_min".into(), Value::Number(2.0)),
                ("ssor_sweep_min".into(), Value::Number(1.5)),
                ("bicgstab_fused_min".into(), Value::Number(1.1)),
                ("enforced".into(), Value::Bool(enforced)),
                (
                    "enforce_condition".into(),
                    Value::String(
                        "wall-clock parallel gates require >= 4 hardware threads".into(),
                    ),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR4.json");
    println!("  results written to {out_path}");

    if !enforced {
        println!(
            "  gates recorded but not enforced: {hw} hardware thread(s) < 4 \
             (threaded {threaded_matvec_speedup:.2}x, sweep {sweep_speedup:.2}x, \
             fused solve {solve_speedup:.2}x)"
        );
        return;
    }
    let mut failed = false;
    let mut gate = |name: &str, got: f64, min: f64| {
        if got < min {
            eprintln!("GATE FAILED: {name} speedup {got:.2}x < required {min:.2}x");
            failed = true;
        }
    };
    gate("threaded_matvec", threaded_matvec_speedup, 2.0);
    gate("ssor_level_sweep", sweep_speedup, 1.5);
    gate("bicgstab_fused", solve_speedup, 1.1);
    if failed {
        std::process::exit(1);
    }
    println!("  all performance gates passed");
}
