//! PR-3 performance gate: adaptive-Δt transient stepping and
//! checkpoint-branch reuse. Records the results in `BENCH_PR3.json`.
//!
//! Two benchmark families, mirroring the acceptance criteria:
//!
//! * `adaptive_vs_fixed` — the throttling trace (full load → gated →
//!   full load on the 48 ml/min POWER7+ stack) integrated by the
//!   adaptive controller vs. fixed-Δt backward Euler *at equal
//!   accuracy*: both runs are measured against a fine-Δt reference at
//!   every segment boundary (tracking error), and the fixed baseline is
//!   the coarsest step whose error does not exceed the adaptive run's.
//!   Gate: the adaptive run needs ≤ half of the baseline's time steps.
//!   (Raw solve counts are also recorded — each adaptive step costs 3
//!   solves for the step-doubling estimate.)
//! * `checkpoint_branch` — a 4-variant duty-cycle batch whose traces
//!   share a 2-segment prefix, served by the engine's segment-prefix
//!   tree vs. integrating each variant independently. Gates: ≥ 1.2×
//!   end-to-end and the expected shared-segment count.
//!
//! Usage: `bench_pr3 [--quick] [--out <path>]` (default `BENCH_PR3.json`).

use bright_core::{LoadStep, ScenarioEngine, SteppingMode, TransientRequest};
use bright_floorplan::{power7, PowerScenario};
use bright_jsonio::Value;
use bright_num::vec_ops::wrms_diff;
use bright_thermal::{
    presets, AdaptiveConfig, AdaptiveTransient, PowerTrace, ThermalModel, TraceSegment,
    TransientSimulation,
};
use bright_units::{CubicMetersPerSecond, Kelvin};
use std::hint::black_box;
use std::time::Instant;

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up, then the best of `reps` timed repetitions
    // (minimum is the least noisy statistic on a shared host).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

struct AdaptiveRow {
    adaptive_solves: u64,
    adaptive_steps: u64,
    adaptive_err: f64,
    fixed_steps: u64,
    fixed_dt: f64,
    fixed_err: f64,
    step_ratio: f64,
}

/// The throttling trace: full load, a power-gated dip, full load again —
/// on the 48 ml/min (throttled-pump) stack.
fn throttling_setup(scale: f64) -> (ThermalModel, PowerTrace, AdaptiveConfig) {
    let model = presets::power7_stack_at(
        CubicMetersPerSecond::from_milliliters_per_minute(48.0),
        Kelvin::new(300.0),
    )
    .expect("Table II stack");
    let plan = power7::floorplan();
    let full = PowerScenario::full_load()
        .rasterize(&plan, model.grid())
        .expect("power map");
    let gated = PowerScenario::cache_only()
        .rasterize(&plan, model.grid())
        .expect("power map");
    let trace = PowerTrace::new(vec![
        TraceSegment::constant(0.10 * scale, full.clone()),
        TraceSegment::constant(0.30 * scale, gated),
        TraceSegment::constant(0.20 * scale, full),
    ])
    .expect("valid trace");
    let cfg = AdaptiveConfig {
        abs_tol: 0.01,
        dt_init: 1e-3,
        dt_min: 2.5e-4,
        dt_max: 0.1,
        ..AdaptiveConfig::default()
    };
    (model, trace, cfg)
}

/// Integrates the trace at fixed Δt, sampling the field at every
/// segment boundary; returns (steps, samples).
fn run_fixed_sampled(
    model: &ThermalModel,
    trace: &PowerTrace,
    t0: f64,
    dt: f64,
) -> (u64, Vec<Vec<f64>>) {
    let mut sim = TransientSimulation::new(model.clone(), &trace.segments()[0].power, t0, dt)
        .expect("fixed sim");
    let mut samples = Vec::with_capacity(trace.len());
    for seg in trace.segments() {
        let single = PowerTrace::new(vec![seg.clone()]).expect("segment trace");
        sim.run_trace(&single).expect("fixed trace");
        samples.push(sim.temperatures().to_vec());
    }
    (sim.step_count(), samples)
}

/// Tracking error: the worst weighted-RMS distance from the reference
/// over the segment-boundary samples (end-of-trace-only comparison
/// would let a coarse stepper coast — this dissipative system forgets
/// early errors).
fn tracking_err(samples: &[Vec<f64>], reference: &[Vec<f64>], cfg: &AdaptiveConfig) -> f64 {
    samples
        .iter()
        .zip(reference)
        .map(|(s, r)| wrms_diff(s, r, cfg.abs_tol, cfg.rel_tol))
        .fold(0.0, f64::max)
}

fn bench_adaptive_vs_fixed(quick: bool) -> AdaptiveRow {
    let scale = if quick { 0.5 } else { 1.0 };
    let (model, trace, cfg) = throttling_setup(scale);
    let t0 = 300.0;

    // Reference: fine fixed Δt (at the adaptive controller's floor).
    let (_, ref_samples) = run_fixed_sampled(&model, &trace, t0, cfg.dt_min);

    // Adaptive run, sampled at the same segment boundaries.
    let mut adaptive =
        AdaptiveTransient::new(model.clone(), trace.clone(), t0, cfg).expect("adaptive sim");
    let mut samples: Vec<Vec<f64>> = Vec::with_capacity(trace.len());
    let mut cursor = 0;
    while !adaptive.finished() {
        adaptive.step().expect("adaptive step");
        if adaptive.segment_index() > cursor {
            samples.push(adaptive.temperatures().to_vec());
            cursor = adaptive.segment_index();
        }
    }
    let adaptive_err = tracking_err(&samples, &ref_samples, &cfg);
    let stats = adaptive.stats();
    println!(
        "  adaptive: {} steps ({} rejected), {} solves, tracking err {:.3} tol units",
        stats.accepted, stats.rejected, stats.solves, adaptive_err
    );

    // Fixed baseline at equal accuracy: the coarsest Δt (halving ladder)
    // whose tracking error does not exceed the adaptive run's. If even
    // the finest candidate is less accurate, it still *under*-counts the
    // steps equal accuracy would need, so the gate stays conservative.
    let mut fixed_steps = 0u64;
    let mut fixed_dt = 0.0;
    let mut fixed_err = f64::INFINITY;
    let mut dt = 16e-3;
    while dt >= cfg.dt_min * 2.0 - 1e-12 {
        let (steps, fixed_samples) = run_fixed_sampled(&model, &trace, t0, dt);
        let err = tracking_err(&fixed_samples, &ref_samples, &cfg);
        println!(
            "  fixed dt {:>6.2} ms: {:>5} steps, tracking err {:.3} tol units",
            dt * 1e3,
            steps,
            err
        );
        fixed_steps = steps;
        fixed_dt = dt;
        fixed_err = err;
        if err <= adaptive_err {
            break;
        }
        dt /= 2.0;
    }
    let step_ratio = fixed_steps as f64 / stats.accepted as f64;
    println!(
        "  adaptive_vs_fixed: {} fixed steps (dt {:.2} ms) vs {} adaptive => {:.2}x fewer \
         (solves: {} vs {})",
        fixed_steps,
        fixed_dt * 1e3,
        stats.accepted,
        step_ratio,
        fixed_steps,
        stats.solves,
    );
    AdaptiveRow {
        adaptive_solves: stats.solves,
        adaptive_steps: stats.accepted,
        adaptive_err,
        fixed_steps,
        fixed_dt,
        fixed_err,
        step_ratio,
    }
}

struct BranchRow {
    baseline_s: f64,
    optimized_s: f64,
    segments_integrated: u64,
    segments_reused: u64,
    variants: usize,
}

impl BranchRow {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s
    }
}

fn duty_cycle_requests(variants: usize, seg_s: f64) -> Vec<TransientRequest> {
    let dimmed = |dark: usize| {
        let mut load = PowerScenario::full_load();
        for i in 0..dark {
            load.set_block_density(
                format!("core{i}"),
                bright_units::WattPerSquareMeter::new(0.0),
            );
        }
        load
    };
    (0..variants)
        .map(|k| TransientRequest {
            scenario: bright_core::Scenario::power7_reduced(),
            trace: vec![
                // Shared warm-up prefix...
                LoadStep::new(seg_s, PowerScenario::full_load()),
                LoadStep::new(seg_s, PowerScenario::cache_only()),
                // ...then a distinct duty-cycle tail per variant.
                LoadStep::new(seg_s, dimmed(k + 1)),
            ],
            initial_temperature: Kelvin::new(300.0),
            stepping: SteppingMode::Adaptive(AdaptiveConfig::default()),
        })
        .collect()
}

fn bench_checkpoint_branch(reps: usize, quick: bool) -> BranchRow {
    let variants = 4;
    let seg_s = if quick { 0.02 } else { 0.04 };
    let requests = duty_cycle_requests(variants, seg_s);

    // Baseline: every variant integrates its whole trace alone (each in
    // its own engine: no prefix sharing, no model cache).
    let baseline_s = time(reps, || {
        for r in &requests {
            let mut engine = ScenarioEngine::new();
            let reports = engine.run_transient_batch([r.clone()]);
            assert!(reports[0].result.is_ok(), "baseline variant failed");
            black_box(reports);
        }
    });

    // Optimized: one batch; the shared prefix is integrated once and
    // branched from a checkpoint.
    let mut segments_integrated = 0;
    let mut segments_reused = 0;
    let optimized_s = time(reps, || {
        let mut engine = ScenarioEngine::new();
        let reports = engine.run_transient_batch(requests.iter().cloned());
        for r in &reports {
            assert!(r.result.is_ok(), "batched variant failed: {:?}", r.result);
        }
        let stats = engine.stats();
        segments_integrated = stats.trace_segments_integrated;
        segments_reused = stats.trace_segments_reused;
        black_box(reports);
    });
    println!(
        "  checkpoint_branch: baseline {baseline_s:>8.4} s  batched {optimized_s:>8.4} s  \
         speedup {:>5.2}x  ({segments_integrated} nodes integrated, {segments_reused} reused)",
        baseline_s / optimized_s
    );
    BranchRow {
        baseline_s,
        optimized_s,
        segments_integrated,
        segments_reused,
        variants,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR3.json".to_string());
    let reps = if quick { 2 } else { 3 };

    bright_bench::banner(
        "BENCH_PR3",
        "adaptive-dt transient stepping and checkpoint-branch reuse",
    );
    let adaptive = bench_adaptive_vs_fixed(quick);
    let branch = bench_checkpoint_branch(reps, quick);

    // Two shared prefix segments + one tail per variant.
    let expected_reuse = 2 * (branch.variants as u64 - 1);
    let doc = Value::object([
        (
            "adaptive_vs_fixed".into(),
            Value::object([
                (
                    "adaptive_solves".into(),
                    Value::Number(adaptive.adaptive_solves as f64),
                ),
                (
                    "adaptive_steps".into(),
                    Value::Number(adaptive.adaptive_steps as f64),
                ),
                ("adaptive_err_tol_units".into(), Value::Number(adaptive.adaptive_err)),
                (
                    "fixed_steps_at_equal_accuracy".into(),
                    Value::Number(adaptive.fixed_steps as f64),
                ),
                ("fixed_dt_s".into(), Value::Number(adaptive.fixed_dt)),
                ("fixed_err_tol_units".into(), Value::Number(adaptive.fixed_err)),
                ("step_reduction".into(), Value::Number(adaptive.step_ratio)),
            ]),
        ),
        (
            "checkpoint_branch".into(),
            Value::object([
                ("baseline_s".into(), Value::Number(branch.baseline_s)),
                ("optimized_s".into(), Value::Number(branch.optimized_s)),
                ("speedup".into(), Value::Number(branch.speedup())),
                (
                    "segments_integrated".into(),
                    Value::Number(branch.segments_integrated as f64),
                ),
                (
                    "segments_reused".into(),
                    Value::Number(branch.segments_reused as f64),
                ),
                ("variants".into(), Value::Number(branch.variants as f64)),
            ]),
        ),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                ("adaptive_step_reduction_min".into(), Value::Number(2.0)),
                ("checkpoint_branch_min_speedup".into(), Value::Number(1.2)),
                (
                    "checkpoint_branch_expected_reuse".into(),
                    Value::Number(expected_reuse as f64),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR3.json");
    println!("  results written to {out_path}");

    // Fail loudly when an acceptance gate regresses.
    let mut failed = false;
    if adaptive.step_ratio < 2.0 {
        eprintln!(
            "GATE FAILED: adaptive stepping reduces steps only {:.2}x (< 2.0x) at equal accuracy",
            adaptive.step_ratio
        );
        failed = true;
    }
    if branch.speedup() < 1.2 {
        eprintln!(
            "GATE FAILED: checkpoint-branch batch speedup {:.2}x < required 1.20x",
            branch.speedup()
        );
        failed = true;
    }
    if branch.segments_reused < expected_reuse {
        eprintln!(
            "GATE FAILED: {} shared segments reused (expected {expected_reuse})",
            branch.segments_reused
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all performance gates passed");
}
