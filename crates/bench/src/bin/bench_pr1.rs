//! PR-1 performance gate: measures the amortized-assembly/warm-start
//! sweep paths against seed-equivalent cold baselines and records the
//! results in `BENCH_PR1.json`.
//!
//! Four benchmarks, mirroring the acceptance criteria:
//!
//! * `polarization_curve_64` — 64-point single-channel polarization
//!   sweep. Baseline rebuilds the solve context at every point (the
//!   seed's array-sweep behaviour); the new path runs
//!   `polarization_curve` with the cached context, factored transport
//!   operators and warm-started root brackets. Target ≥ 2×.
//! * `thermal_steady_repeat` — repeated `ThermalModel::solve_steady`
//!   with unchanged pattern. Baseline re-assembles the operator per
//!   solve (fresh model, the seed behaviour); the new path reuses the
//!   cached operator and warm-starts from the previous solution.
//!   Target ≥ 1.5×.
//! * `pdn_solve_repeat` — repeated `PowerGrid::solve`. Baseline
//!   re-assembles per solve; the new path uses `solve_warm`.
//!   Target ≥ 1.5×.
//! * `cosim_full_run` — the full reduced co-simulation, fresh engine per
//!   run vs. a reused engine (cached thermal operator and cell
//!   template). Reported for the bench trajectory; no gate.
//!
//! Usage: `bench_pr1 [--quick] [--out <path>]` (default `BENCH_PR1.json`).

use bright_floorplan::{power7, PowerScenario};
use bright_jsonio::Value;
use bright_pdn::PowerGrid;
use bright_thermal::ThermalModel;
use bright_units::Volt;
use std::hint::black_box;
use std::time::Instant;

struct BenchRow {
    name: &'static str,
    baseline_s: f64,
    optimized_s: f64,
    units_per_solve: f64,
    unit: &'static str,
}

impl BenchRow {
    fn speedup(&self) -> f64 {
        self.baseline_s / self.optimized_s
    }

    fn to_json(&self) -> Value {
        Value::object([
            ("name".into(), Value::String(self.name.into())),
            ("baseline_s".into(), Value::Number(self.baseline_s)),
            ("optimized_s".into(), Value::Number(self.optimized_s)),
            ("speedup".into(), Value::Number(self.speedup())),
            (
                "baseline_per_sec".into(),
                Value::Number(self.units_per_solve / self.baseline_s),
            ),
            (
                "optimized_per_sec".into(),
                Value::Number(self.units_per_solve / self.optimized_s),
            ),
            ("unit".into(), Value::String(self.unit.into())),
        ])
    }
}

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    // One untimed warm-up, then the best of `reps` timed repetitions
    // (minimum is the least noisy statistic on a shared host).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bench_polarization(reps: usize) -> BenchRow {
    let points = 64usize;
    let template = bright_flowcell::presets::power7_channel().expect("Table II preset");
    let ocv = template
        .open_circuit_voltage()
        .expect("valid chemistry")
        .value();
    let v_lo = 0.05_f64.min(ocv / 2.0);
    let voltages: Vec<f64> = (0..points)
        .map(|k| v_lo + (ocv - 1e-4 - v_lo) * k as f64 / (points - 1) as f64)
        .collect();

    // Baseline: context rebuilt at every sweep point (fresh model per
    // point — the seed's per-point `solve_at_voltage` array path).
    let baseline_s = time(reps, || {
        for &v in &voltages {
            let fresh = template
                .with_temperature(template.temperature().clone())
                .expect("same profile revalidates");
            black_box(fresh.solve_at_voltage(v).expect("solve"));
        }
    });

    // Optimized: the sweep path (cached context, factored transport
    // operators, warm-started brackets).
    let optimized_s = time(reps, || {
        black_box(
            template
                .polarization_curve(points)
                .expect("polarization solve"),
        );
    });
    BenchRow {
        name: "polarization_curve_64",
        baseline_s,
        optimized_s,
        units_per_solve: points as f64,
        unit: "points",
    }
}

fn bench_thermal(reps: usize, solves_per_rep: usize) -> BenchRow {
    let model = bright_thermal::presets::power7_stack().expect("Table II stack");
    let power = PowerScenario::full_load()
        .rasterize(&power7::floorplan(), model.grid())
        .expect("power map");
    let config = model.config().clone();

    let baseline_s = time(reps, || {
        for _ in 0..solves_per_rep {
            let fresh = ThermalModel::new(config.clone()).expect("valid stack");
            black_box(fresh.solve_steady(&power).expect("steady solve"));
        }
    });

    let optimized_s = time(reps, || {
        let mut session = model.session().expect("assembled operator");
        for _ in 0..solves_per_rep {
            black_box(model.solve_steady_warm(&power, &mut session).expect("steady solve"));
        }
    });
    BenchRow {
        name: "thermal_steady_repeat",
        baseline_s,
        optimized_s,
        units_per_solve: solves_per_rep as f64,
        unit: "solves",
    }
}

fn bench_pdn(reps: usize, solves_per_rep: usize) -> BenchRow {
    let plan = power7::floorplan();
    let grid = bright_mesh::Grid2d::from_extent(
        plan.width().value(),
        plan.height().value(),
        bright_pdn::presets::FIG8_NX,
        bright_pdn::presets::FIG8_NY,
    )
    .expect("grid");
    let load = PowerScenario::cache_only()
        .rasterize(&plan, &grid)
        .expect("rail map");
    let ports = bright_pdn::PortLayout::UniformArray {
        pitch: bright_pdn::presets::PORT_PITCH,
    };
    let make = || {
        PowerGrid::new(
            grid.clone(),
            bright_pdn::presets::CACHE_RAIL_SHEET_RESISTANCE,
            Volt::new(1.0),
            bright_pdn::presets::PORT_RESISTANCE,
            &ports,
            &load,
        )
        .expect("valid grid")
    };

    let baseline_s = time(reps, || {
        for _ in 0..solves_per_rep {
            let pg = make();
            black_box(pg.solve().expect("pdn solve"));
        }
    });

    let pg = make();
    let optimized_s = time(reps, || {
        let mut session = pg.session();
        for _ in 0..solves_per_rep {
            black_box(pg.solve_warm(&mut session).expect("pdn solve"));
        }
    });
    BenchRow {
        name: "pdn_solve_repeat",
        baseline_s,
        optimized_s,
        units_per_solve: solves_per_rep as f64,
        unit: "solves",
    }
}

fn bench_cosim(reps: usize) -> BenchRow {
    use bright_core::{CoSimulation, Scenario};
    let baseline_s = time(reps, || {
        let mut sim = CoSimulation::new(Scenario::power7_reduced()).expect("valid scenario");
        black_box(sim.run().expect("cosim run"));
    });
    let mut sim = CoSimulation::new(Scenario::power7_reduced()).expect("valid scenario");
    let optimized_s = time(reps, || {
        black_box(sim.run().expect("cosim run"));
    });
    BenchRow {
        name: "cosim_full_run",
        baseline_s,
        optimized_s,
        units_per_solve: 1.0,
        unit: "runs",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR1.json".to_string());
    let reps = if quick { 2 } else { 5 };
    let solves_per_rep = if quick { 3 } else { 5 };

    bright_bench::banner("BENCH_PR1", "warm-start workspaces + amortized assembly");
    let rows = [
        bench_polarization(reps),
        bench_thermal(reps, solves_per_rep),
        bench_pdn(reps, solves_per_rep),
        bench_cosim(reps),
    ];
    for row in &rows {
        println!(
            "  {:<24} baseline {:>9.4} s  optimized {:>9.4} s  speedup {:>5.2}x  ({:.1} {}/s optimized)",
            row.name,
            row.baseline_s,
            row.optimized_s,
            row.speedup(),
            row.units_per_solve / row.optimized_s,
            row.unit,
        );
    }

    let doc = Value::object([
        ("benchmarks".into(), Value::Array(rows.iter().map(BenchRow::to_json).collect())),
        ("quick".into(), Value::Bool(quick)),
        (
            "gates".into(),
            Value::object([
                (
                    "polarization_curve_64_min_speedup".into(),
                    Value::Number(2.0),
                ),
                (
                    "thermal_steady_repeat_min_speedup".into(),
                    Value::Number(1.5),
                ),
                ("pdn_solve_repeat_min_speedup".into(), Value::Number(1.5)),
            ]),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json_string_pretty() + "\n").expect("write BENCH_PR1.json");
    println!("  results written to {out_path}");

    // Fail loudly when an acceptance gate regresses.
    let gate = |name: &str, min: f64| {
        let row = rows.iter().find(|r| r.name == name).expect("known row");
        if row.speedup() < min {
            eprintln!(
                "GATE FAILED: {name} speedup {:.2}x < required {min:.1}x",
                row.speedup()
            );
            std::process::exit(1);
        }
    };
    gate("polarization_curve_64", 2.0);
    gate("thermal_steady_repeat", 1.5);
    gate("pdn_solve_repeat", 1.5);
    println!("  all performance gates passed");
}
