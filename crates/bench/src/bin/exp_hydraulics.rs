//! **E1** — Section III-B hydraulics: pressure drop and pumping power of
//! the Table II operating point. The paper quotes a 1.5 bar/cm gradient
//! (citing smaller cooling channels from the literature) and a 4.4 W pump
//! at η = 50 %; the first-principles laminar values for the 200×400 µm
//! channels are lower — both are printed.

use bright_bench::{banner, compare_row};
use bright_flow::fluid::TemperatureDependentFluid;
use bright_flow::{array::ChannelArray, hydraulics, laminar, RectChannel};
use bright_units::{CubicMetersPerSecond, Kelvin, Meters, Pascal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("E1", "hydraulics of the 676 ml/min operating point");

    let channel = RectChannel::new(
        Meters::from_micrometers(200.0),
        Meters::from_micrometers(400.0),
        Meters::from_millimeters(22.0),
    )?;
    let array = ChannelArray::new(channel, 88, Meters::from_micrometers(300.0))?;
    let props = TemperatureDependentFluid::vanadium_electrolyte().at(Kelvin::new(300.0))?;
    let flow = CubicMetersPerSecond::from_milliliters_per_minute(676.0);

    let v = array.mean_velocity(flow);
    let re = laminar::reynolds(&props, v, &channel);
    let dp = array.pressure_drop(&props, flow);
    let grad = dp / channel.length();
    let pump = array.pumping_power(&props, flow, hydraulics::DEFAULT_PUMP_EFFICIENCY)?;

    println!("{}", compare_row("mean channel velocity", 1.4, v.value(), "m/s"));
    println!("  Reynolds number: {re:.0} (laminar: {})", laminar::is_laminar(&props, v, &channel));
    println!(
        "{}",
        compare_row(
            "pressure gradient",
            1.5,
            grad.to_bar_per_centimeter(),
            "bar/cm"
        )
    );
    println!(
        "{}",
        compare_row("total pressure drop", 3.3, dp.to_bar(), "bar")
    );
    println!("{}", compare_row("pumping power", 4.4, pump.value(), "W"));

    // The paper's own arithmetic, reproduced with its quoted gradient:
    let paper_dp = Pascal::from_bar(1.95);
    let paper_pump = hydraulics::pumping_power(paper_dp, flow, 0.5)?;
    println!(
        "\ncross-check of the paper's arithmetic: dp*V/eta with dp = 1.95 bar \
         gives {paper_pump:.2} = the quoted 4.4 W."
    );
    println!(
        "first-principles laminar friction for these (relatively large)\n\
         200x400 um channels gives {:.2} bar/cm; the 1.5 bar/cm the paper\n\
         quotes references ~50 um cooling channels from the literature.\n\
         The energy-balance conclusion is unchanged (see E3).",
        grad.to_bar_per_centimeter()
    );
    Ok(())
}
