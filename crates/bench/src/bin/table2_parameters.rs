//! **T2** — Table II of the paper: the 88-channel microfluidic redox cell
//! array connected to the IBM POWER7+ chip. Prints and verifies the
//! encoded configuration.

use bright_bench::{banner, print_table};
use bright_flowcell::presets;
use bright_units::CubicMetersPerSecond;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner("T2", "Table II - POWER7+ microfluidic cell array parameters");

    let array = presets::power7_array()?;
    let model = array.template();
    let ch = model.geometry().channel();
    let chem = model.chemistry();

    let rows = vec![
        vec!["channels".into(), format!("{}", array.count()), "88".into()],
        vec![
            "channel width (um)".into(),
            format!("{:.0}", ch.width().to_micrometers()),
            "200".into(),
        ],
        vec![
            "channel height (um)".into(),
            format!("{:.0}", ch.height().to_micrometers()),
            "400".into(),
        ],
        vec![
            "channel length (mm)".into(),
            format!("{:.0}", ch.length().to_millimeters()),
            "22".into(),
        ],
        vec![
            "total flow (ml/min)".into(),
            format!(
                "{:.0}",
                (model.flow() * array.count() as f64).to_milliliters_per_minute()
            ),
            "676".into(),
        ],
        vec![
            "anode C*_Red (mol/m3)".into(),
            format!("{:.0}", chem.negative.inlet.c_red.value()),
            "2000".into(),
        ],
        vec![
            "cathode C*_Ox (mol/m3)".into(),
            format!("{:.0}", chem.positive.inlet.c_ox.value()),
            "2000".into(),
        ],
        vec![
            "anode D (1e-10 m2/s)".into(),
            format!("{:.2}", chem.negative.diffusivity.value() * 1e10),
            "4.13".into(),
        ],
        vec![
            "cathode D (1e-10 m2/s)".into(),
            format!("{:.2}", chem.positive.diffusivity.value() * 1e10),
            "1.26".into(),
        ],
        vec![
            "anode k0 (1e-5 m/s)".into(),
            format!("{:.2}", chem.negative.kinetics.rate_constant().value() * 1e5),
            "5.33".into(),
        ],
        vec![
            "cathode k0 (1e-5 m/s)".into(),
            format!("{:.2}", chem.positive.kinetics.rate_constant().value() * 1e5),
            "4.67".into(),
        ],
    ];
    print_table(&["parameter", "encoded", "paper"], &rows);

    let total_flow = model.flow() * array.count() as f64;
    assert_eq!(array.count(), 88);
    assert!((total_flow.value()
        - CubicMetersPerSecond::from_milliliters_per_minute(676.0).value())
    .abs()
        < 1e-12);
    println!("\nall Table II values encoded exactly.");
    Ok(())
}
