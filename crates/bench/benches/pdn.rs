//! Criterion benches of the power-grid IR-drop solver behind Fig. 8.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bright_floorplan::{power7, PowerScenario};
use bright_mesh::Grid2d;
use bright_pdn::{presets, PortLayout, PowerGrid};
use bright_units::Volt;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdn_solve");
    group.sample_size(10);
    let grid = presets::power7_cache_rail().unwrap();
    group.bench_function("fig8_cache_rail_106x85", |b| {
        b.iter(|| black_box(&grid).solve().unwrap());
    });
    // The sweep path: pre-assembled system + warm-started CG.
    let mut session = grid.session();
    group.bench_function("fig8_cache_rail_106x85_warm", |b| {
        b.iter(|| black_box(&grid).solve_warm(&mut session).unwrap());
    });
    group.finish();
}

fn bench_resolution_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdn_resolution");
    group.sample_size(10);
    let plan = power7::floorplan();
    for (nx, ny) in [(53usize, 43usize), (106, 85), (212, 170)] {
        let grid = Grid2d::from_extent(plan.width().value(), plan.height().value(), nx, ny)
            .unwrap();
        let load = PowerScenario::cache_only().rasterize(&plan, &grid).unwrap();
        let pg = PowerGrid::new(
            grid,
            presets::CACHE_RAIL_SHEET_RESISTANCE,
            Volt::new(1.0),
            presets::PORT_RESISTANCE,
            &PortLayout::UniformArray {
                pitch: presets::PORT_PITCH,
            },
            &load,
        )
        .unwrap();
        group.bench_function(format!("{nx}x{ny}"), |b| {
            b.iter(|| black_box(&pg).solve().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8, bench_resolution_scaling);
criterion_main!(benches);
