//! Criterion benches of the numerical kernels that regenerate every
//! figure: tridiagonal solves (species marching), CG (PDN / Fig. 8) and
//! BiCGSTAB (thermal / Fig. 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bright_num::solvers::{bicgstab, conjugate_gradient, IterOptions};
use bright_num::tridiag::TridiagonalSystem;
use bright_num::TripletMatrix;

fn laplacian_2d(n: usize) -> bright_num::CsrMatrix {
    let mut t = TripletMatrix::new(n * n, n * n);
    let idx = |i: usize, j: usize| i * n + j;
    for i in 0..n {
        for j in 0..n {
            t.push(idx(i, j), idx(i, j), 4.0).unwrap();
            if i > 0 {
                t.push(idx(i, j), idx(i - 1, j), -1.0).unwrap();
            }
            if i + 1 < n {
                t.push(idx(i, j), idx(i + 1, j), -1.0).unwrap();
            }
            if j > 0 {
                t.push(idx(i, j), idx(i, j - 1), -1.0).unwrap();
            }
            if j + 1 < n {
                t.push(idx(i, j), idx(i, j + 1), -1.0).unwrap();
            }
        }
    }
    t.to_csr()
}

fn convection_diffusion(n: usize) -> bright_num::CsrMatrix {
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, 4.0).unwrap();
        if i > 0 {
            t.push(i, i - 1, -2.5).unwrap();
        }
        if i + 1 < n {
            t.push(i, i + 1, -1.0).unwrap();
        }
    }
    t.to_csr()
}

fn bench_tridiagonal(c: &mut Criterion) {
    let mut group = c.benchmark_group("tridiagonal");
    group.sample_size(30);
    for n in [64usize, 256, 1024] {
        let sys = TridiagonalSystem::from_bands(
            vec![-1.0; n - 1],
            vec![3.0; n],
            vec![-1.0; n - 1],
        )
        .unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| sys.solve(black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn bench_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_laplacian");
    group.sample_size(10);
    for n in [32usize, 64] {
        let a = laplacian_2d(n);
        let b = vec![1.0; n * n];
        group.bench_with_input(BenchmarkId::from_parameter(n * n), &n, |bench, _| {
            bench.iter(|| {
                conjugate_gradient(black_box(&a), &b, None, &IterOptions::default()).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_bicgstab(c: &mut Criterion) {
    let mut group = c.benchmark_group("bicgstab_convdiff");
    group.sample_size(10);
    for n in [4096usize, 16384] {
        let a = convection_diffusion(n);
        let b = vec![1.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| bicgstab(black_box(&a), &b, None, &IterOptions::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tridiagonal, bench_cg, bench_bicgstab);
criterion_main!(benches);
