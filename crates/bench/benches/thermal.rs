//! Criterion benches of the 3D-ICE-style thermal solver behind Fig. 9.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bright_floorplan::{power7, PowerScenario};
use bright_thermal::presets;
use bright_thermal::transient::TransientSimulation;

fn bench_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_steady");
    group.sample_size(10);
    let model = presets::power7_stack().unwrap();
    let power = PowerScenario::full_load()
        .rasterize(&power7::floorplan(), model.grid())
        .unwrap();
    group.bench_function("power7_88x44_full_load", |b| {
        b.iter(|| model.solve_steady(black_box(&power)).unwrap());
    });
    // The sweep path: cached operator + Krylov workspace + warm start.
    let mut session = model.session().unwrap();
    group.bench_function("power7_88x44_full_load_warm", |b| {
        b.iter(|| model.solve_steady_warm(black_box(&power), &mut session).unwrap());
    });
    group.finish();
}

fn bench_transient_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_transient");
    group.sample_size(10);
    let model = presets::power7_stack().unwrap();
    let power = PowerScenario::full_load()
        .rasterize(&power7::floorplan(), model.grid())
        .unwrap();
    group.bench_function("power7_step_1ms", |b| {
        b.iter_batched(
            || TransientSimulation::new(model.clone(), &power, 300.0, 1e-3).unwrap(),
            |mut sim| sim.step().unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_steady, bench_transient_step);
criterion_main!(benches);
