//! Criterion benches of the flow-cell solver — the kernels behind Fig. 3
//! (validation polarization) and Fig. 7 (array V–I).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bright_flowcell::presets;

fn bench_single_voltage_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("flowcell_solve_at_voltage");
    group.sample_size(20);
    let power7 = presets::power7_channel().unwrap();
    group.bench_function("power7_channel_1V", |b| {
        b.iter(|| power7.solve_at_voltage(black_box(1.0)).unwrap());
    });
    let kjeang = presets::kjeang2007(60.0).unwrap();
    group.bench_function("kjeang_cell_0.8V", |b| {
        b.iter(|| kjeang.solve_at_voltage(black_box(0.8)).unwrap());
    });
    group.finish();
}

fn bench_polarization_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("flowcell_polarization");
    group.sample_size(10);
    let power7 = presets::power7_channel().unwrap();
    group.bench_function("fig7_single_channel_12pts", |b| {
        b.iter(|| power7.polarization_curve(black_box(12)).unwrap());
    });
    group.bench_function("fig7_single_channel_64pts", |b| {
        b.iter(|| power7.polarization_curve(black_box(64)).unwrap());
    });
    group.finish();
}

fn bench_current_inversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("flowcell_solve_at_current");
    group.sample_size(10);
    let power7 = presets::power7_channel().unwrap();
    group.bench_function("power7_channel_30mA", |b| {
        b.iter(|| {
            power7
                .solve_at_current(black_box(bright_units::Ampere::new(0.03)))
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_voltage_point,
    bench_polarization_sweep,
    bench_current_inversion
);
criterion_main!(benches);
