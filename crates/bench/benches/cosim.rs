//! Criterion bench of the full integrated co-simulation (E2/E3 pipeline)
//! at the reduced test resolution.

use criterion::{criterion_group, criterion_main, Criterion};

use bright_core::{CoSimulation, Scenario};

fn bench_cosim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosim");
    group.sample_size(10);
    let mut sim = CoSimulation::new(Scenario::power7_reduced()).unwrap();
    group.bench_function("power7_reduced_full_run", |b| {
        b.iter(|| sim.run().unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_cosim);
criterion_main!(benches);
