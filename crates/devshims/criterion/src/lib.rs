//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` cannot be fetched. This crate implements the subset of
//! its API used by the benches in `crates/bench/benches/`:
//!
//! * [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//!   [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! * [`Bencher::iter`] and [`Bencher::iter_batched`] with [`BatchSize`],
//! * [`BenchmarkId::from_parameter`],
//! * the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing uses `std::time::Instant`. Each benchmark reports mean and
//! minimum wall time per iteration on stdout. Environment knobs:
//!
//! * `BENCH_QUICK=1` — caps samples at 10 and the per-sample calibration
//!   budget, for CI smoke runs;
//! * `CRITERION_JSON=<path>` — appends one JSON object per benchmark
//!   (`{"group","bench","mean_ns","min_ns","samples"}`) as JSON lines.

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

/// Re-export matching `criterion::black_box` (benches also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times one routine
/// call per sample regardless of the variant, so these are equivalent
/// here; the enum exists for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, e.g. a problem size.
    pub fn from_parameter<T: Display>(parameter: T) -> Self {
        Self(parameter.to_string())
    }

    /// A `function_name/parameter` id.
    pub fn new<T: Display>(function_name: &str, parameter: T) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }
}

/// Conversion accepted by `bench_function` (matches the upstream
/// `IntoBenchmarkId` flexibility for the call sites in this workspace).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times (ns) for the current benchmark.
    recorded: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: one untimed warm-up call, then pick an iteration
        // count that makes a sample last at least ~2 ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64();
        let target = if quick_mode() { 2e-3 } else { 10e-3 };
        let iters = ((target / once.max(1e-9)) as usize).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed().as_secs_f64();
            self.recorded.push(dt * 1e9 / iters as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup is untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed().as_secs_f64();
            self.recorded.push(dt * 1e9);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = effective_samples(self.samples);
        let mut bencher = Bencher {
            samples,
            recorded: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &id.into_id(), &bencher.recorded);
        self
    }

    /// Runs one benchmark parameterized by an input reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream-compatible no-op beyond reporting flow).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }

    fn report(&mut self, group: &str, bench: &str, samples_ns: &[f64]) {
        if samples_ns.is_empty() {
            return;
        }
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "{group}/{bench}: mean {} min {} ({} samples)",
            format_ns(mean),
            format_ns(min),
            samples_ns.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
            {
                let _ = writeln!(
                    f,
                    "{{\"group\":\"{group}\",\"bench\":\"{bench}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"samples\":{}}}",
                    samples_ns.len()
                );
            }
        }
    }
}

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn effective_samples(configured: usize) -> usize {
    if quick_mode() {
        configured.clamp(2, 10)
    } else {
        configured.max(2)
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Groups benchmark functions, matching `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point, matching `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function(format!("fmt-{}", 1), |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        trivial_bench(&mut c);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1.2e3), "1.200 us");
        assert_eq!(format_ns(1.2e6), "1.200 ms");
        assert_eq!(format_ns(1.2e9), "1.200 s");
    }
}
