//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` cannot be fetched. This crate implements the subset of
//! its API that the workspace's property tests use:
//!
//! * the [`proptest!`] macro with the `#![proptest_config(..)]` header,
//!   test functions of the form `fn name(x in strategy, ..) { .. }`,
//! * range strategies over the primitive numeric types (`0usize..10`,
//!   `-1.0..1.0f64`, ...),
//! * [`prop_assert!`]/[`prop_assert_eq!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Sampling is deterministic: each `(test name, case index)` pair seeds a
//! SplitMix64 generator, so failures are reproducible run-to-run while
//! still covering a spread of the input space. The `PROPTEST_CASES`
//! environment variable caps the case count (used by CI quick mode).

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The effective case count: the configured value, capped by the
    /// `PROPTEST_CASES` environment variable when set.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
        {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for one `(test, case)` pair.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of sampled values — the subset of proptest's `Strategy` this
/// workspace needs (half-open numeric ranges).
pub trait Strategy {
    /// The sampled value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start).max(1) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_signed_strategy!(isize, i64, i32, i16, i8);

/// `proptest::collection` — vector strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing `Vec`s of sampled elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors with lengths drawn from `size` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Skips the current sampled case when the assumption does not hold.
///
/// Expands to a `continue` of the per-case loop generated by
/// [`proptest!`], so it must be used at the top level of a test body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.effective_cases() {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// The usual `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let f = Strategy::sample(&(-2.0..3.0f64), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = Strategy::sample(&(5usize..9), &mut rng);
            assert!((5..9).contains(&u));
            let i = Strategy::sample(&(-4i32..7), &mut rng);
            assert!((-4..7).contains(&i));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expansion_works(x in 0.0..1.0f64, n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n.min(4), n);
        }
    }
}
