//! Property-based tests of the microfluidics models.

use proptest::prelude::*;

use bright_flow::fluid::TemperatureDependentFluid;
use bright_flow::hydraulics::{laminar_pressure_gradient, pressure_drop, pumping_power};
use bright_flow::laminar::{f_re_fanning, nusselt_h1, reynolds};
use bright_flow::RectChannel;
use bright_units::{CubicMetersPerSecond, Kelvin, Meters, MetersPerSecond};

fn channel(w_um: f64, h_um: f64, l_mm: f64) -> RectChannel {
    RectChannel::new(
        Meters::from_micrometers(w_um),
        Meters::from_micrometers(h_um),
        Meters::from_millimeters(l_mm),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hydraulic_diameter_between_min_side_and_twice_min_side(
        w in 20.0..2000.0f64,
        h in 20.0..2000.0f64,
    ) {
        let ch = channel(w, h, 10.0);
        let dh = ch.hydraulic_diameter().to_micrometers();
        let min_side = w.min(h);
        prop_assert!(dh >= min_side - 1e-9);
        prop_assert!(dh <= 2.0 * min_side + 1e-9);
    }

    #[test]
    fn f_re_and_nusselt_are_bounded_and_monotone(a in 0.01..1.0f64, da in 0.001..0.5f64) {
        let a2 = (a + da).min(1.0);
        // Friction and Nu both decrease toward the square duct.
        prop_assert!(f_re_fanning(a) >= f_re_fanning(a2) - 1e-9);
        prop_assert!(nusselt_h1(a) >= nusselt_h1(a2) - 1e-9);
        // Global bounds.
        prop_assert!(f_re_fanning(a) <= 24.0 + 1e-9);
        prop_assert!(f_re_fanning(a) >= 14.2);
        prop_assert!(nusselt_h1(a) <= 8.235 + 1e-9);
        prop_assert!(nusselt_h1(a) >= 3.55);
    }

    #[test]
    fn pressure_drop_monotone_in_velocity_and_length(
        v1 in 0.05..3.0f64,
        dv in 0.01..2.0f64,
        l in 5.0..50.0f64,
        dl in 1.0..30.0f64,
    ) {
        let props = TemperatureDependentFluid::vanadium_electrolyte()
            .at(Kelvin::new(300.0))
            .unwrap();
        let c1 = channel(200.0, 400.0, l);
        let c2 = channel(200.0, 400.0, l + dl);
        let p_v1 = pressure_drop(&props, MetersPerSecond::new(v1), &c1).value();
        let p_v2 = pressure_drop(&props, MetersPerSecond::new(v1 + dv), &c1).value();
        prop_assert!(p_v2 > p_v1);
        let p_l2 = pressure_drop(&props, MetersPerSecond::new(v1), &c2).value();
        prop_assert!(p_l2 > p_v1);
    }

    #[test]
    fn gradient_times_length_equals_drop(
        v in 0.05..3.0f64,
        w in 50.0..1000.0f64,
        h in 50.0..1000.0f64,
    ) {
        let props = TemperatureDependentFluid::vanadium_electrolyte()
            .at(Kelvin::new(300.0))
            .unwrap();
        let ch = channel(w, h, 22.0);
        let grad = laminar_pressure_gradient(&props, MetersPerSecond::new(v), &ch).value();
        let dp = pressure_drop(&props, MetersPerSecond::new(v), &ch).value();
        prop_assert!((grad * ch.length().value() - dp).abs() < 1e-9 * dp.max(1e-300));
    }

    #[test]
    fn pumping_power_scales_inverse_with_efficiency(
        eta in 0.05..1.0f64,
        dp_bar in 0.01..5.0f64,
        flow_ml in 1.0..2000.0f64,
    ) {
        let dp = bright_units::Pascal::from_bar(dp_bar);
        let q = CubicMetersPerSecond::from_milliliters_per_minute(flow_ml);
        let p = pumping_power(dp, q, eta).unwrap().value();
        let p_ideal = pumping_power(dp, q, 1.0).unwrap().value();
        prop_assert!((p * eta - p_ideal).abs() < 1e-9 * p_ideal.max(1e-300));
    }

    #[test]
    fn warmer_fluid_flows_easier(t1 in 285.0..330.0f64, dt in 1.0..20.0f64) {
        let model = TemperatureDependentFluid::vanadium_electrolyte();
        let cold = model.at(Kelvin::new(t1)).unwrap();
        let warm = model.at(Kelvin::new(t1 + dt)).unwrap();
        prop_assert!(warm.viscosity.value() < cold.viscosity.value());
        // And the Reynolds number rises accordingly at fixed velocity.
        let ch = channel(200.0, 400.0, 22.0);
        let re_cold = reynolds(&cold, MetersPerSecond::new(1.6), &ch);
        let re_warm = reynolds(&warm, MetersPerSecond::new(1.6), &ch);
        prop_assert!(re_warm > re_cold);
    }
}
