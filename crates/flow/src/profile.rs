//! Velocity profiles in rectangular microchannels.
//!
//! The species-transport solver of `bright-flowcell` needs the streamwise
//! velocity as a function of the cross-channel coordinate. Two models are
//! provided:
//!
//! * [`plane_poiseuille`] — the parallel-plate closed form, adequate for
//!   wide, flat channels such as the Kjeang validation cell (aspect 0.075);
//! * [`DuctFlowSolution`] — a numerical solve of the Poisson problem
//!   `∇²u = −G/µ` on the duct cross-section (cell-centered finite volumes,
//!   conjugate gradient), which captures the side-wall drag in channels of
//!   moderate aspect ratio such as the 200 µm × 400 µm POWER7+ channels.
//!
//! The numerical solution doubles as a cross-check of the Shah–London
//! `f·Re` correlation: tests verify both agree to better than 1 %.

use crate::{FlowError, RectChannel};
use bright_num::solvers::{conjugate_gradient, IterOptions};
use bright_num::TripletMatrix;

/// Normalized plane-Poiseuille profile: `u/ū = 6·ξ·(1−ξ)` for the
/// fractional cross-channel position `ξ ∈ [0, 1]`. Zero outside the walls.
pub fn plane_poiseuille(xi: f64) -> f64 {
    if !(0.0..=1.0).contains(&xi) {
        return 0.0;
    }
    6.0 * xi * (1.0 - xi)
}

/// Numerical fully developed laminar flow in a rectangular duct.
///
/// Solves `∂²u/∂y² + ∂²u/∂z² = −1` (unit `G/µ`) with no-slip walls on a
/// cell-centered `ny × nz` grid; velocities scale linearly with the actual
/// pressure gradient, so normalized quantities (profiles, `f·Re`) are
/// exact for any operating point.
#[derive(Debug, Clone)]
pub struct DuctFlowSolution {
    ny: usize,
    nz: usize,
    /// u at cell centers, y-fastest ordering, for unit G/µ.
    u: Vec<f64>,
    mean_u: f64,
    aspect: f64,
    dh: f64,
}

impl DuctFlowSolution {
    /// Solves the duct flow on an `ny × nz` grid (`ny` across the width,
    /// `nz` across the height).
    ///
    /// # Errors
    ///
    /// * [`FlowError::InvalidGeometry`] if `ny` or `nz` < 2,
    /// * [`FlowError::Numerical`] if the CG solve fails.
    pub fn solve(channel: &RectChannel, ny: usize, nz: usize) -> Result<Self, FlowError> {
        if ny < 2 || nz < 2 {
            return Err(FlowError::InvalidGeometry(format!(
                "need at least 2x2 cells, got {ny}x{nz}"
            )));
        }
        let w = channel.width().value();
        let h = channel.height().value();
        let dy = w / ny as f64;
        let dz = h / nz as f64;
        let n = ny * nz;
        let idx = |iy: usize, iz: usize| iz * ny + iy;

        let mut t = TripletMatrix::with_capacity(n, n, 5 * n);
        let wy = 1.0 / (dy * dy);
        let wz = 1.0 / (dz * dz);
        for iz in 0..nz {
            for iy in 0..ny {
                let me = idx(iy, iz);
                let mut diag = 0.0;
                // y-direction neighbours / walls (no-slip: ghost value -u).
                if iy > 0 {
                    t.push(me, idx(iy - 1, iz), -wy).map_err(FlowError::from)?;
                    diag += wy;
                } else {
                    diag += 2.0 * wy;
                }
                if iy + 1 < ny {
                    t.push(me, idx(iy + 1, iz), -wy).map_err(FlowError::from)?;
                    diag += wy;
                } else {
                    diag += 2.0 * wy;
                }
                if iz > 0 {
                    t.push(me, idx(iy, iz - 1), -wz).map_err(FlowError::from)?;
                    diag += wz;
                } else {
                    diag += 2.0 * wz;
                }
                if iz + 1 < nz {
                    t.push(me, idx(iy, iz + 1), -wz).map_err(FlowError::from)?;
                    diag += wz;
                } else {
                    diag += 2.0 * wz;
                }
                t.push(me, me, diag).map_err(FlowError::from)?;
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let sol = conjugate_gradient(
            &a,
            &b,
            None,
            &IterOptions {
                tolerance: 1e-12,
                max_iterations: 20_000,
                preconditioner: bright_num::PrecondSpec::Jacobi,
                ..IterOptions::default()
            },
        )
        .map_err(FlowError::from)?;
        let mean_u = sol.x.iter().sum::<f64>() / n as f64;
        Ok(Self {
            ny,
            nz,
            u: sol.x,
            mean_u,
            aspect: channel.aspect_ratio(),
            dh: channel.hydraulic_diameter().value(),
        })
    }

    /// Grid resolution across the width.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Grid resolution across the height.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Normalized local velocity `u/ū` at cell `(iy, iz)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn normalized_at(&self, iy: usize, iz: usize) -> f64 {
        assert!(iy < self.ny && iz < self.nz, "index out of bounds");
        self.u[iz * self.ny + iy] / self.mean_u
    }

    /// Height-averaged normalized profile across the width:
    /// `ū(y_i)/ū_bulk` for `i ∈ [0, ny)`. The mean of the returned vector
    /// is 1 by construction.
    pub fn width_profile(&self) -> Vec<f64> {
        let mut prof = vec![0.0; self.ny];
        for iz in 0..self.nz {
            for (iy, p) in prof.iter_mut().enumerate() {
                *p += self.u[iz * self.ny + iy];
            }
        }
        let scale = 1.0 / (self.nz as f64 * self.mean_u);
        for p in &mut prof {
            *p *= scale;
        }
        prof
    }

    /// Numerical Darcy `f·Re` product implied by this solution:
    /// `f·Re = 2·D_h²·(G/µ)/ū` with unit `G/µ`.
    pub fn f_re_darcy(&self) -> f64 {
        2.0 * self.dh * self.dh / self.mean_u
    }

    /// Aspect ratio of the solved channel.
    #[inline]
    pub fn aspect_ratio(&self) -> f64 {
        self.aspect
    }

    /// Ratio of peak to mean velocity.
    pub fn peak_to_mean(&self) -> f64 {
        self.u.iter().copied().fold(0.0_f64, f64::max) / self.mean_u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laminar::f_re_darcy;
    use bright_units::Meters;

    fn channel(w_um: f64, h_um: f64) -> RectChannel {
        RectChannel::new(
            Meters::from_micrometers(w_um),
            Meters::from_micrometers(h_um),
            Meters::from_millimeters(10.0),
        )
        .unwrap()
    }

    #[test]
    fn plane_poiseuille_properties() {
        assert_eq!(plane_poiseuille(0.0), 0.0);
        assert_eq!(plane_poiseuille(1.0), 0.0);
        assert!((plane_poiseuille(0.5) - 1.5).abs() < 1e-12);
        assert_eq!(plane_poiseuille(-0.1), 0.0);
        assert_eq!(plane_poiseuille(1.1), 0.0);
        // Mean over [0,1] is 1.
        let n = 1000;
        let mean: f64 =
            (0..n).map(|i| plane_poiseuille((i as f64 + 0.5) / n as f64)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 1e-6);
    }

    #[test]
    fn numerical_f_re_matches_shah_london_square() {
        let sol = DuctFlowSolution::solve(&channel(200.0, 200.0), 48, 48).unwrap();
        let expected = f_re_darcy(1.0);
        let got = sol.f_re_darcy();
        assert!(
            ((got - expected) / expected).abs() < 0.01,
            "numerical {got} vs correlation {expected}"
        );
    }

    #[test]
    fn numerical_f_re_matches_shah_london_aspect_half() {
        // The Table II channel shape.
        let sol = DuctFlowSolution::solve(&channel(200.0, 400.0), 40, 80).unwrap();
        let expected = f_re_darcy(0.5);
        let got = sol.f_re_darcy();
        assert!(
            ((got - expected) / expected).abs() < 0.01,
            "numerical {got} vs correlation {expected}"
        );
    }

    #[test]
    fn width_profile_is_normalized_and_symmetric() {
        let sol = DuctFlowSolution::solve(&channel(200.0, 400.0), 40, 60).unwrap();
        let prof = sol.width_profile();
        let mean: f64 = prof.iter().sum::<f64>() / prof.len() as f64;
        assert!((mean - 1.0).abs() < 1e-10);
        for i in 0..prof.len() / 2 {
            let a = prof[i];
            let b = prof[prof.len() - 1 - i];
            assert!((a - b).abs() < 1e-8, "asymmetry at {i}: {a} vs {b}");
        }
        // Walls slow, center fast.
        assert!(prof[0] < prof[prof.len() / 2]);
    }

    #[test]
    fn wide_flat_channel_approaches_plane_poiseuille() {
        // Aspect 0.075 like the Kjeang cell: the z-averaged profile across
        // the *height* is what plane Poiseuille describes; across the
        // width it is nearly plug-like except near side walls. Check the
        // peak-to-mean of the full 2-D field approaches the parallel-plate
        // value 1.5 x (plug) = 1.5 within ~15%.
        let sol = DuctFlowSolution::solve(&channel(2000.0, 150.0), 100, 16).unwrap();
        let p2m = sol.peak_to_mean();
        assert!(p2m > 1.4 && p2m < 1.75, "peak/mean = {p2m}");
    }

    #[test]
    fn rejects_tiny_grids() {
        assert!(DuctFlowSolution::solve(&channel(100.0, 100.0), 1, 10).is_err());
    }
}
