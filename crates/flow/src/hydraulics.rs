//! Pressure drop and pumping power.
//!
//! Section III-B of the paper computes the pumping power from the
//! Darcy–Weisbach pressure-drop equation and Bernoulli's pumping-power
//! equation with a 50 % efficient pump: `P = Δp·V̇/η_p`, reporting 4.4 W
//! for the 676 ml/min POWER7+ operating point.

use crate::laminar::{f_re_darcy, reynolds};
use crate::{FlowError, FluidProperties, RectChannel};
use bright_units::{CubicMetersPerSecond, MetersPerSecond, Pascal, PascalPerMeter, Watt};

/// The paper's assumed pump efficiency (Sabry et al. 2011, ref \[6\]).
pub const DEFAULT_PUMP_EFFICIENCY: f64 = 0.5;

/// Fully developed laminar pressure gradient in a rectangular duct:
/// `dp/dx = (f·Re)_D · µ·v̄ / (2·D_h²)`.
pub fn laminar_pressure_gradient(
    props: &FluidProperties,
    velocity: MetersPerSecond,
    channel: &RectChannel,
) -> PascalPerMeter {
    let dh = channel.hydraulic_diameter().value();
    PascalPerMeter::new(
        f_re_darcy(channel.aspect_ratio()) * props.viscosity.value() * velocity.value()
            / (2.0 * dh * dh),
    )
}

/// Darcy–Weisbach pressure drop over the full channel length using the
/// laminar friction factor `f = (f·Re)_D / Re`.
///
/// Identical to `laminar_pressure_gradient × length` in the laminar
/// regime; written in the Darcy–Weisbach form the paper cites.
pub fn pressure_drop(
    props: &FluidProperties,
    velocity: MetersPerSecond,
    channel: &RectChannel,
) -> Pascal {
    let re = reynolds(props, velocity, channel);
    let f = f_re_darcy(channel.aspect_ratio()) / re;
    let dh = channel.hydraulic_diameter().value();
    Pascal::new(
        f * channel.length().value() / dh * 0.5
            * props.density.value()
            * velocity.value()
            * velocity.value(),
    )
}

/// Pumping (shaft) power `P = Δp·V̇/η_p` for a stream of `flow` pushed
/// against `dp` by a pump of efficiency `efficiency`.
///
/// # Errors
///
/// Returns [`FlowError::InvalidOperatingPoint`] if `efficiency` is outside
/// `(0, 1]` or the inputs are negative.
pub fn pumping_power(
    dp: Pascal,
    flow: CubicMetersPerSecond,
    efficiency: f64,
) -> Result<Watt, FlowError> {
    if !(efficiency > 0.0 && efficiency <= 1.0) {
        return Err(FlowError::InvalidOperatingPoint(format!(
            "pump efficiency must be in (0,1], got {efficiency}"
        )));
    }
    if dp.value() < 0.0 || flow.value() < 0.0 {
        return Err(FlowError::InvalidOperatingPoint(format!(
            "negative dp ({dp}) or flow ({flow})"
        )));
    }
    Ok(Watt::new(dp.value() * flow.value() / efficiency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::TemperatureDependentFluid;
    use bright_units::{Kelvin, Meters};

    fn electrolyte() -> FluidProperties {
        TemperatureDependentFluid::vanadium_electrolyte()
            .at(Kelvin::new(300.0))
            .unwrap()
    }

    fn table2_channel() -> RectChannel {
        RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap()
    }

    #[test]
    fn gradient_and_drop_are_consistent() {
        let p = electrolyte();
        let ch = table2_channel();
        let v = MetersPerSecond::new(1.6);
        let grad = laminar_pressure_gradient(&p, v, &ch);
        let dp = pressure_drop(&p, v, &ch);
        assert!(
            ((grad.value() * ch.length().value()) - dp.value()).abs() / dp.value() < 1e-12
        );
    }

    #[test]
    fn table2_pressure_gradient_magnitude() {
        // First-principles laminar gradient for the 200x400 um channel at
        // 1.6 m/s is ~0.18 bar/cm (the paper quotes 1.5 bar/cm citing
        // smaller cooling channels; see EXPERIMENTS.md).
        let grad =
            laminar_pressure_gradient(&electrolyte(), MetersPerSecond::new(1.6), &table2_channel());
        let bar_per_cm = grad.to_bar_per_centimeter();
        assert!(bar_per_cm > 0.1 && bar_per_cm < 0.3, "got {bar_per_cm}");
    }

    #[test]
    fn pumping_power_formula() {
        let p = pumping_power(
            Pascal::from_bar(1.95),
            bright_units::CubicMetersPerSecond::from_milliliters_per_minute(676.0),
            0.5,
        )
        .unwrap();
        // dp*V/eta = 1.95e5 * 1.1267e-5 / 0.5 = 4.39 W — the paper's 4.4 W.
        assert!((p.value() - 4.39).abs() < 0.05, "got {p}");
    }

    #[test]
    fn pumping_power_validates() {
        let q = bright_units::CubicMetersPerSecond::from_milliliters_per_minute(100.0);
        assert!(pumping_power(Pascal::from_bar(1.0), q, 0.0).is_err());
        assert!(pumping_power(Pascal::from_bar(1.0), q, 1.5).is_err());
        assert!(pumping_power(Pascal::from_bar(-1.0), q, 0.5).is_err());
    }

    #[test]
    fn pressure_drop_scales_linearly_with_velocity() {
        // Laminar flow: dp ∝ v.
        let p = electrolyte();
        let ch = table2_channel();
        let dp1 = pressure_drop(&p, MetersPerSecond::new(1.0), &ch).value();
        let dp2 = pressure_drop(&p, MetersPerSecond::new(2.0), &ch).value();
        assert!((dp2 / dp1 - 2.0).abs() < 1e-12);
    }
}
