//! Rectangular microchannel geometry.

use crate::FlowError;
use bright_units::{Meters, SquareMeters};

/// A straight rectangular microchannel.
///
/// Orientation convention used throughout the workspace: `width` is the
/// in-plane dimension separating the two electrodes of a flow cell (the
/// co-laminar interface is parallel to the side walls), `height` is the
/// etch depth, `length` is the streamwise dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectChannel {
    width: Meters,
    height: Meters,
    length: Meters,
}

impl RectChannel {
    /// Creates a channel from width × height × length.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidGeometry`] if any dimension is not
    /// strictly positive and finite.
    pub fn new(width: Meters, height: Meters, length: Meters) -> Result<Self, FlowError> {
        for (name, v) in [("width", width), ("height", height), ("length", length)] {
            if !(v.value() > 0.0 && v.is_finite()) {
                return Err(FlowError::InvalidGeometry(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        Ok(Self {
            width,
            height,
            length,
        })
    }

    /// Channel width (inter-electrode dimension).
    #[inline]
    pub fn width(&self) -> Meters {
        self.width
    }

    /// Channel height (etch depth).
    #[inline]
    pub fn height(&self) -> Meters {
        self.height
    }

    /// Channel length (streamwise).
    #[inline]
    pub fn length(&self) -> Meters {
        self.length
    }

    /// Cross-section area `w·h`.
    #[inline]
    pub fn cross_section(&self) -> SquareMeters {
        self.width * self.height
    }

    /// Wetted perimeter `2(w+h)`.
    #[inline]
    pub fn wetted_perimeter(&self) -> Meters {
        (self.width + self.height) * 2.0
    }

    /// Hydraulic diameter `D_h = 4A/P = 2wh/(w+h)`.
    #[inline]
    pub fn hydraulic_diameter(&self) -> Meters {
        Meters::new(4.0 * self.cross_section().value() / self.wetted_perimeter().value())
    }

    /// Aspect ratio `min(w,h)/max(w,h)` ∈ (0, 1].
    #[inline]
    pub fn aspect_ratio(&self) -> f64 {
        let w = self.width.value();
        let h = self.height.value();
        if w < h {
            w / h
        } else {
            h / w
        }
    }

    /// Area of one side wall (`length × height`) — the electrode area of a
    /// flow cell with wall electrodes.
    #[inline]
    pub fn side_wall_area(&self) -> SquareMeters {
        self.length * self.height
    }

    /// Area of the floor/ceiling (`length × width`).
    #[inline]
    pub fn floor_area(&self) -> SquareMeters {
        self.length * self.width
    }

    /// Total wall area in contact with the fluid.
    #[inline]
    pub fn wall_area(&self) -> SquareMeters {
        SquareMeters::new(self.wetted_perimeter().value() * self.length.value())
    }

    /// Internal volume.
    #[inline]
    pub fn volume(&self) -> bright_units::CubicMeters {
        self.cross_section() * self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2_channel() -> RectChannel {
        RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap()
    }

    #[test]
    fn table2_geometry() {
        let ch = table2_channel();
        assert!((ch.hydraulic_diameter().to_micrometers() - 800.0 / 3.0).abs() < 1e-9);
        assert!((ch.aspect_ratio() - 0.5).abs() < 1e-12);
        assert!((ch.cross_section().value() - 8e-8).abs() < 1e-20);
    }

    #[test]
    fn kjeang_geometry() {
        // Table I validation cell: 33 mm x 2 mm x 150 um.
        let ch = RectChannel::new(
            Meters::from_millimeters(2.0),
            Meters::from_micrometers(150.0),
            Meters::from_millimeters(33.0),
        )
        .unwrap();
        assert!((ch.aspect_ratio() - 0.075).abs() < 1e-12);
        // Dh = 2*2000*150/(2000+150) um = 279.07 um
        assert!((ch.hydraulic_diameter().to_micrometers() - 279.07).abs() < 0.01);
    }

    #[test]
    fn square_channel_dh_is_side() {
        let ch = RectChannel::new(
            Meters::from_micrometers(100.0),
            Meters::from_micrometers(100.0),
            Meters::from_millimeters(1.0),
        )
        .unwrap();
        assert!((ch.hydraulic_diameter().to_micrometers() - 100.0).abs() < 1e-9);
        assert_eq!(ch.aspect_ratio(), 1.0);
    }

    #[test]
    fn wall_areas_are_consistent() {
        let ch = table2_channel();
        let total = ch.wall_area().value();
        let parts =
            2.0 * ch.side_wall_area().value() + 2.0 * ch.floor_area().value();
        assert!((total - parts).abs() < 1e-15);
    }

    #[test]
    fn rejects_degenerate_dimensions() {
        assert!(RectChannel::new(
            Meters::new(0.0),
            Meters::new(1e-4),
            Meters::new(1e-2)
        )
        .is_err());
        assert!(RectChannel::new(
            Meters::new(1e-4),
            Meters::new(-1e-4),
            Meters::new(1e-2)
        )
        .is_err());
        assert!(RectChannel::new(
            Meters::new(1e-4),
            Meters::new(1e-4),
            Meters::new(f64::INFINITY)
        )
        .is_err());
    }
}
