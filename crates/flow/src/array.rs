//! Manifolded arrays of parallel microchannels.
//!
//! The POWER7+ case study lays 88 identical channels at 300 µm pitch over
//! the die (Table II); a common manifold splits the total flow equally
//! among them (identical channels ⇒ identical hydraulic resistance).

use crate::hydraulics::{pressure_drop, pumping_power};
use crate::{FlowError, FluidProperties, RectChannel};
use bright_units::{CubicMetersPerSecond, Meters, MetersPerSecond, Pascal, Watt};

/// An array of identical parallel rectangular channels fed by one manifold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelArray {
    channel: RectChannel,
    count: usize,
    pitch: Meters,
}

impl ChannelArray {
    /// Creates an array of `count` channels at center-to-center `pitch`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidGeometry`] if `count == 0` or the pitch
    /// is smaller than the channel width (overlapping channels).
    pub fn new(channel: RectChannel, count: usize, pitch: Meters) -> Result<Self, FlowError> {
        if count == 0 {
            return Err(FlowError::InvalidGeometry("zero channels".into()));
        }
        if pitch.value() < channel.width().value() {
            return Err(FlowError::InvalidGeometry(format!(
                "pitch {pitch} smaller than channel width {}",
                channel.width()
            )));
        }
        Ok(Self {
            channel,
            count,
            pitch,
        })
    }

    /// The repeated channel geometry.
    #[inline]
    pub fn channel(&self) -> &RectChannel {
        &self.channel
    }

    /// Number of channels.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Center-to-center pitch.
    #[inline]
    pub fn pitch(&self) -> Meters {
        self.pitch
    }

    /// Footprint width covered by the array (`count × pitch`).
    pub fn footprint_width(&self) -> Meters {
        self.pitch * self.count as f64
    }

    /// Per-channel flow for a given total flow (equal split).
    pub fn per_channel_flow(&self, total: CubicMetersPerSecond) -> CubicMetersPerSecond {
        total / self.count as f64
    }

    /// Mean velocity in each channel for a given total flow.
    pub fn mean_velocity(&self, total: CubicMetersPerSecond) -> MetersPerSecond {
        self.per_channel_flow(total)
            .mean_velocity(self.channel.cross_section())
    }

    /// Pressure drop across the array (equal to the single-channel drop,
    /// since the channels are in parallel).
    pub fn pressure_drop(
        &self,
        props: &FluidProperties,
        total: CubicMetersPerSecond,
    ) -> Pascal {
        pressure_drop(props, self.mean_velocity(total), &self.channel)
    }

    /// Pumping power to push `total` flow through the array with a pump of
    /// the given efficiency.
    ///
    /// # Errors
    ///
    /// As [`crate::hydraulics::pumping_power`].
    pub fn pumping_power(
        &self,
        props: &FluidProperties,
        total: CubicMetersPerSecond,
        efficiency: f64,
    ) -> Result<Watt, FlowError> {
        pumping_power(self.pressure_drop(props, total), total, efficiency)
    }

    /// Total heat-exchange wall area of all channels.
    pub fn total_wall_area(&self) -> bright_units::SquareMeters {
        bright_units::SquareMeters::new(self.channel.wall_area().value() * self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::TemperatureDependentFluid;
    use bright_units::Kelvin;

    fn power7_like_array() -> ChannelArray {
        let ch = RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap();
        ChannelArray::new(ch, 88, Meters::from_micrometers(300.0)).unwrap()
    }

    #[test]
    fn footprint_covers_the_die_width() {
        // 88 x 300 um = 26.4 mm ~ the 26.55 mm die dimension.
        let a = power7_like_array();
        assert!((a.footprint_width().to_millimeters() - 26.4).abs() < 1e-9);
    }

    #[test]
    fn table2_mean_velocity_near_paper_value() {
        let a = power7_like_array();
        let v = a.mean_velocity(CubicMetersPerSecond::from_milliliters_per_minute(676.0));
        // Paper quotes an average flow velocity of 1.4 m/s; plain Q/A gives
        // 1.6 m/s.
        assert!(v.value() > 1.3 && v.value() < 1.7, "v = {v}");
    }

    #[test]
    fn array_pumping_power_is_watt_scale() {
        let a = power7_like_array();
        let props = TemperatureDependentFluid::vanadium_electrolyte()
            .at(Kelvin::new(300.0))
            .unwrap();
        let total = CubicMetersPerSecond::from_milliliters_per_minute(676.0);
        let p = a.pumping_power(&props, total, 0.5).unwrap();
        // First-principles: ~1 W (paper's 4.4 W uses a larger quoted dp).
        assert!(p.value() > 0.2 && p.value() < 5.0, "P = {p}");
    }

    #[test]
    fn parallel_channels_share_flow() {
        let a = power7_like_array();
        let total = CubicMetersPerSecond::from_milliliters_per_minute(880.0);
        let per = a.per_channel_flow(total);
        assert!((per.to_milliliters_per_minute() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_overlapping_channels() {
        let ch = RectChannel::new(
            Meters::from_micrometers(400.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap();
        assert!(ChannelArray::new(ch, 10, Meters::from_micrometers(300.0)).is_err());
        assert!(ChannelArray::new(ch, 0, Meters::from_micrometers(500.0)).is_err());
    }
}
