//! Microfluidics for the `bright-silicon` workspace.
//!
//! Models the hydraulics of the electrolyte streams that simultaneously
//! feed the on-chip redox flow cells and cool the die:
//!
//! * [`channel`] — rectangular microchannel geometry (hydraulic diameter,
//!   aspect ratio),
//! * [`fluid`] — electrolyte property sets with temperature dependence
//!   (density, viscosity, thermal conductivity, heat capacity),
//! * [`laminar`] — laminar friction (Shah–London `f·Re`), Nusselt
//!   correlations, entrance lengths, dimensionless groups,
//! * [`profile`] — velocity profiles: plane-Poiseuille closed form and a
//!   numerical duct cross-section solve (validated against `f·Re`),
//! * [`hydraulics`] — Darcy–Weisbach pressure drop and pumping power
//!   (the paper's 4.4 W headline number),
//! * [`array`](mod@array) — manifolded channel arrays (the 88-channel POWER7+ layer).
//!
//! # Examples
//!
//! ```
//! use bright_flow::channel::RectChannel;
//! use bright_units::Meters;
//!
//! // Table II channel: 200 um x 400 um x 22 mm.
//! let ch = RectChannel::new(
//!     Meters::from_micrometers(200.0),
//!     Meters::from_micrometers(400.0),
//!     Meters::from_millimeters(22.0),
//! )?;
//! assert!((ch.hydraulic_diameter().to_micrometers() - 266.7).abs() < 0.1);
//! # Ok::<(), bright_flow::FlowError>(())
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod array;
pub mod channel;
pub mod fluid;
pub mod hydraulics;
pub mod laminar;
pub mod profile;

pub use array::ChannelArray;
pub use channel::RectChannel;
pub use fluid::FluidProperties;

use std::fmt;

/// Errors produced by the microfluidics models.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A geometric parameter is non-positive or non-finite.
    InvalidGeometry(String),
    /// A fluid property is non-physical.
    InvalidFluid(String),
    /// An operating condition (flow rate, temperature) is out of the model
    /// validity range.
    InvalidOperatingPoint(String),
    /// A numerical sub-solve failed.
    Numerical(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidGeometry(m) => write!(f, "invalid geometry: {m}"),
            FlowError::InvalidFluid(m) => write!(f, "invalid fluid: {m}"),
            FlowError::InvalidOperatingPoint(m) => write!(f, "invalid operating point: {m}"),
            FlowError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<bright_num::NumError> for FlowError {
    fn from(e: bright_num::NumError) -> Self {
        FlowError::Numerical(e.to_string())
    }
}
