//! Electrolyte/coolant property sets with temperature dependence.
//!
//! Tables I and II of the paper fix the reference properties of the
//! sulfuric-acid vanadium electrolyte (ρ = 1260 kg/m³, µ = 2.53 mPa·s,
//! k = 0.67 W/(m·K), ρc_p = 4.187 MJ/(m³·K)). The temperature laws follow
//! the non-isothermal VRB model of Al-Fetlawi et al. (2009) cited by the
//! paper: Vogel-type viscosity, linear density, linear conductivity.

use crate::FlowError;
use bright_units::{
    JoulePerCubicMeterKelvin, Kelvin, KilogramPerCubicMeter, PascalSecond, WattPerMeterKelvin,
};

/// Thermophysical properties of a liquid at a specific temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidProperties {
    /// Mass density ρ.
    pub density: KilogramPerCubicMeter,
    /// Dynamic viscosity µ.
    pub viscosity: PascalSecond,
    /// Thermal conductivity k.
    pub thermal_conductivity: WattPerMeterKelvin,
    /// Volumetric heat capacity ρ·c_p.
    pub volumetric_heat_capacity: JoulePerCubicMeterKelvin,
}

impl FluidProperties {
    /// Kinematic viscosity ν = µ/ρ in m²/s.
    #[inline]
    pub fn kinematic_viscosity(&self) -> f64 {
        self.viscosity.value() / self.density.value()
    }

    /// Prandtl number `Pr = µ·c_p/k = ν/α`.
    #[inline]
    pub fn prandtl(&self) -> f64 {
        let cp_mass = self.volumetric_heat_capacity.value() / self.density.value();
        self.viscosity.value() * cp_mass / self.thermal_conductivity.value()
    }

    /// Thermal diffusivity α = k/(ρ·c_p) in m²/s.
    #[inline]
    pub fn thermal_diffusivity(&self) -> f64 {
        self.thermal_conductivity.value() / self.volumetric_heat_capacity.value()
    }

    /// Validates that every property is strictly positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidFluid`] otherwise.
    pub fn validate(&self) -> Result<(), FlowError> {
        for (name, v) in [
            ("density", self.density.value()),
            ("viscosity", self.viscosity.value()),
            ("thermal conductivity", self.thermal_conductivity.value()),
            (
                "volumetric heat capacity",
                self.volumetric_heat_capacity.value(),
            ),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(FlowError::InvalidFluid(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// A temperature-dependent fluid model built around reference properties.
///
/// * viscosity: Vogel–Fulcher form `µ(T) = µ_ref·exp[B·(1/(T−T₀) −
///   1/(T_ref−T₀))]` — decreasing with temperature,
/// * density: linear thermal expansion `ρ(T) = ρ_ref·(1 − β·(T−T_ref))`,
/// * conductivity and heat capacity: linear in `T` with configurable
///   slopes (zero by default — the paper treats them as constant).
///
/// # Examples
///
/// ```
/// use bright_flow::fluid::TemperatureDependentFluid;
/// use bright_units::Kelvin;
///
/// let model = TemperatureDependentFluid::vanadium_electrolyte();
/// let cold = model.at(Kelvin::new(300.0)).unwrap();
/// let warm = model.at(Kelvin::new(320.0)).unwrap();
/// assert!(warm.viscosity < cold.viscosity);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemperatureDependentFluid {
    /// Properties at the reference temperature.
    pub reference: FluidProperties,
    /// Reference temperature.
    pub reference_temperature: Kelvin,
    /// Vogel `B` parameter (K). Zero disables viscosity variation.
    pub viscosity_vogel_b: f64,
    /// Vogel `T₀` parameter (K), must be well below operating range.
    pub viscosity_vogel_t0: f64,
    /// Volumetric thermal-expansion coefficient β (1/K).
    pub expansion_coefficient: f64,
    /// Relative slope of thermal conductivity (1/K).
    pub conductivity_slope: f64,
}

impl TemperatureDependentFluid {
    /// A fluid whose properties do not vary with temperature.
    pub fn constant(reference: FluidProperties, reference_temperature: Kelvin) -> Self {
        Self {
            reference,
            reference_temperature,
            viscosity_vogel_b: 0.0,
            viscosity_vogel_t0: 150.0,
            expansion_coefficient: 0.0,
            conductivity_slope: 0.0,
        }
    }

    /// The sulfuric-acid vanadium electrolyte of Tables I/II at a 300 K
    /// reference, with temperature coefficients from the non-isothermal
    /// VRB literature (viscosity roughly −2 %/K near room temperature,
    /// water-like expansion).
    pub fn vanadium_electrolyte() -> Self {
        Self {
            reference: FluidProperties {
                density: KilogramPerCubicMeter::new(1260.0),
                viscosity: PascalSecond::new(2.53e-3),
                thermal_conductivity: WattPerMeterKelvin::new(0.67),
                volumetric_heat_capacity: JoulePerCubicMeterKelvin::new(4.187e6),
            },
            reference_temperature: Kelvin::new(300.0),
            // Vogel fit reproducing ~-2%/K at 300 K: B = 0.02*(300-160)^2 ≈ 392.
            viscosity_vogel_b: 392.0,
            viscosity_vogel_t0: 160.0,
            expansion_coefficient: 4.0e-4,
            conductivity_slope: 1.5e-3,
        }
    }

    /// Evaluates the property set at temperature `t`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidOperatingPoint`] for non-physical
    /// temperatures (≤ 0 K, below the Vogel singularity, or non-finite)
    /// and [`FlowError::InvalidFluid`] if the evaluated set is
    /// non-physical (e.g. density driven negative by extreme expansion).
    pub fn at(&self, t: Kelvin) -> Result<FluidProperties, FlowError> {
        if !t.is_physical() {
            return Err(FlowError::InvalidOperatingPoint(format!(
                "non-physical temperature {t}"
            )));
        }
        if t.value() <= self.viscosity_vogel_t0 + 10.0 {
            return Err(FlowError::InvalidOperatingPoint(format!(
                "temperature {t} too close to Vogel singularity T0 = {} K",
                self.viscosity_vogel_t0
            )));
        }
        let t_ref = self.reference_temperature.value();
        let dt = t.value() - t_ref;

        let visc = self.reference.viscosity.value()
            * (self.viscosity_vogel_b
                * (1.0 / (t.value() - self.viscosity_vogel_t0)
                    - 1.0 / (t_ref - self.viscosity_vogel_t0)))
                .exp();
        let dens = self.reference.density.value() * (1.0 - self.expansion_coefficient * dt);
        let cond =
            self.reference.thermal_conductivity.value() * (1.0 + self.conductivity_slope * dt);
        let props = FluidProperties {
            density: KilogramPerCubicMeter::new(dens),
            viscosity: PascalSecond::new(visc),
            thermal_conductivity: WattPerMeterKelvin::new(cond),
            volumetric_heat_capacity: self.reference.volumetric_heat_capacity,
        };
        props.validate()?;
        Ok(props)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_paper_tables() {
        let f = TemperatureDependentFluid::vanadium_electrolyte();
        let p = f.at(Kelvin::new(300.0)).unwrap();
        assert!((p.density.value() - 1260.0).abs() < 1e-9);
        assert!((p.viscosity.value() - 2.53e-3).abs() < 1e-12);
        assert!((p.thermal_conductivity.value() - 0.67).abs() < 1e-12);
        assert!((p.volumetric_heat_capacity.value() - 4.187e6).abs() < 1.0);
    }

    #[test]
    fn viscosity_drops_about_two_percent_per_kelvin() {
        let f = TemperatureDependentFluid::vanadium_electrolyte();
        let p300 = f.at(Kelvin::new(300.0)).unwrap();
        let p301 = f.at(Kelvin::new(301.0)).unwrap();
        let rel = (p300.viscosity.value() - p301.viscosity.value()) / p300.viscosity.value();
        assert!(rel > 0.015 && rel < 0.025, "got {rel}");
    }

    #[test]
    fn prandtl_is_large_for_electrolyte() {
        // Water-like liquids have Pr ~ 5-15; the electrolyte is more
        // viscous, so larger.
        let f = TemperatureDependentFluid::vanadium_electrolyte();
        let pr = f.at(Kelvin::new(300.0)).unwrap().prandtl();
        assert!(pr > 8.0 && pr < 20.0, "got {pr}");
    }

    #[test]
    fn constant_model_ignores_temperature() {
        let base = TemperatureDependentFluid::vanadium_electrolyte().reference;
        let f = TemperatureDependentFluid::constant(base, Kelvin::new(300.0));
        let a = f.at(Kelvin::new(280.0)).unwrap();
        let b = f.at(Kelvin::new(340.0)).unwrap();
        assert_eq!(a.viscosity, b.viscosity);
        assert_eq!(a.density, b.density);
    }

    #[test]
    fn rejects_non_physical_temperatures() {
        let f = TemperatureDependentFluid::vanadium_electrolyte();
        assert!(f.at(Kelvin::new(-3.0)).is_err());
        assert!(f.at(Kelvin::new(0.0)).is_err());
        assert!(f.at(Kelvin::new(165.0)).is_err());
        assert!(f.at(Kelvin::new(f64::NAN)).is_err());
    }

    #[test]
    fn validate_catches_bad_properties() {
        let mut p = TemperatureDependentFluid::vanadium_electrolyte().reference;
        p.density = KilogramPerCubicMeter::new(-1.0);
        assert!(p.validate().is_err());
    }
}
