//! Laminar duct-flow correlations and dimensionless groups.
//!
//! The channel Reynolds numbers in the paper (Re ≈ 100–300 for the POWER7+
//! array, Re < 10 for the validation cell) are deep in the laminar regime,
//! where the friction factor and Nusselt number of rectangular ducts are
//! known functions of the aspect ratio alone (Shah & London 1978).

use crate::{FluidProperties, RectChannel};
use bright_units::MetersPerSecond;

/// Reynolds number `Re = ρ·v·D_h/µ`.
pub fn reynolds(
    props: &FluidProperties,
    velocity: MetersPerSecond,
    channel: &RectChannel,
) -> f64 {
    props.density.value() * velocity.value() * channel.hydraulic_diameter().value()
        / props.viscosity.value()
}

/// Mass-transfer Péclet number `Pe = v·D_h/D` with species diffusivity
/// `d` (m²/s).
pub fn peclet_mass(velocity: MetersPerSecond, channel: &RectChannel, diffusivity: f64) -> f64 {
    velocity.value() * channel.hydraulic_diameter().value() / diffusivity
}

/// Critical Reynolds number below which duct flow is laminar.
pub const RE_LAMINAR_LIMIT: f64 = 2300.0;

/// Returns `true` when the operating point is laminar — a precondition for
/// both the co-laminar flow-cell concept (no convective mixing of fuel and
/// oxidant) and for every correlation in this module.
pub fn is_laminar(
    props: &FluidProperties,
    velocity: MetersPerSecond,
    channel: &RectChannel,
) -> bool {
    reynolds(props, velocity, channel) < RE_LAMINAR_LIMIT
}

/// Fanning `f·Re` product for fully developed laminar flow in a
/// rectangular duct of aspect ratio `alpha` ∈ (0, 1] (Shah & London
/// polynomial, accurate to 0.05 %).
///
/// `alpha = 1` (square) gives 14.23; `alpha → 0` (parallel plates) gives
/// 24. Multiply by 4 for the Darcy convention.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
pub fn f_re_fanning(alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "aspect ratio must be in (0,1], got {alpha}"
    );
    24.0 * (1.0
        - 1.3553 * alpha
        + 1.9467 * alpha.powi(2)
        - 1.7012 * alpha.powi(3)
        + 0.9564 * alpha.powi(4)
        - 0.2537 * alpha.powi(5))
}

/// Darcy `f·Re` product (`= 4 ×` Fanning).
pub fn f_re_darcy(alpha: f64) -> f64 {
    4.0 * f_re_fanning(alpha)
}

/// Fully developed Nusselt number for a rectangular duct with the H1
/// boundary condition (axially constant heat flux, circumferentially
/// constant temperature — the standard choice for microchannel heat
/// sinks; Shah & London polynomial).
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
pub fn nusselt_h1(alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "aspect ratio must be in (0,1], got {alpha}"
    );
    8.235
        * (1.0 - 2.0421 * alpha + 3.0853 * alpha.powi(2) - 2.4765 * alpha.powi(3)
            + 1.0578 * alpha.powi(4)
            - 0.1861 * alpha.powi(5))
}

/// Heat-transfer coefficient `h = Nu·k/D_h` for fully developed laminar
/// flow (W/(m²·K)).
pub fn heat_transfer_coefficient(props: &FluidProperties, channel: &RectChannel) -> f64 {
    nusselt_h1(channel.aspect_ratio()) * props.thermal_conductivity.value()
        / channel.hydraulic_diameter().value()
}

/// Hydrodynamic entrance length `L_h ≈ 0.05·Re·D_h` (m).
pub fn hydrodynamic_entrance_length(
    props: &FluidProperties,
    velocity: MetersPerSecond,
    channel: &RectChannel,
) -> f64 {
    0.05 * reynolds(props, velocity, channel) * channel.hydraulic_diameter().value()
}

/// Thermal entrance length `L_t ≈ 0.05·Re·Pr·D_h` (m).
pub fn thermal_entrance_length(
    props: &FluidProperties,
    velocity: MetersPerSecond,
    channel: &RectChannel,
) -> f64 {
    hydrodynamic_entrance_length(props, velocity, channel) * props.prandtl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::TemperatureDependentFluid;
    use bright_units::{Kelvin, Meters};

    fn electrolyte() -> FluidProperties {
        TemperatureDependentFluid::vanadium_electrolyte()
            .at(Kelvin::new(300.0))
            .unwrap()
    }

    fn table2_channel() -> RectChannel {
        RectChannel::new(
            Meters::from_micrometers(200.0),
            Meters::from_micrometers(400.0),
            Meters::from_millimeters(22.0),
        )
        .unwrap()
    }

    #[test]
    fn shah_london_limits() {
        assert!((f_re_fanning(1.0) - 14.23).abs() < 0.03);
        // Parallel-plate limit.
        assert!((f_re_fanning(1e-9) - 24.0).abs() < 1e-6);
        // Aspect 0.5 tabulated value 15.548.
        assert!((f_re_fanning(0.5) - 15.548).abs() < 0.02);
        assert!((f_re_darcy(0.5) - 62.19).abs() < 0.1);
    }

    #[test]
    fn nusselt_tabulated_values() {
        // Shah & London H1 values: alpha=1 -> 3.61, alpha=0.5 -> 4.12,
        // alpha->0 -> 8.235.
        assert!((nusselt_h1(1.0) - 3.61).abs() < 0.05);
        assert!((nusselt_h1(0.5) - 4.12).abs() < 0.05);
        assert!((nusselt_h1(1e-9) - 8.235).abs() < 1e-6);
    }

    #[test]
    fn paper_operating_point_is_laminar() {
        let p = electrolyte();
        let ch = table2_channel();
        let re = reynolds(&p, MetersPerSecond::new(1.6), &ch);
        assert!(re > 150.0 && re < 300.0, "Re = {re}");
        assert!(is_laminar(&p, MetersPerSecond::new(1.6), &ch));
    }

    #[test]
    fn heat_transfer_coefficient_magnitude() {
        // h = Nu k / Dh ~ 4.12 * 0.67 / 2.67e-4 ~ 10^4 W/m^2K.
        let h = heat_transfer_coefficient(&electrolyte(), &table2_channel());
        assert!(h > 8_000.0 && h < 13_000.0, "h = {h}");
    }

    #[test]
    fn entrance_lengths_are_short_vs_channel() {
        let p = electrolyte();
        let ch = table2_channel();
        let lh = hydrodynamic_entrance_length(&p, MetersPerSecond::new(1.6), &ch);
        // ~0.05*213*2.67e-4 = 2.8 mm << 22 mm: fully developed treatment OK.
        assert!(lh < 0.2 * ch.length().value(), "Lh = {lh}");
    }

    #[test]
    fn peclet_is_huge_for_species() {
        // D ~ 1e-10 m2/s -> Pe ~ 1e6: axial diffusion negligible,
        // justifying the marching transport solver.
        let pe = peclet_mass(MetersPerSecond::new(1.6), &table2_channel(), 1.26e-10);
        assert!(pe > 1e6);
    }

    #[test]
    #[should_panic(expected = "aspect ratio")]
    fn f_re_rejects_bad_aspect() {
        let _ = f_re_fanning(1.5);
    }
}
