//! Physics invariants of the compact thermal model.

use bright_floorplan::{power7, PowerScenario};
use bright_mesh::Field2d;
use bright_thermal::presets;
use bright_thermal::stack::LayerSpec;
use bright_thermal::ThermalModel;
use bright_units::{CubicMetersPerSecond, Kelvin};

fn full_load_map(model: &ThermalModel) -> Field2d {
    PowerScenario::full_load()
        .rasterize(&power7::floorplan(), model.grid())
        .unwrap()
}

/// A coarse stack (fast enough for property-test case counts).
fn coarse_config(flow_ml_min: f64, inlet_k: f64) -> bright_thermal::stack::StackConfig {
    use bright_thermal::stack::{MicrochannelSpec, StackConfig};
    use bright_thermal::Material;
    use bright_units::Meters;
    let fluid = bright_flow::fluid::TemperatureDependentFluid::vanadium_electrolyte()
        .at(Kelvin::new(inlet_k))
        .unwrap();
    StackConfig {
        width: Meters::from_millimeters(8.0),
        height: Meters::from_millimeters(8.0),
        nx: 8,
        ny: 8,
        layers: vec![
            LayerSpec::Solid {
                name: "die".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(400.0),
                sublayers: 2,
            },
            LayerSpec::Microchannel {
                name: "mc".into(),
                spec: MicrochannelSpec {
                    channel_width: Meters::from_micrometers(200.0),
                    channel_height: Meters::from_micrometers(400.0),
                    channels_per_cell: 1,
                    fluid,
                    total_flow: CubicMetersPerSecond::from_milliliters_per_minute(flow_ml_min),
                    inlet_temperature: Kelvin::new(inlet_k),
                    wall_material: Material::silicon(),
                },
            },
            LayerSpec::Solid {
                name: "cap".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(300.0),
                sublayers: 1,
            },
        ],
        top_cooling: None,
    }
}

#[test]
fn linearity_doubling_power_doubles_the_rise() {
    // The network is linear: T(2P) - T_in = 2 (T(P) - T_in).
    let model = presets::power7_stack().unwrap();
    let p1 = full_load_map(&model);
    let mut p2 = p1.clone();
    p2.map_in_place(|v| 2.0 * v);
    let t1 = model.solve_steady(&p1).unwrap();
    let t2 = model.solve_steady(&p2).unwrap();
    let inlet = t1.inlet_temperature().value();
    let rise1 = t1.max_temperature().value() - inlet;
    let rise2 = t2.max_temperature().value() - inlet;
    assert!(
        (rise2 - 2.0 * rise1).abs() < 1e-4 * rise1,
        "rise {rise1} vs doubled {rise2}"
    );
}

#[test]
fn superposition_of_power_maps() {
    let model = presets::power7_stack().unwrap();
    let plan = power7::floorplan();
    let full = PowerScenario::full_load().rasterize(&plan, model.grid()).unwrap();
    let cache = PowerScenario::cache_only().rasterize(&plan, model.grid()).unwrap();
    // residual = full - cache (cores + logic + io only).
    let residual = Field2d::from_vec(
        model.grid().clone(),
        full.as_slice()
            .iter()
            .zip(cache.as_slice())
            .map(|(f, c)| f - c)
            .collect(),
    )
    .unwrap();

    let t_full = model.solve_steady(&full).unwrap();
    let t_cache = model.solve_steady(&cache).unwrap();
    let t_res = model.solve_steady(&residual).unwrap();
    let inlet = t_full.inlet_temperature().value();

    // Check superposition at a handful of probe cells on the junction map.
    for (ix, iy) in [(10, 10), (44, 22), (80, 40), (0, 0)] {
        let a = t_full.junction_map().get(ix, iy) - inlet;
        let b = (t_cache.junction_map().get(ix, iy) - inlet)
            + (t_res.junction_map().get(ix, iy) - inlet);
        assert!((a - b).abs() < 1e-5 * a.abs().max(1e-3), "cell ({ix},{iy}): {a} vs {b}");
    }
}

#[test]
fn every_cell_at_or_above_inlet_with_nonnegative_power() {
    let model = presets::power7_stack().unwrap();
    let sol = model.solve_steady(&full_load_map(&model)).unwrap();
    let inlet = sol.inlet_temperature().value();
    for lvl in 0..sol.level_count() {
        let min = sol.level_map(lvl).min();
        assert!(
            min >= inlet - 1e-6,
            "level {lvl} dips below inlet: {min} < {inlet}"
        );
    }
}

#[test]
fn warmer_inlet_shifts_the_whole_field() {
    // With temperature-independent properties, T(inlet + d) = T(inlet) + d.
    let cold_model = presets::power7_stack_at(
        CubicMetersPerSecond::from_milliliters_per_minute(676.0),
        Kelvin::new(300.0),
    )
    .unwrap();
    let warm_model = presets::power7_stack_at(
        CubicMetersPerSecond::from_milliliters_per_minute(676.0),
        Kelvin::new(310.0),
    )
    .unwrap();
    let p = full_load_map(&cold_model);
    let cold = cold_model.solve_steady(&p).unwrap();
    let warm = warm_model.solve_steady(&p).unwrap();
    let d_peak = warm.max_temperature().value() - cold.max_temperature().value();
    // Fluid properties change slightly with inlet temperature (viscosity,
    // conductivity), so allow a modest band around the exact +10 K shift.
    assert!((d_peak - 10.0).abs() < 1.0, "peak shift {d_peak}");
}

#[test]
fn thicker_die_spreads_better_but_insulates_more() {
    let base = presets::power7_stack().unwrap();
    let mut config = base.config().clone();
    if let LayerSpec::Solid { thickness, .. } = &mut config.layers[0] {
        *thickness = *thickness * 3.0;
    }
    let thick = ThermalModel::new(config).unwrap();
    let p = full_load_map(&base);
    let t_base = base.solve_steady(&p).unwrap().max_temperature().value();
    let t_thick = thick.solve_steady(&p).unwrap().max_temperature().value();
    // Tripling the die thickness adds vertical resistance; with strong
    // in-plane spreading the peak may drop slightly instead — accept
    // either, but the change must be bounded and the solve stable.
    assert!(
        (t_thick - t_base).abs() < 5.0,
        "base {t_base} vs thick {t_thick}"
    );
}

#[test]
fn flow_sweep_monotone_peak_temperature() {
    let p = full_load_map(&presets::power7_stack().unwrap());
    let mut last = f64::INFINITY;
    for flow in [100.0, 300.0, 676.0, 1500.0] {
        let model = presets::power7_stack_at(
            CubicMetersPerSecond::from_milliliters_per_minute(flow),
            Kelvin::new(300.0),
        )
        .unwrap();
        let peak = model.solve_steady(&p).unwrap().max_temperature().value();
        assert!(peak < last, "peak should fall with flow: {peak} at {flow}");
        last = peak;
    }
}

#[test]
fn multi_source_injection_superposes_and_validates() {
    let model = presets::power7_stack().unwrap();
    let p = full_load_map(&model);
    // Injecting at level 0 via both APIs must agree exactly.
    let a = model.solve_steady(&p).unwrap();
    let b = model.solve_steady_with_sources(&[(0, &p)]).unwrap();
    assert!((a.max_temperature().value() - b.max_temperature().value()).abs() < 1e-9);

    // Splitting the same power across two calls of half magnitude at the
    // same level superposes linearly.
    let mut half = p.clone();
    half.map_in_place(|v| 0.5 * v);
    let c = model
        .solve_steady_with_sources(&[(0, &half), (0, &half)])
        .unwrap();
    assert!((a.max_temperature().value() - c.max_temperature().value()).abs() < 1e-6);

    // Injecting into the cap (level 3, above the channels) heats less at
    // the junction than injecting at the junction itself.
    let top = model.solve_steady_with_sources(&[(3, &p)]).unwrap();
    assert!(top.junction_map().max() < a.junction_map().max());
    // Energy balance still exact.
    assert!(
        (top.absorbed_power().value() - p.integral()).abs() < 1e-4 * p.integral()
    );

    // Validation: fluid level and out-of-range level are rejected.
    assert!(model.solve_steady_with_sources(&[(2, &p)]).is_err());
    assert!(model.solve_steady_with_sources(&[(9, &p)]).is_err());
}

#[test]
fn conventional_heat_sink_baseline_behaves() {
    use bright_thermal::stack::{StackConfig, TopCooling};
    use bright_thermal::Material;
    use bright_units::Meters;

    let plan = power7::floorplan();
    let stack = |h: f64| {
        ThermalModel::new(StackConfig {
            width: plan.width(),
            height: plan.height(),
            nx: 44,
            ny: 22,
            layers: vec![LayerSpec::Solid {
                name: "die".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(700.0),
                sublayers: 2,
            }],
            top_cooling: Some(TopCooling {
                coefficient: h,
                ambient: Kelvin::new(298.15),
            }),
        })
        .unwrap()
    };
    let power = PowerScenario::full_load()
        .rasterize(&plan, stack(1500.0).grid())
        .unwrap();

    // Better sinks give cooler chips, approaching a 1-D bound:
    // dT >= q_peak/h locally.
    let mut last = f64::INFINITY;
    for h in [200.0, 1500.0, 20000.0] {
        let peak = stack(h).solve_steady(&power).unwrap().max_temperature().value();
        assert!(peak < last, "peak {peak} at h={h}");
        // Never below ambient.
        assert!(peak > 298.15);
        last = peak;
    }
    // A forced-air sink runs the 71 W chip far hotter than the
    // microfluidic layer does (the paper's motivation).
    let air = stack(1500.0).solve_steady(&power).unwrap().max_temperature().value();
    let micro = presets::power7_stack()
        .unwrap()
        .solve_steady(
            &PowerScenario::full_load()
                .rasterize(&plan, presets::power7_stack().unwrap().grid())
                .unwrap(),
        )
        .unwrap()
        .max_temperature()
        .value();
    assert!(air > micro + 20.0, "air {air} vs micro {micro}");

    // A stack with neither channels nor top cooling is rejected.
    let floating = StackConfig {
        width: plan.width(),
        height: plan.height(),
        nx: 10,
        ny: 10,
        layers: vec![LayerSpec::Solid {
            name: "die".into(),
            material: Material::silicon(),
            thickness: Meters::from_micrometers(700.0),
            sublayers: 1,
        }],
        top_cooling: None,
    };
    assert!(ThermalModel::new(floating).is_err());
}

mod refresh_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// `refresh_coefficients` must land on exactly the state a cold
        /// rebuild at the target point produces, from any starting
        /// point: same solution field (checked to solver tolerance) and
        /// no re-assembly.
        #[test]
        fn refresh_matches_cold_rebuild(
            flow0 in 40.0..700.0f64,
            flow1 in 40.0..700.0f64,
            inlet_k in 295.0..320.0f64,
        ) {
            let mut model = ThermalModel::new(coarse_config(flow0, inlet_k)).unwrap();
            let power = Field2d::constant(model.grid().clone(), 5e4); // 5 W/cm^2
            let mut session = model.session().unwrap();
            model.solve_steady_warm(&power, &mut session).unwrap();

            model
                .refresh_coefficients(
                    CubicMetersPerSecond::from_milliliters_per_minute(flow1),
                    Kelvin::new(inlet_k),
                )
                .unwrap();
            let refreshed = model.solve_steady_warm(&power, &mut session).unwrap();
            let cold = ThermalModel::new(coarse_config(flow1, inlet_k))
                .unwrap()
                .solve_steady(&power)
                .unwrap();

            for lvl in 0..refreshed.level_count() {
                for (a, b) in refreshed
                    .level_map(lvl)
                    .as_slice()
                    .iter()
                    .zip(cold.level_map(lvl).as_slice())
                {
                    prop_assert!((a - b).abs() < 1e-5, "level {lvl}: {a} vs {b}");
                }
            }
            prop_assert_eq!(model.assembly_count(), 1);
            prop_assert_eq!(model.refresh_count(), 1);
        }
    }
}

mod checkpoint_properties {
    use super::*;
    use bright_thermal::{Checkpoint, TransientSimulation};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// save -> (JSON round-trip) -> restore -> continue must be
        /// *bitwise* identical to the uninterrupted fixed-dt run, for
        /// any split point, step size and operating point: the solve
        /// warm-starts from the committed field either way, so the
        /// iterates coincide exactly.
        #[test]
        fn save_restore_continue_is_bitwise_identical(
            pre_steps in 1usize..8,
            post_steps in 1usize..8,
            dt_ms in 0.5..8.0f64,
            flow_ml_min in 40.0..700.0f64,
        ) {
            let dt = dt_ms * 1e-3;
            let model = ThermalModel::new(coarse_config(flow_ml_min, 300.0)).unwrap();
            let power = Field2d::constant(model.grid().clone(), 5e4); // 5 W/cm^2

            let mut full =
                TransientSimulation::new(model.clone(), &power, 300.0, dt).unwrap();
            full.run(pre_steps + post_steps).unwrap();

            let mut first =
                TransientSimulation::new(model.clone(), &power, 300.0, dt).unwrap();
            first.run(pre_steps).unwrap();
            let json = first.save_checkpoint().to_json_string();
            let cp = Checkpoint::from_json_str(&json).unwrap();

            let mut resumed = TransientSimulation::new(model, &power, 300.0, dt).unwrap();
            resumed.restore_checkpoint(&cp).unwrap();
            resumed.run(post_steps).unwrap();

            prop_assert_eq!(resumed.time().to_bits(), full.time().to_bits());
            for (a, b) in resumed.temperatures().iter().zip(full.temperatures()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "field diverged: {} vs {}", a, b);
            }
        }
    }
}

mod trbdf2_properties {
    use super::*;
    use bright_num::vec_ops::wrms_diff;
    use bright_thermal::{
        AdaptiveConfig, AdaptiveTransient, Checkpoint, CoefficientRamp, PowerTrace,
        TraceSegment, TransientSimulation,
    };
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// TR-BDF2 at its default (tight) tolerance must land within
        /// the controller's own error bound of a fine fixed-dt
        /// backward-Euler reference, for any operating point and load
        /// level: the embedded estimate really controls the global
        /// boundary-sampled error, not just the per-step one.
        #[test]
        fn trbdf2_tracks_fine_reference_within_bound(
            flow_ml_min in 40.0..700.0f64,
            power_w_cm2 in 1.0..12.0f64,
            duration_ms in 20.0..60.0f64,
        ) {
            let model =
                ThermalModel::new(coarse_config(flow_ml_min, 300.0)).unwrap();
            let power =
                Field2d::constant(model.grid().clone(), power_w_cm2 * 1e4);
            let duration = duration_ms * 1e-3;
            let cfg = AdaptiveConfig {
                dt_init: 1e-3,
                dt_min: 1e-4,
                dt_max: 0.02,
                ..AdaptiveConfig::default()
            };
            let trace = PowerTrace::new(vec![TraceSegment::constant(
                duration,
                power.clone(),
            )])
            .unwrap();
            let mut sim =
                AdaptiveTransient::new(model.clone(), trace, 300.0, cfg).unwrap();
            sim.run_to_end().unwrap();

            // Reference: fixed backward Euler at the controller's floor.
            let mut reference =
                TransientSimulation::new(model, &power, 300.0, cfg.dt_min).unwrap();
            let steps = (duration / cfg.dt_min).round() as usize;
            reference.run(steps).unwrap();

            let err = wrms_diff(
                sim.temperatures(),
                reference.temperatures(),
                cfg.abs_tol,
                cfg.rel_tol,
            );
            // wrms <= 1 is "within tolerance"; allow slack for the
            // reference's own first-order error at its floor step.
            prop_assert!(
                err < 2.0,
                "TR-BDF2 drifted {err} tolerance units from the fine reference"
            );
        }

        /// save -> (versioned JSON) -> restore -> continue is bitwise
        /// for the TR-BDF2 controller *mid-ramp*: the restore re-syncs
        /// the coefficients to where the ramp stood, so the remaining
        /// steps reproduce the uninterrupted run exactly — for any
        /// split point and ramp endpoints.
        #[test]
        fn mid_ramp_save_restore_continue_is_bitwise(
            split_steps in 2usize..6,
            flow_to_scale in 0.1..1.0f64,
            inlet_drift_k in 0.0..6.0f64,
        ) {
            let flow0 = 600.0;
            let model = ThermalModel::new(coarse_config(flow0, 300.0)).unwrap();
            let power = Field2d::constant(model.grid().clone(), 5e4);
            let ramp = CoefficientRamp {
                flow_start: CubicMetersPerSecond::from_milliliters_per_minute(flow0),
                flow_end: CubicMetersPerSecond::from_milliliters_per_minute(
                    flow0 * flow_to_scale,
                ),
                inlet_start: Kelvin::new(300.0),
                inlet_end: Kelvin::new(300.0 + inlet_drift_k),
            };
            let trace = PowerTrace::new(vec![
                TraceSegment::constant(0.03, power).with_ramp(ramp),
            ])
            .unwrap();
            let cfg = AdaptiveConfig {
                dt_init: 1e-3,
                dt_min: 2e-4,
                dt_max: 5e-3,
                ..AdaptiveConfig::default()
            };

            let mut full =
                AdaptiveTransient::new(model.clone(), trace.clone(), 300.0, cfg)
                    .unwrap();
            for _ in 0..split_steps {
                full.step().unwrap();
            }
            prop_assert!(!full.finished(), "split point must be mid-trace");
            let json = full.save_checkpoint().to_json_string();
            let cp = Checkpoint::from_json_str(&json).unwrap();
            full.run_to_end().unwrap();

            let mut resumed =
                AdaptiveTransient::new(model, trace, 300.0, cfg).unwrap();
            resumed.restore_checkpoint(&cp).unwrap();
            resumed.run_to_end().unwrap();

            prop_assert_eq!(resumed.time().to_bits(), full.time().to_bits());
            prop_assert_eq!(resumed.stats(), full.stats());
            for (a, b) in resumed.temperatures().iter().zip(full.temperatures()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "field diverged: {} vs {}", a, b);
            }
        }
    }
}
