//! Layer-stack description of the chip + cooling assembly.

use crate::{Material, ThermalError};
use bright_flow::FluidProperties;
use bright_units::{CubicMetersPerSecond, Kelvin, Meters};

/// A microchannel cooling layer: parallel channels etched across the die,
/// `channels_per_cell` channels per grid column (x index), flowing along
/// +y. Lumping several physical channels into one grid column
/// (`channels_per_cell > 1`) trades in-plane resolution for speed while
/// keeping the per-area convective physics identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicrochannelSpec {
    /// Channel width (x extent of one fluid slot) in metres.
    pub channel_width: Meters,
    /// Layer thickness = channel height in metres.
    pub channel_height: Meters,
    /// Physical channels lumped into each grid column (≥ 1).
    pub channels_per_cell: usize,
    /// Coolant properties (evaluated at the inlet temperature).
    pub fluid: FluidProperties,
    /// Total volumetric flow through all channels.
    pub total_flow: CubicMetersPerSecond,
    /// Coolant inlet temperature.
    pub inlet_temperature: Kelvin,
    /// Material of the channel walls (fins).
    pub wall_material: Material,
}

/// One layer of the stack.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// A solid layer, vertically subdivided into `sublayers` cells.
    Solid {
        /// Human-readable name (for reports).
        name: String,
        /// Material.
        material: Material,
        /// Total layer thickness (m).
        thickness: Meters,
        /// Number of vertical subdivisions (≥ 1).
        sublayers: usize,
    },
    /// A microchannel liquid-cooling layer.
    Microchannel {
        /// Human-readable name.
        name: String,
        /// Channel configuration.
        spec: MicrochannelSpec,
    },
}

impl LayerSpec {
    /// The layer's name.
    pub fn name(&self) -> &str {
        match self {
            LayerSpec::Solid { name, .. } | LayerSpec::Microchannel { name, .. } => name,
        }
    }

    /// Number of vertical cell levels this layer contributes.
    pub fn levels(&self) -> usize {
        match self {
            LayerSpec::Solid { sublayers, .. } => *sublayers,
            LayerSpec::Microchannel { .. } => 1,
        }
    }
}

/// Convective cooling applied to the top face of the stack — the
/// *conventional* heat-sink baseline the paper's approach replaces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopCooling {
    /// Effective heat-transfer coefficient of the sink referred to the
    /// die footprint (W/(m²·K)); ~20–50 for natural convection, 500–2000
    /// for forced-air heat sinks, 10⁴+ for cold plates.
    pub coefficient: f64,
    /// Coolant/ambient temperature.
    pub ambient: Kelvin,
}

impl TopCooling {
    /// A forced-air heat-sink baseline: 1500 W/(m²·K) to 25 °C air —
    /// representative of a good server heat sink referred to die area.
    pub fn forced_air() -> Self {
        Self {
            coefficient: 1500.0,
            ambient: Kelvin::new(298.15),
        }
    }
}

/// Full stack + discretization description.
///
/// The in-plane grid is shared by all layers: `nx` columns across the die
/// width (one microchannel per column), `ny` rows along the channel/flow
/// direction. Power is injected at the bottom level (the active silicon
/// of a flip-chip die with channels etched on top, Fig. 1/Fig. 5 of the
/// paper).
#[derive(Debug, Clone, PartialEq)]
pub struct StackConfig {
    /// Die width (x, across channels) in metres.
    pub width: Meters,
    /// Die height (y, along channels) in metres.
    pub height: Meters,
    /// Grid columns (= number of channels of microchannel layers).
    pub nx: usize,
    /// Grid rows along the flow direction.
    pub ny: usize,
    /// Layers bottom-up (index 0 = active silicon side).
    pub layers: Vec<LayerSpec>,
    /// Optional convective boundary on the top face (conventional
    /// heat-sink baseline). Stacks need either this or at least one
    /// microchannel layer to carry heat away.
    pub top_cooling: Option<TopCooling>,
}

impl StackConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidConfig`] with a description of the
    /// first violated rule.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if self.nx == 0 || self.ny == 0 {
            return Err(ThermalError::InvalidConfig(format!(
                "grid must be non-empty, got {}x{}",
                self.nx, self.ny
            )));
        }
        if !(self.width.value() > 0.0 && self.height.value() > 0.0) {
            return Err(ThermalError::InvalidConfig(format!(
                "die extent must be positive, got {} x {}",
                self.width, self.height
            )));
        }
        if self.layers.is_empty() {
            return Err(ThermalError::InvalidConfig("no layers".into()));
        }
        let pitch = self.width.value() / self.nx as f64;
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                LayerSpec::Solid {
                    name,
                    material,
                    thickness,
                    sublayers,
                } => {
                    if !material.is_physical() {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': non-physical material"
                        )));
                    }
                    if !(thickness.value() > 0.0 && thickness.is_finite()) {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': bad thickness {thickness}"
                        )));
                    }
                    if *sublayers == 0 {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': zero sublayers"
                        )));
                    }
                }
                LayerSpec::Microchannel { name, spec } => {
                    spec.fluid.validate().map_err(|e| {
                        ThermalError::InvalidConfig(format!("layer {i} '{name}': {e}"))
                    })?;
                    if spec.channels_per_cell == 0 {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': zero channels per cell"
                        )));
                    }
                    let occupied = spec.channel_width.value() * spec.channels_per_cell as f64;
                    if !(spec.channel_width.value() > 0.0 && occupied < pitch) {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': {} channels of width {} exceed the pitch \
                             {pitch:.3e}",
                            spec.channels_per_cell, spec.channel_width
                        )));
                    }
                    if !spec.channel_height.is_finite() || spec.channel_height.value() <= 0.0 {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': bad channel height {}",
                            spec.channel_height
                        )));
                    }
                    if !spec.total_flow.is_finite() || spec.total_flow.value() <= 0.0 {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': bad flow {}",
                            spec.total_flow
                        )));
                    }
                    if !spec.inlet_temperature.is_physical() {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': bad inlet temperature {}",
                            spec.inlet_temperature
                        )));
                    }
                    if !spec.wall_material.is_physical() {
                        return Err(ThermalError::InvalidConfig(format!(
                            "layer {i} '{name}': non-physical wall material"
                        )));
                    }
                }
            }
        }
        if let Some(tc) = &self.top_cooling {
            if !(tc.coefficient > 0.0 && tc.coefficient.is_finite()) {
                return Err(ThermalError::InvalidConfig(format!(
                    "top cooling coefficient must be positive, got {}",
                    tc.coefficient
                )));
            }
            if !tc.ambient.is_physical() {
                return Err(ThermalError::InvalidConfig(format!(
                    "non-physical top-cooling ambient {}",
                    tc.ambient
                )));
            }
            if matches!(self.layers.last(), Some(LayerSpec::Microchannel { .. })) {
                return Err(ThermalError::InvalidConfig(
                    "top cooling requires a solid top layer".into(),
                ));
            }
        }
        Ok(())
    }

    /// Total vertical cell levels of the stack.
    pub fn total_levels(&self) -> usize {
        self.layers.iter().map(LayerSpec::levels).sum()
    }

    /// Channel pitch implied by the grid (`width/nx`).
    pub fn pitch(&self) -> Meters {
        Meters::new(self.width.value() / self.nx as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bright_flow::fluid::TemperatureDependentFluid;

    fn channel_spec() -> MicrochannelSpec {
        MicrochannelSpec {
            channel_width: Meters::from_micrometers(200.0),
            channel_height: Meters::from_micrometers(400.0),
            channels_per_cell: 1,
            fluid: TemperatureDependentFluid::vanadium_electrolyte()
                .at(Kelvin::new(300.0))
                .unwrap(),
            total_flow: CubicMetersPerSecond::from_milliliters_per_minute(676.0),
            inlet_temperature: Kelvin::new(300.0),
            wall_material: Material::silicon(),
        }
    }

    fn config() -> StackConfig {
        StackConfig {
            width: Meters::from_millimeters(26.55),
            height: Meters::from_millimeters(21.34),
            nx: 88,
            ny: 44,
            layers: vec![
                LayerSpec::Solid {
                    name: "die".into(),
                    material: Material::silicon(),
                    thickness: Meters::from_micrometers(400.0),
                    sublayers: 2,
                },
                LayerSpec::Microchannel {
                    name: "channels".into(),
                    spec: channel_spec(),
                },
                LayerSpec::Solid {
                    name: "cap".into(),
                    material: Material::silicon(),
                    thickness: Meters::from_micrometers(300.0),
                    sublayers: 1,
                },
            ],
            top_cooling: None,
        }
    }

    #[test]
    fn valid_stack_passes() {
        let c = config();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_levels(), 4);
        assert!((c.pitch().to_micrometers() - 301.7).abs() < 0.1);
        assert_eq!(c.layers[1].name(), "channels");
        assert_eq!(c.layers[0].levels(), 2);
    }

    #[test]
    fn rejects_channel_wider_than_pitch() {
        let mut c = config();
        if let LayerSpec::Microchannel { spec, .. } = &mut c.layers[1] {
            spec.channel_width = Meters::from_micrometers(400.0);
        }
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut c = config();
        c.nx = 0;
        assert!(c.validate().is_err());

        let mut c = config();
        c.layers.clear();
        assert!(c.validate().is_err());

        let mut c = config();
        if let LayerSpec::Solid { sublayers, .. } = &mut c.layers[0] {
            *sublayers = 0;
        }
        assert!(c.validate().is_err());

        let mut c = config();
        if let LayerSpec::Microchannel { spec, .. } = &mut c.layers[1] {
            spec.inlet_temperature = Kelvin::new(-3.0);
        }
        assert!(c.validate().is_err());
    }
}
