//! Transient thermal simulation (backward Euler).
//!
//! 3D-ICE's hallmark is fast transient simulation of liquid-cooled
//! stacks. This module adds first-order implicit time stepping on top of
//! the steady assembly: `(C/Δt + G)·T⁺ = C/Δt·T + P`, which is
//! unconditionally stable — large steps simply approach the steady state.
//!
//! The stepper owns a [`SolverSession`] bound to the `C/Δt + G` system:
//! the pattern, Krylov scratch and preconditioner are set up once at
//! construction and every step is a warm-started, allocation-free solve.

use crate::model::{ThermalModel, ThermalSolution};
use crate::ThermalError;
use bright_mesh::Field2d;
use bright_num::{SolverSession, TripletMatrix};

/// A transient thermal simulation with a fixed power map and time step.
#[derive(Debug, Clone)]
pub struct TransientSimulation {
    model: ThermalModel,
    /// Session bound to `G + C/Δt` (pattern + scratch + preconditioner).
    session: SolverSession,
    rhs_steady: Vec<f64>,
    capacity_over_dt: Vec<f64>,
    temperatures: Vec<f64>,
    time: f64,
    dt: f64,
}

impl TransientSimulation {
    /// Creates a transient run from an initial uniform temperature.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] for a non-positive `dt`,
    /// * assembly errors as in [`ThermalModel::solve_steady`].
    pub fn new(
        model: ThermalModel,
        power: &Field2d,
        initial_temperature: f64,
        dt: f64,
    ) -> Result<Self, ThermalError> {
        if !(dt > 0.0 && dt.is_finite()) {
            return Err(ThermalError::InvalidConfig(format!(
                "time step must be positive, got {dt}"
            )));
        }
        if !(initial_temperature > 0.0 && initial_temperature.is_finite()) {
            return Err(ThermalError::InvalidConfig(format!(
                "initial temperature must be positive, got {initial_temperature}"
            )));
        }
        let (g, rhs_steady) = model.assemble_for_transient(power)?;
        let per_level_caps = model.levels_heat_capacity_volumes();
        let cells = model.grid().len();
        let n = g.rows();
        let mut capacity_over_dt = vec![0.0; n];
        for (lvl, cap) in per_level_caps.iter().enumerate() {
            for cell in 0..cells {
                capacity_over_dt[lvl * cells + cell] = cap / dt;
            }
        }
        // System matrix: G + C/dt on the diagonal.
        let mut t = TripletMatrix::with_capacity(n, n, g.nnz() + n);
        for (i, cap) in capacity_over_dt.iter().enumerate() {
            for (j, v) in g.row(i) {
                t.push(i, j, v).map_err(ThermalError::from)?;
            }
            t.push(i, i, *cap).map_err(ThermalError::from)?;
        }
        let mut session = SolverSession::new(ThermalModel::iter_options());
        session.bind_triplets(&t).map_err(ThermalError::from)?;
        Ok(Self {
            model,
            session,
            rhs_steady,
            capacity_over_dt,
            temperatures: vec![initial_temperature; n],
            time: 0.0,
            dt,
        })
    }

    /// Elapsed simulated time (s).
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The fixed time step (s).
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Advances one step and returns the new peak temperature (K).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Numerical`] if the solve fails.
    pub fn step(&mut self) -> Result<f64, ThermalError> {
        {
            let rhs = self.session.rhs_mut();
            rhs.extend_from_slice(&self.rhs_steady);
            for ((r, c), t) in rhs
                .iter_mut()
                .zip(&self.capacity_over_dt)
                .zip(&self.temperatures)
            {
                *r += c * t;
            }
        }
        // Warm-start from the current field; the session iterates in its
        // own buffer, so a failed solve leaves `temperatures` untouched.
        self.session.set_warm_start(&self.temperatures);
        self.session
            .solve_general_in_place()
            .map_err(ThermalError::from)?;
        self.temperatures.copy_from_slice(self.session.solution());
        self.time += self.dt;
        Ok(self
            .temperatures
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Advances `n` steps.
    ///
    /// # Errors
    ///
    /// As [`TransientSimulation::step`].
    pub fn run(&mut self, n: usize) -> Result<f64, ThermalError> {
        let mut peak = f64::NEG_INFINITY;
        for _ in 0..n {
            peak = self.step()?;
        }
        Ok(peak)
    }

    /// A snapshot of the current temperature field.
    ///
    /// # Errors
    ///
    /// Propagates field-construction errors (cannot happen for a
    /// well-formed simulation).
    pub fn snapshot(&self) -> Result<ThermalSolution, ThermalError> {
        self.model.wrap_solution(self.temperatures.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use bright_floorplan::{power7, PowerScenario};

    fn setup() -> (ThermalModel, Field2d) {
        let model = presets::power7_stack().unwrap();
        let power = PowerScenario::full_load()
            .rasterize(&power7::floorplan(), model.grid())
            .unwrap();
        (model, power)
    }

    #[test]
    fn transient_approaches_steady_state() {
        let (model, power) = setup();
        let steady = model.solve_steady(&power).unwrap().max_temperature().value();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 5e-3).unwrap();
        // Thermal time constants here are ~ms (thin layers, strong
        // convection): 400 x 5 ms = 2 s is deep in steady state.
        let peak = sim.run(400).unwrap();
        assert!(
            (peak - steady).abs() < 0.05,
            "transient {peak} vs steady {steady}"
        );
        assert!((sim.time() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_rises_monotonically_from_cold_start() {
        let (model, power) = setup();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 1e-3).unwrap();
        let mut last = 300.0;
        for _ in 0..5 {
            let peak = sim.step().unwrap();
            assert!(peak >= last - 1e-9, "peak fell: {peak} < {last}");
            last = peak;
        }
        assert!(last > 300.5, "should have warmed: {last}");
    }

    #[test]
    fn snapshot_matches_internal_state() {
        let (model, power) = setup();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 1e-3).unwrap();
        let p = sim.step().unwrap();
        let snap = sim.snapshot().unwrap();
        assert!((snap.max_temperature().value() - p).abs() < 1e-12);
    }

    #[test]
    fn validates_inputs() {
        let (model, power) = setup();
        assert!(TransientSimulation::new(model.clone(), &power, 300.0, 0.0).is_err());
        assert!(TransientSimulation::new(model, &power, -3.0, 1e-3).is_err());
    }
}
