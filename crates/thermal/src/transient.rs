//! Transient thermal simulation: implicit time stepping (fixed-Δt
//! backward Euler, adaptive TR-BDF2) over power traces with optional
//! flow/inlet coefficient ramps, and checkpoint/restore.
//!
//! 3D-ICE's hallmark is fast transient simulation of liquid-cooled
//! stacks. The semidiscrete system is `C·T' = b − G·T` (heat-capacity
//! diagonal `C`, conductance/advection operator `G`, forcing `b`);
//! every implicit stage here solves a shifted system `(G + C/d)·T =
//! rhs`, which is unconditionally stable — large steps simply approach
//! the steady state.
//!
//! Three layers build on each other:
//!
//! * [`TransientSimulation`] — the fixed-Δt backward-Euler stepper. It
//!   owns a [`SolverSession`] bound to `G + C/Δt`: pattern, Krylov
//!   scratch and preconditioner are set up once and every step is a
//!   warm-started, allocation-free solve.
//!   [`TransientSimulation::set_dt`] re-stamps the operator *values*
//!   through the cached pattern in O(nnz), and
//!   [`TransientSimulation::set_coefficients`] does the same for
//!   mid-trace flow/inlet changes (riding
//!   [`ThermalModel::refresh_coefficients`] — never a re-assembly).
//! * [`PowerTrace`] — a sequence of [`TraceSegment`]s, each a power map
//!   held over a span, optionally with a [`CoefficientRamp`] that
//!   sweeps the coolant flow rate and inlet temperature linearly across
//!   the span (the paper's throttling, dark-silicon and flow-controller
//!   experiments).
//! * [`AdaptiveTransient`] — the adaptive-Δt integrator. The default
//!   [`Controller::TrBdf2`] takes one composite TR-BDF2 step per
//!   attempt: a trapezoidal stage to `t + γh` (γ = 2 − √2) and a BDF2
//!   stage to `t + h`, both solving the *same* shifted operator
//!   `G + C/d` with `d = (1 − 1/√2)·h` — one O(nnz) re-stamp and two
//!   warm-started solves per attempt, with an embedded third-order
//!   error estimate that is free (divided differences of `C⁻¹(b−G·T)`
//!   at the three stage nodes — matvecs, not solves). The legacy
//!   [`Controller::StepDoubling`] (3 solves/attempt) is retained as a
//!   reference. Both controllers share the Δt window, the
//!   accept/reject/forced logic, and the halve-Δt-on-solver-failure
//!   path that composes with the session's recovery ladder. Steps
//!   never straddle a segment boundary.
//!
//! Both steppers can [`save_checkpoint`](AdaptiveTransient::save_checkpoint) /
//! [`restore_checkpoint`](AdaptiveTransient::restore_checkpoint): a
//! [`Checkpoint`] captures the temperature field (solid *and* fluid
//! cells), the session warm-start vector, the step size, the trace
//! cursor and the controller counters (format version 2; version-1
//! documents from earlier releases still load), and serializes to JSON
//! via `bright-jsonio`. Restoring and continuing is bitwise-identical
//! to an uninterrupted run — every stage re-seeds its warm start and
//! re-stamps its coefficients from committed state either way — which
//! is what lets trace segments shared between scenarios be integrated
//! once and branched, and live integrators be carried down
//! single-child prefix chains (see `bright_core::engine`).

use crate::model::{ThermalModel, ThermalSolution};
use crate::ThermalError;
use bright_jsonio::Value;
use bright_mesh::Field2d;
use bright_num::{vec_ops, CsrMatrix, SolverSession, TripletMatrix};
use bright_units::{CubicMetersPerSecond, Kelvin};

/// TR-BDF2 stage split: γ = 2 − √2, the classic choice that makes both
/// stages share one shifted operator.
const TRBDF2_GAMMA: f64 = 2.0 - std::f64::consts::SQRT_2;
/// Shared stage shift `d/h` for both stages: the trapezoidal stage
/// solves `(G + C/d₁)` with `d₁ = γh/2` and the BDF2 stage
/// `(G + C/d₂)` with `d₂ = h(1−γ)/(2−γ)`; at γ = 2 − √2 both equal
/// `(1 − 1/√2)·h`, so one O(nnz) re-stamp covers the whole step.
const TRBDF2_STAGE_SCALE: f64 = 1.0 - std::f64::consts::FRAC_1_SQRT_2;
/// BDF2-stage history weight of the trapezoidal stage value:
/// `1/(γ(1−γ)) = (3√2+4)/2`.
const TRBDF2_C_GAMMA: f64 = (3.0 * std::f64::consts::SQRT_2 + 4.0) / 2.0;
/// BDF2-stage history weight of the step-start value: `(1−γ)/γ = 1/√2`.
const TRBDF2_C_N: f64 = std::f64::consts::FRAC_1_SQRT_2;
/// Local-truncation-error coefficient of the embedded third-order
/// estimate: `(−3γ² + 4γ − 2)/(12(2−γ)) ≈ −0.0404`.
const TRBDF2_C_LTE: f64 = (-3.0 * TRBDF2_GAMMA * TRBDF2_GAMMA + 4.0 * TRBDF2_GAMMA - 2.0)
    / (12.0 * (2.0 - TRBDF2_GAMMA));

/// `(T⁺, fγ, f⁺)` from the two stage solves of one attempted step.
type TrBdf2Stages = (Vec<f64>, Vec<f64>, Vec<f64>);

/// A transient thermal simulation with a fixed power map and time step.
#[derive(Debug, Clone)]
pub struct TransientSimulation {
    model: ThermalModel,
    /// Session bound to `G + C/Δt` (pattern + scratch + preconditioner).
    session: SolverSession,
    /// The steady conductance operator `G` (coefficients fixed for the
    /// life of the simulation); kept so Δt changes re-stamp values only.
    conductance: CsrMatrix,
    /// Scratch triplet list for O(nnz) re-stamps on Δt changes.
    stamps: TripletMatrix,
    rhs_steady: Vec<f64>,
    /// Per-cell heat capacity `C` (J/K), Δt-independent.
    capacity: Vec<f64>,
    /// The stamped `C/Δt` diagonal.
    capacity_over_dt: Vec<f64>,
    temperatures: Vec<f64>,
    time: f64,
    dt: f64,
    /// Session coefficient epoch, bumped by every Δt or coefficient
    /// re-stamp.
    epoch: u64,
    steps: u64,
    /// The power map currently driving the forcing — kept so
    /// coefficient refreshes can rebuild `rhs_steady` (the inlet
    /// forcing depends on flow and inlet temperature).
    power: Field2d,
    /// The model's flow/inlet operating point at construction; `None`
    /// for conduction-only stacks (no rampable coefficients).
    baseline: Option<(CubicMetersPerSecond, Kelvin)>,
    /// The operating point currently stamped into the operator.
    current: Option<(CubicMetersPerSecond, Kelvin)>,
    /// Mid-trace coefficient re-stamps performed (each an O(nnz)
    /// refresh — the zero-re-assembly observable for ramp traces).
    coefficient_refreshes: u64,
}

fn validate_dt(dt: f64) -> Result<(), ThermalError> {
    if !(dt > 0.0 && dt.is_finite()) {
        return Err(ThermalError::InvalidConfig(format!(
            "time step must be positive, got {dt}"
        )));
    }
    Ok(())
}

impl TransientSimulation {
    /// Creates a transient run from an initial uniform temperature.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] for a non-positive `dt`,
    /// * assembly errors as in [`ThermalModel::solve_steady`].
    pub fn new(
        model: ThermalModel,
        power: &Field2d,
        initial_temperature: f64,
        dt: f64,
    ) -> Result<Self, ThermalError> {
        validate_dt(dt)?;
        if !(initial_temperature > 0.0 && initial_temperature.is_finite()) {
            return Err(ThermalError::InvalidConfig(format!(
                "initial temperature must be positive, got {initial_temperature}"
            )));
        }
        let (g, rhs_steady) = model.assemble_for_transient(power)?;
        let per_level_caps = model.levels_heat_capacity_volumes();
        let cells = model.grid().len();
        let n = g.rows();
        let mut capacity = vec![0.0; n];
        for (lvl, cap) in per_level_caps.iter().enumerate() {
            for cell in 0..cells {
                capacity[lvl * cells + cell] = *cap;
            }
        }
        let capacity_over_dt: Vec<f64> = capacity.iter().map(|c| c / dt).collect();
        // System matrix: G + C/dt on the diagonal. The stamp sequence
        // (row-major G entries, then the capacity diagonal) is fixed for
        // the simulation's lifetime so `set_dt` can refresh values
        // through the cached pattern.
        let mut t = TripletMatrix::with_capacity(n, n, g.nnz() + n);
        Self::stamp_system(&g, &capacity_over_dt, &mut t)?;
        let mut session = SolverSession::new(model.solve_options());
        session.bind_triplets(&t).map_err(ThermalError::from)?;
        let baseline = model.operating_point();
        Ok(Self {
            model,
            session,
            conductance: g,
            stamps: t,
            rhs_steady,
            capacity,
            capacity_over_dt,
            temperatures: vec![initial_temperature; n],
            time: 0.0,
            dt,
            epoch: 0,
            steps: 0,
            power: power.clone(),
            baseline,
            current: baseline,
            coefficient_refreshes: 0,
        })
    }

    /// Stamps `G + diag(C/Δt)` into `t` (cleared first). The sequence
    /// must stay identical between calls — the
    /// [`bright_num::CsrSymbolic::refresh_values`] contract.
    fn stamp_system(
        g: &CsrMatrix,
        capacity_over_dt: &[f64],
        t: &mut TripletMatrix,
    ) -> Result<(), ThermalError> {
        t.clear();
        for (i, cap) in capacity_over_dt.iter().enumerate() {
            for (j, v) in g.row(i) {
                t.push(i, j, v).map_err(ThermalError::from)?;
            }
            t.push(i, i, *cap).map_err(ThermalError::from)?;
        }
        Ok(())
    }

    /// Elapsed simulated time (s).
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The current time step (s).
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The thermal model being stepped.
    #[inline]
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// The current temperature field (all levels, row-major per level;
    /// fluid cells included).
    #[inline]
    pub fn temperatures(&self) -> &[f64] {
        &self.temperatures
    }

    /// Peak temperature of the current field (K).
    pub fn peak(&self) -> f64 {
        self.temperatures
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Accepted steps so far (committed solves; the adaptive controller
    /// performs additional trial solves — see
    /// [`AdaptiveTransient::stats`]).
    #[inline]
    pub fn step_count(&self) -> u64 {
        self.steps
    }

    /// Linear solves performed by the underlying session (includes
    /// uncommitted trial solves).
    #[inline]
    pub fn solve_count(&self) -> u64 {
        self.session.stats().solves
    }

    /// Replaces the kernel-backend selection of the internal solver
    /// session (see [`bright_num::KernelSpec`]). Safe mid-trace: with
    /// the default SSOR preconditioner, matvec and sweeps are bitwise
    /// identical across backends, so the integrated trajectory is
    /// unchanged (an IC(0) session would agree to roundoff instead —
    /// see [`bright_num::SolverSession::set_kernel`]).
    pub fn set_kernel(&mut self, kernel: bright_num::KernelSpec) {
        self.session.set_kernel(kernel);
    }

    /// Session statistics of the internal solver (solves, refreshes,
    /// kernel path, recovery counters) — engines surface
    /// [`bright_num::SessionStats::kernel_digest`] and the recovery
    /// counters in their reports.
    #[inline]
    pub fn session_stats(&self) -> bright_num::SessionStats {
        self.session.stats()
    }

    /// Replaces the failure-recovery policy of the internal solver
    /// session (see [`bright_num::RecoveryPolicy`]).
    pub fn set_recovery_policy(&mut self, policy: bright_num::RecoveryPolicy) {
        self.session.set_recovery_policy(policy);
    }

    /// The ladder rung that produced the session's most recent solve
    /// (see [`bright_num::RecoveryRung`]).
    #[inline]
    pub fn last_recovery(&self) -> bright_num::RecoveryRung {
        self.session.last_recovery()
    }

    /// Changes the time step, re-stamping the `C/Δt` diagonal of the
    /// implicit operator through the cached sparsity pattern — O(nnz),
    /// no symbolic work, no model rebuild. A no-op when `dt` is bitwise
    /// equal to the current step.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] for a non-positive `dt`,
    /// * [`ThermalError::Numerical`] if the refresh fails (cannot happen
    ///   for a well-formed simulation).
    pub fn set_dt(&mut self, dt: f64) -> Result<(), ThermalError> {
        validate_dt(dt)?;
        if dt == self.dt {
            return Ok(());
        }
        self.dt = dt;
        for (c, cap) in self.capacity_over_dt.iter_mut().zip(&self.capacity) {
            *c = cap / dt;
        }
        Self::stamp_system(&self.conductance, &self.capacity_over_dt, &mut self.stamps)?;
        self.epoch += 1;
        self.session
            .refresh_values(&self.stamps, self.epoch)
            .map_err(ThermalError::from)
    }

    /// Swaps the power map driving the simulation (the next trace
    /// segment). Only the steady forcing changes; the operator is
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`ThermalError::PowerMapMismatch`] if the map is not on the model
    /// grid.
    pub fn set_power(&mut self, power: &Field2d) -> Result<(), ThermalError> {
        self.model.transient_rhs(power, &mut self.rhs_steady)?;
        self.power = power.clone();
        Ok(())
    }

    /// Re-stamps the operator and forcing for a new coolant flow rate
    /// and inlet temperature mid-trace — the coefficient-transient hot
    /// path. Rides [`ThermalModel::refresh_coefficients`] (value
    /// refresh through the cached pattern), syncs the conductance copy,
    /// re-stamps `G + C/Δt`, refreshes the session and rebuilds the
    /// steady forcing: all O(nnz), never a re-assembly. A no-op when
    /// the operating point is unchanged.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] on a conduction-only stack
    ///   (no microchannel layer to ramp),
    /// * as [`ThermalModel::refresh_coefficients`] otherwise.
    pub fn set_coefficients(
        &mut self,
        flow: CubicMetersPerSecond,
        inlet: Kelvin,
    ) -> Result<(), ThermalError> {
        let Some(current) = self.current else {
            return Err(ThermalError::InvalidConfig(
                "coefficient ramp on a stack without microchannel layers".into(),
            ));
        };
        if flow == current.0 && inlet == current.1 {
            return Ok(());
        }
        self.model.refresh_coefficients(flow, inlet)?;
        self.model.copy_operator_values_into(&mut self.conductance)?;
        Self::stamp_system(&self.conductance, &self.capacity_over_dt, &mut self.stamps)?;
        self.epoch += 1;
        self.session
            .refresh_values(&self.stamps, self.epoch)
            .map_err(ThermalError::from)?;
        self.model.transient_rhs(&self.power, &mut self.rhs_steady)?;
        self.current = Some((flow, inlet));
        self.coefficient_refreshes += 1;
        Ok(())
    }

    /// Moves the operating point to where `ramp` sits at `frac` ∈
    /// [0, 1] of its segment, or back to the construction baseline for
    /// segments without a ramp. No-op when already there.
    fn sync_segment_coefficients(
        &mut self,
        ramp: Option<&CoefficientRamp>,
        frac: f64,
    ) -> Result<(), ThermalError> {
        match ramp {
            Some(r) => {
                let (flow, inlet) = r.at(frac);
                self.set_coefficients(flow, inlet)
            }
            None => match (self.baseline, self.current) {
                (Some(b), Some(c)) if b != c => self.set_coefficients(b.0, b.1),
                _ => Ok(()),
            },
        }
    }

    /// Mid-trace coefficient re-stamps performed so far (each an
    /// O(nnz) value refresh; the model's
    /// [`ThermalModel::assembly_count`] staying at 1 alongside a
    /// positive count here is the zero-re-assembly evidence for ramp
    /// traces).
    #[inline]
    pub fn coefficient_refreshes(&self) -> u64 {
        self.coefficient_refreshes
    }

    /// One backward-Euler solve from the field `from`, *without*
    /// committing time or temperatures; returns the new field. The
    /// associated-function shape keeps the borrows disjoint.
    fn solve_from(
        session: &mut SolverSession,
        rhs_steady: &[f64],
        capacity_over_dt: &[f64],
        from: &[f64],
    ) -> Result<Vec<f64>, ThermalError> {
        {
            let rhs = session.rhs_mut();
            rhs.extend_from_slice(rhs_steady);
            for ((r, c), t) in rhs.iter_mut().zip(capacity_over_dt).zip(from) {
                *r += c * t;
            }
        }
        // Warm-start from the departing field; the session iterates in
        // its own buffer, so a failed solve leaves the caller untouched.
        session.set_warm_start(from);
        session
            .solve_general_in_place()
            .map_err(ThermalError::from)?;
        Ok(session.solution().to_vec())
    }

    /// Advances one step and returns the new peak temperature (K).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::Numerical`] if the solve fails.
    pub fn step(&mut self) -> Result<f64, ThermalError> {
        {
            let rhs = self.session.rhs_mut();
            rhs.extend_from_slice(&self.rhs_steady);
            for ((r, c), t) in rhs
                .iter_mut()
                .zip(&self.capacity_over_dt)
                .zip(&self.temperatures)
            {
                *r += c * t;
            }
        }
        // Warm-start from the current field; the session iterates in its
        // own buffer, so a failed solve leaves `temperatures` untouched.
        self.session.set_warm_start(&self.temperatures);
        self.session
            .solve_general_in_place()
            .map_err(ThermalError::from)?;
        self.temperatures.copy_from_slice(self.session.solution());
        self.time += self.dt;
        self.steps += 1;
        Ok(self.peak())
    }

    /// Advances `n` steps.
    ///
    /// # Errors
    ///
    /// As [`TransientSimulation::step`].
    pub fn run(&mut self, n: usize) -> Result<f64, ThermalError> {
        let mut peak = f64::NEG_INFINITY;
        for _ in 0..n {
            peak = self.step()?;
        }
        Ok(peak)
    }

    /// Integrates a whole power trace at the fixed Δt, switching the
    /// forcing at each segment boundary (with one shortened remainder
    /// step per segment when the duration is not a Δt multiple). On
    /// segments carrying a [`CoefficientRamp`], every backward-Euler
    /// step re-stamps the coefficients at its *end* time (the implicit
    /// evaluation point); segments without a ramp restore the
    /// construction operating point. Returns the peak temperature
    /// observed *anywhere along the trace*.
    ///
    /// # Errors
    ///
    /// As [`TransientSimulation::step`] /
    /// [`TransientSimulation::set_power`] /
    /// [`TransientSimulation::set_coefficients`].
    pub fn run_trace(&mut self, trace: &PowerTrace) -> Result<f64, ThermalError> {
        let dt = self.dt;
        let mut peak = self.peak();
        for seg in trace.segments() {
            self.sync_segment_coefficients(seg.ramp.as_ref(), 0.0)?;
            self.set_power(&seg.power)?;
            // Integer step count (not repeated subtraction, whose
            // floating-point residue could produce a spurious
            // near-zero-length extra step on long segments).
            let full_steps = (seg.duration / dt).floor() as usize;
            self.set_dt(dt)?;
            for k in 0..full_steps {
                if seg.ramp.is_some() {
                    let frac = (k + 1) as f64 * dt / seg.duration;
                    self.sync_segment_coefficients(seg.ramp.as_ref(), frac)?;
                }
                peak = peak.max(self.step()?);
            }
            let remainder = seg.duration - full_steps as f64 * dt;
            if remainder > seg.duration * 1e-9 {
                if seg.ramp.is_some() {
                    self.sync_segment_coefficients(seg.ramp.as_ref(), 1.0)?;
                }
                self.set_dt(remainder)?;
                peak = peak.max(self.step()?);
                self.set_dt(dt)?;
            }
        }
        Ok(peak)
    }

    /// A snapshot of the current temperature field.
    ///
    /// # Errors
    ///
    /// Propagates field-construction errors (cannot happen for a
    /// well-formed simulation).
    pub fn snapshot(&self) -> Result<ThermalSolution, ThermalError> {
        self.model.wrap_solution(self.temperatures.clone())
    }

    /// Captures the integration state: temperature field (solid + fluid
    /// cells), session warm-start vector, step size and elapsed time.
    /// Restoring into a simulation of the same model and continuing is
    /// bitwise-identical to never having stopped.
    #[must_use]
    pub fn save_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            time: self.time,
            dt: self.dt,
            segment: 0,
            time_in_segment: 0.0,
            temperatures: self.temperatures.clone(),
            warm_start: self.session.solution().to_vec(),
            stats: AdaptiveStats::default(),
        }
    }

    /// Restores a [`Checkpoint`] saved from a simulation of the same
    /// model (same grid and layer stack). The trace-cursor fields are
    /// ignored — the plain stepper has no trace.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] on a field-size mismatch or a
    /// non-positive checkpointed Δt.
    pub fn restore_checkpoint(&mut self, cp: &Checkpoint) -> Result<(), ThermalError> {
        if cp.temperatures.len() != self.temperatures.len() {
            return Err(ThermalError::InvalidConfig(format!(
                "checkpoint field has {} cells but the model has {}",
                cp.temperatures.len(),
                self.temperatures.len()
            )));
        }
        self.set_dt(cp.dt)?;
        self.temperatures.copy_from_slice(&cp.temperatures);
        self.session.set_warm_start(&cp.warm_start);
        self.time = cp.time;
        Ok(())
    }
}

/// A linear coolant-coefficient sweep across one [`TraceSegment`]:
/// total flow rate and inlet temperature move from their `*_start`
/// values at the segment's start to `*_end` at its end. The steppers
/// re-stamp the operator at each stage's evaluation time via
/// [`TransientSimulation::set_coefficients`] — an O(nnz) value
/// refresh, never a re-assembly. Hold a coefficient *offset* constant
/// over a segment by setting start = end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoefficientRamp {
    /// Total flow rate at the segment start.
    pub flow_start: CubicMetersPerSecond,
    /// Total flow rate at the segment end.
    pub flow_end: CubicMetersPerSecond,
    /// Coolant inlet temperature at the segment start.
    pub inlet_start: Kelvin,
    /// Coolant inlet temperature at the segment end.
    pub inlet_end: Kelvin,
}

impl CoefficientRamp {
    /// The operating point at `frac` ∈ [0, 1] of the segment (clamped).
    #[must_use]
    pub fn at(&self, frac: f64) -> (CubicMetersPerSecond, Kelvin) {
        let w = frac.clamp(0.0, 1.0);
        (
            CubicMetersPerSecond::new(
                self.flow_start.value() + (self.flow_end.value() - self.flow_start.value()) * w,
            ),
            Kelvin::new(
                self.inlet_start.value() + (self.inlet_end.value() - self.inlet_start.value()) * w,
            ),
        )
    }

    /// Checks both endpoints: positive finite flows, physical inlet
    /// temperatures.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] naming the violated bound.
    pub fn validate(&self) -> Result<(), ThermalError> {
        for (name, flow) in [("start", self.flow_start), ("end", self.flow_end)] {
            if !(flow.value() > 0.0 && flow.value().is_finite()) {
                return Err(ThermalError::InvalidConfig(format!(
                    "ramp flow at segment {name} must be positive, got {}",
                    flow.value()
                )));
            }
        }
        for (name, inlet) in [("start", self.inlet_start), ("end", self.inlet_end)] {
            if !inlet.is_physical() {
                return Err(ThermalError::InvalidConfig(format!(
                    "ramp inlet temperature at segment {name} must be physical, got {}",
                    inlet.value()
                )));
            }
        }
        Ok(())
    }
}

/// One span of a [`PowerTrace`]: a power map held over a duration,
/// optionally with a [`CoefficientRamp`] sweeping the coolant
/// coefficients across it.
#[derive(Debug, Clone)]
pub struct TraceSegment {
    /// Span length (s).
    pub duration: f64,
    /// Power-density map (W/m² on the model grid) held over the span.
    pub power: Field2d,
    /// Optional flow/inlet sweep across the span; `None` holds the
    /// model's construction operating point.
    pub ramp: Option<CoefficientRamp>,
}

impl TraceSegment {
    /// A constant-coefficient segment (the pre-ramp shape: power only).
    #[must_use]
    pub fn constant(duration: f64, power: Field2d) -> Self {
        Self { duration, power, ramp: None }
    }

    /// Attaches a coefficient ramp to the segment.
    #[must_use]
    pub fn with_ramp(mut self, ramp: CoefficientRamp) -> Self {
        self.ramp = Some(ramp);
        self
    }
}

/// A power trace: the time-varying MPSoC load the transient steppers
/// integrate (throttling events, dark-silicon duty cycles), piecewise
/// constant in power with optional piecewise-linear coefficient ramps.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    segments: Vec<TraceSegment>,
}

impl PowerTrace {
    fn validate_segment(i: usize, seg: &TraceSegment) -> Result<(), ThermalError> {
        if !(seg.duration > 0.0 && seg.duration.is_finite()) {
            return Err(ThermalError::InvalidConfig(format!(
                "segment {i} duration must be positive, got {}",
                seg.duration
            )));
        }
        if let Some(ramp) = &seg.ramp {
            ramp.validate().map_err(|e| {
                ThermalError::InvalidConfig(format!("segment {i}: {e}"))
            })?;
        }
        Ok(())
    }

    /// Builds a trace from its segments.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] for an empty trace, a
    /// non-positive/non-finite segment duration, or an invalid ramp.
    pub fn new(segments: Vec<TraceSegment>) -> Result<Self, ThermalError> {
        if segments.is_empty() {
            return Err(ThermalError::InvalidConfig(
                "power trace needs at least one segment".into(),
            ));
        }
        for (i, seg) in segments.iter().enumerate() {
            Self::validate_segment(i, seg)?;
        }
        Ok(Self { segments })
    }

    /// Appends a segment — the trace-extension primitive behind
    /// integrator carry-down ([`AdaptiveTransient::push_segment`]).
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] as in [`PowerTrace::new`].
    pub fn push(&mut self, segment: TraceSegment) -> Result<(), ThermalError> {
        Self::validate_segment(self.segments.len(), &segment)?;
        self.segments.push(segment);
        Ok(())
    }

    /// The segments, in order.
    #[inline]
    pub fn segments(&self) -> &[TraceSegment] {
        &self.segments
    }

    /// Number of segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Always `false` (construction rejects empty traces); provided for
    /// clippy's `len_without_is_empty` convention.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total trace duration (s).
    pub fn total_duration(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }
}

/// The local-error estimator an [`AdaptiveTransient`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Controller {
    /// TR-BDF2 embedded pair (default): one trapezoidal + one BDF2
    /// stage per attempt on a *shared* shifted operator — 2 solves and
    /// one O(nnz) re-stamp per step size, with a free embedded
    /// third-order error estimate. L-stable, second-order accurate,
    /// and the only controller that supports [`CoefficientRamp`]s.
    #[default]
    TrBdf2,
    /// Legacy step-doubling backward Euler (one full + two half
    /// steps): 3 solves and 2 re-stamps per attempt, first-order.
    /// Retained as the reference the TR-BDF2 solve-count gate is
    /// measured against (`bench_pr10`).
    StepDoubling,
}

impl Controller {
    /// Stable identifier, used by the job-spec JSON codec.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::TrBdf2 => "tr-bdf2",
            Self::StepDoubling => "step-doubling",
        }
    }

    /// Parses [`Controller::as_str`] output.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "tr-bdf2" => Some(Self::TrBdf2),
            "step-doubling" => Some(Self::StepDoubling),
            _ => None,
        }
    }
}

/// Bounds and tolerances of the adaptive step-size controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Absolute component tolerance (K) of the weighted-RMS error test.
    pub abs_tol: f64,
    /// Relative component tolerance of the weighted-RMS error test.
    pub rel_tol: f64,
    /// First attempted step (s).
    pub dt_init: f64,
    /// Smallest permitted step (s); a step at the floor is accepted even
    /// when the error test fails (counted in
    /// [`AdaptiveStats::forced`]).
    pub dt_min: f64,
    /// Largest permitted step (s).
    pub dt_max: f64,
    /// Safety factor applied to the optimal-step estimate (< 1).
    pub safety: f64,
    /// Largest per-step growth factor.
    pub max_growth: f64,
    /// Smallest per-step shrink factor.
    pub min_shrink: f64,
    /// The local-error estimator (see [`Controller`]).
    pub controller: Controller,
}

impl Default for AdaptiveConfig {
    /// Tolerances sized for die-temperature tracking (0.05 K absolute),
    /// steps from 0.1 ms to 1 s, the classic 0.9 safety factor, and the
    /// TR-BDF2 embedded pair.
    fn default() -> Self {
        Self {
            abs_tol: 0.05,
            rel_tol: 0.0,
            dt_init: 1e-3,
            dt_min: 1e-4,
            dt_max: 1.0,
            safety: 0.9,
            max_growth: 4.0,
            min_shrink: 0.2,
            controller: Controller::TrBdf2,
        }
    }
}

impl AdaptiveConfig {
    /// Checks the controller bounds (positive tolerances, ordered Δt
    /// window containing `dt_init`, in-range safety/growth factors).
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] naming the violated bound.
    pub fn validate(&self) -> Result<(), ThermalError> {
        let bad = |m: String| Err(ThermalError::InvalidConfig(m));
        if !(self.abs_tol > 0.0 || self.rel_tol > 0.0) {
            return bad("adaptive stepping needs a positive tolerance".into());
        }
        if !(self.dt_min > 0.0 && self.dt_min.is_finite()) {
            return bad(format!("dt_min must be positive, got {}", self.dt_min));
        }
        if !(self.dt_max >= self.dt_min && self.dt_max.is_finite()) {
            return bad(format!(
                "dt_max ({}) must be >= dt_min ({})",
                self.dt_max, self.dt_min
            ));
        }
        if !(self.dt_init >= self.dt_min && self.dt_init <= self.dt_max) {
            return bad(format!(
                "dt_init ({}) must lie in [dt_min, dt_max] = [{}, {}]",
                self.dt_init, self.dt_min, self.dt_max
            ));
        }
        if !(self.safety > 0.0 && self.safety < 1.0) {
            return bad(format!("safety must be in (0,1), got {}", self.safety));
        }
        if !(self.max_growth > 1.0 && self.min_shrink > 0.0 && self.min_shrink < 1.0) {
            return bad(format!(
                "growth/shrink bounds out of range: max_growth {}, min_shrink {}",
                self.max_growth, self.min_shrink
            ));
        }
        Ok(())
    }
}

/// Counters of an [`AdaptiveTransient`] integration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Accepted (committed) steps.
    pub accepted: u64,
    /// Rejected trial steps (error test failed, Δt shrunk and retried).
    pub rejected: u64,
    /// Steps accepted at the Δt floor despite a failed error test.
    pub forced: u64,
    /// Linear solves the underlying session performed on the
    /// controller's behalf — counted as the *session's* successful
    /// solve-count delta around each attempt, so this reconciles
    /// exactly with [`bright_num::SessionStats::solves`] (rejected
    /// attempts and the completed solves of failed attempts included;
    /// no double counting of recovery-ladder retries, which the
    /// session reports separately as `recovery_retries`).
    pub solves: u64,
    /// Trial attempts whose *solver* failed (as opposed to the error
    /// test) and were retried at half the step size.
    pub solver_retries: u64,
}

/// The outcome of one accepted adaptive step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveStep {
    /// Simulated time after the step (s).
    pub time: f64,
    /// The committed step size (s).
    pub dt: f64,
    /// Peak temperature after the step (K).
    pub peak: f64,
    /// The weighted-RMS local-error estimate (≤ 1 unless forced).
    pub error: f64,
}

/// Adaptive-Δt integration of a [`PowerTrace`] over
/// [`TransientSimulation`]: the TR-BDF2 embedded pair by default, the
/// legacy step-doubling estimator on request. See the [module
/// docs](self) and [`Controller`].
#[derive(Debug, Clone)]
pub struct AdaptiveTransient {
    sim: TransientSimulation,
    cfg: AdaptiveConfig,
    trace: PowerTrace,
    /// Trace cursor: current segment and the time already integrated
    /// into it.
    segment: usize,
    time_in_segment: f64,
    /// The controller's proposal for the next step.
    dt_next: f64,
    stats: AdaptiveStats,
}

impl AdaptiveTransient {
    /// Creates an adaptive integration of `trace` from a uniform initial
    /// temperature.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] for invalid controller bounds,
    ///   or a [`CoefficientRamp`] under [`Controller::StepDoubling`]
    ///   (the legacy estimator predates coefficient transients),
    /// * as [`TransientSimulation::new`] otherwise (the first segment's
    ///   power map is validated here; later maps when their segment
    ///   starts).
    pub fn new(
        model: ThermalModel,
        trace: PowerTrace,
        initial_temperature: f64,
        cfg: AdaptiveConfig,
    ) -> Result<Self, ThermalError> {
        cfg.validate()?;
        if cfg.controller == Controller::StepDoubling
            && trace.segments().iter().any(|s| s.ramp.is_some())
        {
            return Err(ThermalError::InvalidConfig(
                "coefficient ramps require the TR-BDF2 controller".into(),
            ));
        }
        let sim = TransientSimulation::new(
            model,
            &trace.segments()[0].power,
            initial_temperature,
            cfg.dt_init,
        )?;
        Ok(Self {
            sim,
            cfg,
            trace,
            segment: 0,
            time_in_segment: 0.0,
            dt_next: cfg.dt_init,
            stats: AdaptiveStats::default(),
        })
    }

    /// Elapsed simulated time (s).
    #[inline]
    pub fn time(&self) -> f64 {
        self.sim.time()
    }

    /// Replaces the kernel-backend selection of the underlying
    /// simulation's solver session (see
    /// [`TransientSimulation::set_kernel`]).
    pub fn set_kernel(&mut self, kernel: bright_num::KernelSpec) {
        self.sim.set_kernel(kernel);
    }

    /// The current temperature field.
    #[inline]
    pub fn temperatures(&self) -> &[f64] {
        self.sim.temperatures()
    }

    /// Peak temperature of the current field (K).
    #[inline]
    pub fn peak(&self) -> f64 {
        self.sim.peak()
    }

    /// The controller configuration.
    #[inline]
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The trace being integrated.
    #[inline]
    pub fn trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Integration counters.
    #[inline]
    pub fn stats(&self) -> AdaptiveStats {
        self.stats
    }

    /// Session statistics of the underlying simulation's solver (see
    /// [`TransientSimulation::session_stats`]).
    #[inline]
    pub fn session_stats(&self) -> bright_num::SessionStats {
        self.sim.session_stats()
    }

    /// The thermal model being integrated.
    #[inline]
    pub fn model(&self) -> &ThermalModel {
        self.sim.model()
    }

    /// Mid-trace coefficient re-stamps performed so far (see
    /// [`TransientSimulation::coefficient_refreshes`]).
    #[inline]
    pub fn coefficient_refreshes(&self) -> u64 {
        self.sim.coefficient_refreshes()
    }

    /// Replaces the failure-recovery policy of the underlying solver
    /// session (see [`bright_num::RecoveryPolicy`]).
    pub fn set_recovery_policy(&mut self, policy: bright_num::RecoveryPolicy) {
        self.sim.set_recovery_policy(policy);
    }

    /// The Δt the controller will attempt next.
    #[inline]
    pub fn dt_next(&self) -> f64 {
        self.dt_next
    }

    /// The trace cursor: index of the segment currently being
    /// integrated (equals [`PowerTrace::len`] once finished).
    #[inline]
    pub fn segment_index(&self) -> usize {
        self.segment
    }

    /// True when the whole trace has been integrated.
    pub fn finished(&self) -> bool {
        self.segment >= self.trace.len()
    }

    /// A snapshot of the current temperature field.
    ///
    /// # Errors
    ///
    /// As [`TransientSimulation::snapshot`].
    pub fn snapshot(&self) -> Result<ThermalSolution, ThermalError> {
        self.sim.snapshot()
    }

    /// Takes one accepted adaptive step (retrying internally on error-
    /// test failures) and returns its outcome. Steps are clamped to the
    /// current segment's remaining span, so the power map only ever
    /// changes *between* steps; crossing a boundary loads the next
    /// segment's map and coefficient target.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] when the trace is exhausted
    ///   ([`AdaptiveTransient::finished`]),
    /// * solve errors as in [`TransientSimulation::step`].
    pub fn step(&mut self) -> Result<AdaptiveStep, ThermalError> {
        if self.finished() {
            return Err(ThermalError::InvalidConfig(
                "adaptive step past the end of the power trace".into(),
            ));
        }
        match self.cfg.controller {
            Controller::TrBdf2 => self.step_trbdf2(),
            Controller::StepDoubling => self.step_doubling(),
        }
    }

    /// Shared accept/reject bookkeeping: commits `y_new`, updates the
    /// cursor and the next-step proposal (error exponent `1/(p̂+1)`
    /// where `p̂` is the *estimate's* order), and crosses segment
    /// boundaries.
    fn commit_step(
        &mut self,
        h: f64,
        err: f64,
        err_exponent: f64,
        y_new: &[f64],
        seg_duration: f64,
    ) -> Result<AdaptiveStep, ThermalError> {
        if err > 1.0 {
            self.stats.forced += 1;
        }
        self.sim.temperatures.copy_from_slice(y_new);
        self.sim.time += h;
        self.sim.steps += 1;
        self.time_in_segment += h;
        self.stats.accepted += 1;
        let factor = if err > 1e-12 {
            (self.cfg.safety / err.powf(err_exponent))
                .clamp(self.cfg.min_shrink, self.cfg.max_growth)
        } else {
            self.cfg.max_growth
        };
        self.dt_next = (h * factor).clamp(self.cfg.dt_min, self.cfg.dt_max);
        if self.time_in_segment >= seg_duration * (1.0 - 1e-12) {
            self.advance_segment()?;
        }
        Ok(AdaptiveStep {
            time: self.sim.time(),
            dt: h,
            peak: self.sim.peak(),
            error: err,
        })
    }

    /// One TR-BDF2 step: trapezoidal stage to `t + γh`, BDF2 stage to
    /// `t + h`, both on the shared operator `G + C/((1−1/√2)h)`, plus
    /// the embedded error estimate from stage-node divided differences.
    /// 2 solves and (at a new `h`) one O(nnz) re-stamp per attempt; on
    /// ramped segments each stage re-stamps the coefficients at its own
    /// evaluation time.
    fn step_trbdf2(&mut self) -> Result<AdaptiveStep, ThermalError> {
        let seg = &self.trace.segments()[self.segment];
        let seg_duration = seg.duration;
        let ramp = seg.ramp;
        let remaining = seg_duration - self.time_in_segment;
        // Coefficients must sit at tⁿ for the explicit residual below
        // (they are left at the previous step's end time, which *is*
        // tⁿ except after a restore or segment entry mid-ramp).
        if ramp.is_some() {
            let frac = self.time_in_segment / seg_duration;
            self.sim.sync_segment_coefficients(ramp.as_ref(), frac)?;
        }
        // rⁿ = b(tⁿ) − G(tⁿ)·Tⁿ and fⁿ = rⁿ/C: one matvec, recomputed
        // from committed state each step so checkpoint restores are
        // bitwise transparent.
        let n = self.sim.temperatures.len();
        let mut r_n = vec![0.0; n];
        self.sim
            .conductance
            .matvec_into(&self.sim.temperatures, &mut r_n)
            .map_err(ThermalError::from)?;
        for (r, b) in r_n.iter_mut().zip(&self.sim.rhs_steady) {
            *r = b - *r;
        }
        let f_n: Vec<f64> = r_n
            .iter()
            .zip(&self.sim.capacity)
            .map(|(r, c)| r / c)
            .collect();

        let mut h = self
            .dt_next
            .clamp(self.cfg.dt_min, self.cfg.dt_max)
            .min(remaining);
        let mut est = vec![0.0; n];
        loop {
            let solves_before = self.sim.session_stats().solves;
            let attempt = self.trbdf2_stages(h, &r_n, ramp.as_ref(), seg_duration);
            self.stats.solves += self.sim.session_stats().solves - solves_before;
            let (y_plus, f_gamma, f_plus) = match attempt {
                Ok(t) => t,
                Err(e) => {
                    // A solver failure the session's own recovery
                    // ladder could not absorb: halve Δt and retry
                    // before aborting. Terminal at the Δt floor.
                    if h <= self.cfg.dt_min * (1.0 + 1e-9) {
                        return Err(e);
                    }
                    self.stats.solver_retries += 1;
                    h = (h / 2.0).max(self.cfg.dt_min).min(remaining);
                    continue;
                }
            };
            // Embedded estimate: LTE ≈ C·h³·y''' with y''' from the
            // second divided difference of f = C⁻¹(b − G·T) over the
            // stage nodes {tⁿ, tⁿ+γh, tⁿ+h}:
            //   est = 2·C·h·[ (f⁺−fγ)/(1−γ) − (fγ−fⁿ)/γ ].
            let c_hi = 2.0 * TRBDF2_C_LTE * h / (1.0 - TRBDF2_GAMMA);
            let c_lo = 2.0 * TRBDF2_C_LTE * h / TRBDF2_GAMMA;
            for i in 0..n {
                est[i] = c_hi * (f_plus[i] - f_gamma[i]) - c_lo * (f_gamma[i] - f_n[i]);
            }
            let err = vec_ops::wrms(&est, &y_plus, self.cfg.abs_tol, self.cfg.rel_tol);
            let at_floor = h <= self.cfg.dt_min * (1.0 + 1e-9);
            // The remainder of a segment may legitimately be shorter
            // than dt_min; accept it unconditionally too.
            let is_remainder = h >= remaining * (1.0 - 1e-12);
            if err <= 1.0 || at_floor || (is_remainder && remaining < self.cfg.dt_min) {
                // The estimate is third order: optimal step scales as
                // err^(-1/3).
                return self.commit_step(h, err, 1.0 / 3.0, &y_plus, seg_duration);
            }
            self.stats.rejected += 1;
            let factor = (self.cfg.safety / err.cbrt()).clamp(self.cfg.min_shrink, 1.0);
            h = (h * factor).max(self.cfg.dt_min).min(remaining);
        }
    }

    /// The two TR-BDF2 stage solves for one attempted step of size `h`,
    /// from the committed field. Returns `(T⁺, fγ, f⁺)` where
    /// `f = C⁻¹(b − G·T)` at the respective stage times; a failure
    /// leaves the committed field untouched.
    fn trbdf2_stages(
        &mut self,
        h: f64,
        r_n: &[f64],
        ramp: Option<&CoefficientRamp>,
        seg_duration: f64,
    ) -> Result<TrBdf2Stages, ThermalError> {
        let n = self.sim.temperatures.len();
        let d = h * TRBDF2_STAGE_SCALE;
        // Trapezoidal stage to tγ = tⁿ + γh:
        //   (G(tγ) + C/d)·Tγ = b(tγ) + rⁿ + (C/d)·Tⁿ.
        if let Some(r) = ramp {
            let frac = (self.time_in_segment + TRBDF2_GAMMA * h) / seg_duration;
            self.sim.sync_segment_coefficients(Some(r), frac)?;
        }
        self.sim.set_dt(d)?;
        {
            let rhs = self.sim.session.rhs_mut();
            rhs.extend_from_slice(&self.sim.rhs_steady);
            for (((q, r), c), t) in rhs
                .iter_mut()
                .zip(r_n)
                .zip(&self.sim.capacity_over_dt)
                .zip(&self.sim.temperatures)
            {
                *q += r + c * t;
            }
        }
        self.sim.session.set_warm_start(&self.sim.temperatures);
        self.sim
            .session
            .solve_general_in_place()
            .map_err(ThermalError::from)?;
        let y_gamma = self.sim.session.solution().to_vec();
        // fγ = (b(tγ) − G(tγ)·Tγ)/C — before the coefficients move on.
        let mut f_gamma = vec![0.0; n];
        self.sim
            .conductance
            .matvec_into(&y_gamma, &mut f_gamma)
            .map_err(ThermalError::from)?;
        for ((f, b), c) in f_gamma
            .iter_mut()
            .zip(&self.sim.rhs_steady)
            .zip(&self.sim.capacity)
        {
            *f = (b - *f) / c;
        }
        // BDF2 stage to t⁺ = tⁿ + h, same shift d:
        //   (G(t⁺) + C/d)·T⁺ = b(t⁺) + (C/h)(c_γ·Tγ − c_n·Tⁿ).
        if let Some(r) = ramp {
            let frac = (self.time_in_segment + h) / seg_duration;
            self.sim.sync_segment_coefficients(Some(r), frac)?;
        }
        {
            let rhs = self.sim.session.rhs_mut();
            rhs.extend_from_slice(&self.sim.rhs_steady);
            for (((q, c), yg), t) in rhs
                .iter_mut()
                .zip(&self.sim.capacity)
                .zip(&y_gamma)
                .zip(&self.sim.temperatures)
            {
                *q += c / h * (TRBDF2_C_GAMMA * yg - TRBDF2_C_N * t);
            }
        }
        self.sim.session.set_warm_start(&y_gamma);
        self.sim
            .session
            .solve_general_in_place()
            .map_err(ThermalError::from)?;
        let y_plus = self.sim.session.solution().to_vec();
        // f⁺ = (b(t⁺) − G(t⁺)·T⁺)/C.
        let mut f_plus = vec![0.0; n];
        self.sim
            .conductance
            .matvec_into(&y_plus, &mut f_plus)
            .map_err(ThermalError::from)?;
        for ((f, b), c) in f_plus
            .iter_mut()
            .zip(&self.sim.rhs_steady)
            .zip(&self.sim.capacity)
        {
            *f = (b - *f) / c;
        }
        Ok((y_plus, f_gamma, f_plus))
    }

    /// One legacy step-doubling step (see [`Controller::StepDoubling`]).
    fn step_doubling(&mut self) -> Result<AdaptiveStep, ThermalError> {
        let seg_duration = self.trace.segments()[self.segment].duration;
        let remaining = seg_duration - self.time_in_segment;
        let mut h = self
            .dt_next
            .clamp(self.cfg.dt_min, self.cfg.dt_max)
            .min(remaining);
        loop {
            let solves_before = self.sim.session_stats().solves;
            let attempt = self.trial_solves(h);
            self.stats.solves += self.sim.session_stats().solves - solves_before;
            let (y_big, y_fine) = match attempt {
                Ok(pair) => pair,
                Err(e) => {
                    // A solver failure mid-trace (one the session's own
                    // recovery ladder could not absorb): halve Δt and
                    // retry before aborting the trace. At the Δt floor
                    // the failure is terminal.
                    if h <= self.cfg.dt_min * (1.0 + 1e-9) {
                        return Err(e);
                    }
                    self.stats.solver_retries += 1;
                    h = (h / 2.0).max(self.cfg.dt_min).min(remaining);
                    continue;
                }
            };
            // The session's solution is y_fine (the last solve), so the
            // error test reads it in place against the coarse result.
            let err =
                self.sim
                    .session
                    .solution_wrms_diff(&y_big, self.cfg.abs_tol, self.cfg.rel_tol);
            let at_floor = h <= self.cfg.dt_min * (1.0 + 1e-9);
            let is_remainder = h >= remaining * (1.0 - 1e-12);
            if err <= 1.0 || at_floor || (is_remainder && remaining < self.cfg.dt_min) {
                // Backward Euler is order 1: the doubling estimate is
                // second order, optimal step scales as err^(-1/2).
                return self.commit_step(h, err, 0.5, &y_fine, seg_duration);
            }
            self.stats.rejected += 1;
            let factor = (self.cfg.safety / err.sqrt()).clamp(self.cfg.min_shrink, 1.0);
            h = (h * factor).max(self.cfg.dt_min).min(remaining);
        }
    }

    /// One step-doubling trial: a full step at `h` and two half steps
    /// at `h/2`, all started from the committed field. Returns the
    /// coarse and refined results; on success the session's solution
    /// holds the refined one (so the error test can read it in place).
    /// A failure leaves the committed field untouched.
    fn trial_solves(&mut self, h: f64) -> Result<(Vec<f64>, Vec<f64>), ThermalError> {
        self.sim.set_dt(h)?;
        let y_big = TransientSimulation::solve_from(
            &mut self.sim.session,
            &self.sim.rhs_steady,
            &self.sim.capacity_over_dt,
            &self.sim.temperatures,
        )?;
        self.sim.set_dt(h / 2.0)?;
        let y_half = TransientSimulation::solve_from(
            &mut self.sim.session,
            &self.sim.rhs_steady,
            &self.sim.capacity_over_dt,
            &self.sim.temperatures,
        )?;
        let y_fine = TransientSimulation::solve_from(
            &mut self.sim.session,
            &self.sim.rhs_steady,
            &self.sim.capacity_over_dt,
            &y_half,
        )?;
        Ok((y_big, y_fine))
    }

    fn advance_segment(&mut self) -> Result<(), ThermalError> {
        self.segment += 1;
        self.time_in_segment = 0.0;
        if let Some(seg) = self.trace.segments().get(self.segment) {
            self.sim.sync_segment_coefficients(seg.ramp.as_ref(), 0.0)?;
            self.sim.set_power(&seg.power)?;
        }
        Ok(())
    }

    /// Appends a segment to the trace, re-arming a finished integrator
    /// to continue into it — the carry-down primitive: the engine's
    /// prefix tree extends a *live* integrator along single-child
    /// chains instead of rebuilding one from a checkpoint. Continuing
    /// this way is bitwise-identical to a checkpoint round-trip (both
    /// paths re-stamp coefficients and re-seed warm starts from
    /// committed state).
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] as in [`PowerTrace::push`], or
    /// for a ramped segment under [`Controller::StepDoubling`].
    pub fn push_segment(&mut self, segment: TraceSegment) -> Result<(), ThermalError> {
        if self.cfg.controller == Controller::StepDoubling && segment.ramp.is_some() {
            return Err(ThermalError::InvalidConfig(
                "coefficient ramps require the TR-BDF2 controller".into(),
            ));
        }
        let was_finished = self.finished();
        self.trace.push(segment)?;
        if was_finished {
            // The cursor already points at the new segment (the last
            // accepted step advanced it past the old end); load its
            // power map and coefficient target exactly as
            // advance_segment would have.
            let seg = &self.trace.segments()[self.segment];
            self.sim.sync_segment_coefficients(seg.ramp.as_ref(), 0.0)?;
            self.sim.set_power(&seg.power)?;
        }
        Ok(())
    }

    /// Integrates the remaining trace to its end; returns the peak
    /// temperature observed anywhere along the way.
    ///
    /// # Errors
    ///
    /// As [`AdaptiveTransient::step`].
    pub fn run_to_end(&mut self) -> Result<f64, ThermalError> {
        let mut peak = self.sim.peak();
        while !self.finished() {
            peak = peak.max(self.step()?.peak);
        }
        Ok(peak)
    }

    /// Captures the integration state, including the trace cursor and
    /// the controller's next-step proposal. Restoring (into this
    /// integration, or any integration whose trace shares the segments
    /// up to the cursor) and continuing is bitwise-identical to never
    /// having stopped.
    #[must_use]
    pub fn save_checkpoint(&self) -> Checkpoint {
        Checkpoint {
            time: self.sim.time(),
            dt: self.dt_next,
            segment: self.segment,
            time_in_segment: self.time_in_segment,
            temperatures: self.sim.temperatures().to_vec(),
            warm_start: self.sim.session.solution().to_vec(),
            stats: self.stats,
        }
    }

    /// Restores a [`Checkpoint`] saved from an integration of the same
    /// model whose trace agrees with this one up to the checkpoint's
    /// cursor — the branch operation of segment-prefix sharing.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] on a field-size mismatch, a
    /// cursor outside this trace, or an invalid checkpointed Δt.
    pub fn restore_checkpoint(&mut self, cp: &Checkpoint) -> Result<(), ThermalError> {
        if cp.temperatures.len() != self.sim.temperatures.len() {
            return Err(ThermalError::InvalidConfig(format!(
                "checkpoint field has {} cells but the model has {}",
                cp.temperatures.len(),
                self.sim.temperatures.len()
            )));
        }
        if cp.segment > self.trace.len() {
            return Err(ThermalError::InvalidConfig(format!(
                "checkpoint cursor at segment {} but the trace has {}",
                cp.segment,
                self.trace.len()
            )));
        }
        validate_dt(cp.dt)?;
        self.sim.temperatures.copy_from_slice(&cp.temperatures);
        self.sim.session.set_warm_start(&cp.warm_start);
        self.sim.time = cp.time;
        self.dt_next = cp.dt;
        self.segment = cp.segment;
        self.time_in_segment = cp.time_in_segment;
        self.stats = cp.stats;
        if let Some(seg) = self.trace.segments().get(self.segment) {
            // Leave the coefficients exactly where the captured
            // integration had them (mid-ramp fraction included) so the
            // first step after the restore is bitwise-identical to the
            // uninterrupted run.
            let frac = if seg.duration > 0.0 {
                self.time_in_segment / seg.duration
            } else {
                0.0
            };
            self.sim.sync_segment_coefficients(seg.ramp.as_ref(), frac)?;
            self.sim.set_power(&seg.power)?;
        }
        Ok(())
    }
}

/// A serializable snapshot of a transient integration: temperature
/// field (solid and fluid cells), session warm-start vector, step size,
/// trace cursor and controller counters. Produced by
/// [`TransientSimulation::save_checkpoint`] /
/// [`AdaptiveTransient::save_checkpoint`]; survives a JSON round-trip
/// bit-exactly (`bright-jsonio` writes shortest-round-trip floats).
///
/// The on-disk format is versioned: version 2 (current) adds the
/// [`Checkpoint::stats`] counters; version-1 files (and files with no
/// `version` field, from before the field existed) still load, with
/// zeroed counters. Versions above 2 are rejected rather than
/// misinterpreted.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Simulated time at the capture (s).
    pub time: f64,
    /// Fixed Δt ([`TransientSimulation`]) or the controller's next-step
    /// proposal ([`AdaptiveTransient`]).
    pub dt: f64,
    /// Trace cursor: segment index (0 for the plain stepper).
    pub segment: usize,
    /// Trace cursor: time already integrated into the segment (s).
    pub time_in_segment: f64,
    /// The committed temperature field (K), all levels.
    pub temperatures: Vec<f64>,
    /// The session's solution/warm-start vector at capture — carried
    /// for inspection and forward compatibility. Bitwise continuation
    /// does not depend on it: every solve re-seeds its warm start from
    /// the committed [`Checkpoint::temperatures`].
    pub warm_start: Vec<f64>,
    /// Controller counters at capture, so a restored integration
    /// reports cumulative totals as if it had never stopped. Zero for
    /// fixed-step checkpoints and legacy (version-1) files.
    pub stats: AdaptiveStats,
}

impl Checkpoint {
    /// The checkpoint as a JSON value tree.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::object([
            ("version".into(), Value::Number(2.0)),
            ("time".into(), Value::Number(self.time)),
            ("dt".into(), Value::Number(self.dt)),
            ("segment".into(), Value::Number(self.segment as f64)),
            (
                "time_in_segment".into(),
                Value::Number(self.time_in_segment),
            ),
            (
                "temperatures".into(),
                Value::from_f64_slice(&self.temperatures),
            ),
            ("warm_start".into(), Value::from_f64_slice(&self.warm_start)),
            (
                "stats".into(),
                Value::object([
                    ("accepted".into(), Value::Number(self.stats.accepted as f64)),
                    ("rejected".into(), Value::Number(self.stats.rejected as f64)),
                    ("forced".into(), Value::Number(self.stats.forced as f64)),
                    ("solves".into(), Value::Number(self.stats.solves as f64)),
                    (
                        "solver_retries".into(),
                        Value::Number(self.stats.solver_retries as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Compact JSON text of the checkpoint.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().to_json_string()
    }

    /// Rebuilds a checkpoint from its JSON value tree.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] for missing or mistyped fields.
    pub fn from_json(v: &Value) -> Result<Self, ThermalError> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| ThermalError::InvalidConfig(format!("checkpoint field '{k}'")))
        };
        let vecf = |k: &str| {
            v.get(k)
                .and_then(Value::as_f64_vec)
                .ok_or_else(|| ThermalError::InvalidConfig(format!("checkpoint field '{k}'")))
        };
        // Files predating the version field read as version 1.
        let version = v.get("version").and_then(Value::as_usize).unwrap_or(1);
        let stats = match version {
            1 => AdaptiveStats::default(),
            2 => {
                let s = v.get("stats").ok_or_else(|| {
                    ThermalError::InvalidConfig("checkpoint field 'stats'".into())
                })?;
                let count = |k: &str| {
                    s.get(k).and_then(Value::as_usize).map(|c| c as u64).ok_or_else(|| {
                        ThermalError::InvalidConfig(format!("checkpoint field 'stats.{k}'"))
                    })
                };
                AdaptiveStats {
                    accepted: count("accepted")?,
                    rejected: count("rejected")?,
                    forced: count("forced")?,
                    solves: count("solves")?,
                    solver_retries: count("solver_retries")?,
                }
            }
            newer => {
                return Err(ThermalError::InvalidConfig(format!(
                    "checkpoint version {newer} is newer than this build understands (max 2)"
                )))
            }
        };
        Ok(Self {
            time: num("time")?,
            dt: num("dt")?,
            segment: v
                .get("segment")
                .and_then(Value::as_usize)
                .ok_or_else(|| ThermalError::InvalidConfig("checkpoint field 'segment'".into()))?,
            time_in_segment: num("time_in_segment")?,
            temperatures: vecf("temperatures")?,
            warm_start: vecf("warm_start")?,
            stats,
        })
    }

    /// Parses a checkpoint from JSON text.
    ///
    /// # Errors
    ///
    /// As [`Checkpoint::from_json`], plus parse errors.
    pub fn from_json_str(text: &str) -> Result<Self, ThermalError> {
        let v = Value::parse(text)
            .map_err(|e| ThermalError::InvalidConfig(format!("checkpoint JSON: {e}")))?;
        Self::from_json(&v)
    }

    /// Persists the checkpoint to `path` as a checksummed JSON envelope
    /// written with atomic temp-file + rename, so a kill at any instant
    /// leaves either the previous checkpoint or this one — never a
    /// prefix. Honours the [`bright_num::faults`] torn-write site: when
    /// it fires, a truncated record is persisted and the process "dies"
    /// (panics with [`bright_num::faults::TORN_PANIC_PAYLOAD`]), which
    /// is exactly the disk state [`Checkpoint::load_from_file`] must
    /// detect afterwards.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] wrapping the underlying I/O
    /// error.
    pub fn save_to_file(&self, path: &std::path::Path) -> Result<(), ThermalError> {
        let text = bright_jsonio::checksummed::to_string(&self.to_json());
        if let Some(prefix) = bright_num::faults::torn_write(text.len()) {
            let _ = bright_jsonio::checksummed::write_atomic(path, &text[..prefix]);
            bright_num::faults::torn_write_panic();
        }
        bright_jsonio::checksummed::write_atomic(path, &text).map_err(|e| {
            ThermalError::InvalidConfig(format!("checkpoint write {}: {e}", path.display()))
        })
    }

    /// Loads a checkpoint persisted by [`Checkpoint::save_to_file`],
    /// verifying the record checksum.
    ///
    /// # Errors
    ///
    /// [`ThermalError::InvalidConfig`] when the file is missing,
    /// truncated, corrupted (checksum mismatch) or structurally
    /// invalid. Callers use the error as a fall-back-to-cold-re-run
    /// signal, never as a reason to fail the job.
    pub fn load_from_file(path: &std::path::Path) -> Result<Self, ThermalError> {
        let payload = bright_jsonio::checksummed::read_verified(path).map_err(|e| {
            ThermalError::InvalidConfig(format!("checkpoint {}: {e}", path.display()))
        })?;
        Self::from_json(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use bright_floorplan::{power7, PowerScenario};
    use bright_num::vec_ops::wrms_diff;

    fn setup() -> (ThermalModel, Field2d) {
        let model = presets::power7_stack().unwrap();
        let power = PowerScenario::full_load()
            .rasterize(&power7::floorplan(), model.grid())
            .unwrap();
        (model, power)
    }

    #[test]
    fn transient_approaches_steady_state() {
        let (model, power) = setup();
        let steady = model.solve_steady(&power).unwrap().max_temperature().value();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 5e-3).unwrap();
        // Thermal time constants here are ~ms (thin layers, strong
        // convection): 400 x 5 ms = 2 s is deep in steady state.
        let peak = sim.run(400).unwrap();
        assert!(
            (peak - steady).abs() < 0.05,
            "transient {peak} vs steady {steady}"
        );
        assert!((sim.time() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_rises_monotonically_from_cold_start() {
        let (model, power) = setup();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 1e-3).unwrap();
        let mut last = 300.0;
        for _ in 0..5 {
            let peak = sim.step().unwrap();
            assert!(peak >= last - 1e-9, "peak fell: {peak} < {last}");
            last = peak;
        }
        assert!(last > 300.5, "should have warmed: {last}");
    }

    #[test]
    fn snapshot_matches_internal_state() {
        let (model, power) = setup();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 1e-3).unwrap();
        let p = sim.step().unwrap();
        let snap = sim.snapshot().unwrap();
        assert!((snap.max_temperature().value() - p).abs() < 1e-12);
    }

    #[test]
    fn validates_inputs() {
        let (model, power) = setup();
        assert!(TransientSimulation::new(model.clone(), &power, 300.0, 0.0).is_err());
        assert!(TransientSimulation::new(model, &power, -3.0, 1e-3).is_err());
    }

    #[test]
    fn set_dt_restamp_matches_fresh_construction() {
        // Deterministic bitwise reference: force injection off so an
        // env-steered BRIGHT_FAULTS sweep cannot desync the two
        // sessions' scripted fault schedules.
        bright_num::faults::with_scope(None, || {
            // A simulation re-stamped from 1 ms to 4 ms must take *bitwise*
            // the same step as one constructed at 4 ms: same operator values
            // through the same pattern, same warm start, same iteration.
            let (model, power) = setup();
            let mut restamped =
                TransientSimulation::new(model.clone(), &power, 300.0, 1e-3).unwrap();
            restamped.set_dt(4e-3).unwrap();
            let mut fresh = TransientSimulation::new(model, &power, 300.0, 4e-3).unwrap();
            let a = restamped.step().unwrap();
            let b = fresh.step().unwrap();
            assert_eq!(a, b, "restamped vs fresh peak");
            assert_eq!(restamped.temperatures(), fresh.temperatures());
            // And the restamp was a value refresh, not a rebind.
            assert_eq!(restamped.session.stats().binds, 1);
            assert_eq!(restamped.session.stats().refreshes, 1);
        });
    }

    #[test]
    fn set_dt_is_noop_for_equal_step_and_rejects_invalid() {
        let (model, power) = setup();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 1e-3).unwrap();
        sim.set_dt(1e-3).unwrap();
        assert_eq!(sim.session.stats().refreshes, 0, "equal dt must be free");
        assert!(sim.set_dt(0.0).is_err());
        assert!(sim.set_dt(f64::NAN).is_err());
    }

    #[test]
    fn set_power_redirects_the_forcing() {
        let (model, power) = setup();
        let zero = Field2d::zeros(model.grid().clone());
        let mut sim = TransientSimulation::new(model, &power, 300.0, 5e-3).unwrap();
        sim.run(40).unwrap();
        let hot = sim.peak();
        assert!(hot > 301.0);
        // Cut the power: the die must cool back toward the inlet.
        sim.set_power(&zero).unwrap();
        sim.run(200).unwrap();
        assert!(sim.peak() < hot - 1.0, "did not cool: {} vs {hot}", sim.peak());
    }

    #[test]
    fn adaptive_tracks_step_trace_within_tolerance() {
        // Step trace: full load for 50 ms, then power off for 150 ms.
        // The adaptive run must match a fine fixed-dt reference at the
        // trace end within (a small multiple of) its tolerance, using
        // far fewer solves than the reference.
        let (model, power) = setup();
        let zero = Field2d::zeros(model.grid().clone());
        let trace = PowerTrace::new(vec![
            TraceSegment::constant(0.05, power.clone()),
            TraceSegment::constant(0.15, zero),
        ])
        .unwrap();

        let cfg = AdaptiveConfig {
            abs_tol: 0.02,
            dt_init: 5e-4,
            dt_min: 1e-4,
            dt_max: 0.05,
            ..AdaptiveConfig::default()
        };
        let mut adaptive =
            AdaptiveTransient::new(model.clone(), trace.clone(), 300.0, cfg).unwrap();
        adaptive.run_to_end().unwrap();
        assert!((adaptive.time() - 0.2).abs() < 1e-9, "t = {}", adaptive.time());
        assert!(adaptive.finished());

        // Fine fixed-dt reference (dt = 0.25 ms -> 800 steps).
        let mut reference =
            TransientSimulation::new(model, &trace.segments()[0].power, 300.0, 2.5e-4).unwrap();
        reference.run_trace(&trace).unwrap();
        let err = wrms_diff(
            adaptive.temperatures(),
            reference.temperatures(),
            cfg.abs_tol,
            cfg.rel_tol,
        );
        // Global error accumulates over ~O(100) steps of local-error-
        // controlled stepping; a 5x envelope on the per-step tolerance
        // is a meaningful bound (failing controllers are off by 100x).
        assert!(err < 5.0, "adaptive drifted {err} tolerance units from reference");
        let stats = adaptive.stats();
        assert!(stats.accepted > 0);
        assert!(
            stats.solves < 800 / 2,
            "adaptive used {} solves vs 800 reference steps",
            stats.solves
        );
    }

    #[test]
    fn adaptive_grows_dt_toward_steady_state() {
        let (model, power) = setup();
        let trace = PowerTrace::new(vec![TraceSegment::constant(1.0, power)]).unwrap();
        let cfg = AdaptiveConfig {
            dt_init: 1e-3,
            dt_min: 1e-3,
            dt_max: 0.5,
            ..AdaptiveConfig::default()
        };
        let mut adaptive = AdaptiveTransient::new(model, trace, 300.0, cfg).unwrap();
        let first = adaptive.step().unwrap();
        adaptive.run_to_end().unwrap();
        // The controller must have stretched the step well beyond the
        // initial one as the field settles.
        let stats = adaptive.stats();
        assert!(
            stats.accepted < 200,
            "took {} steps for 1 s (fixed 1 ms would take 1000)",
            stats.accepted
        );
        assert!(first.dt <= 1e-3 * (1.0 + 1e-12));
    }

    #[test]
    fn adaptive_rejects_trace_overrun_and_validates_config() {
        let (model, power) = setup();
        let trace = PowerTrace::new(vec![TraceSegment::constant(0.01, power.clone())])
            .unwrap();
        let mut a =
            AdaptiveTransient::new(model.clone(), trace, 300.0, AdaptiveConfig::default())
                .unwrap();
        a.run_to_end().unwrap();
        assert!(a.step().is_err(), "stepping past the trace must fail");

        let bad = AdaptiveConfig { dt_min: 0.0, ..AdaptiveConfig::default() };
        let trace2 = PowerTrace::new(vec![TraceSegment::constant(0.01, power)]).unwrap();
        assert!(AdaptiveTransient::new(model, trace2, 300.0, bad).is_err());
    }

    #[test]
    fn power_trace_validation() {
        let (model, power) = setup();
        assert!(PowerTrace::new(vec![]).is_err());
        assert!(PowerTrace::new(vec![TraceSegment::constant(0.0, power.clone())])
            .is_err());
        assert!(PowerTrace::new(vec![TraceSegment::constant(f64::INFINITY, power.clone())])
        .is_err());
        let trace = PowerTrace::new(vec![
            TraceSegment::constant(0.5, power.clone()),
            TraceSegment::constant(0.25, power),
        ])
        .unwrap();
        assert_eq!(trace.len(), 2);
        assert!(!trace.is_empty());
        assert!((trace.total_duration() - 0.75).abs() < 1e-15);
        let _ = model;
    }

    #[test]
    fn fixed_checkpoint_restore_continues_bitwise() {
        // Deterministic bitwise reference: force injection off so an
        // env-steered BRIGHT_FAULTS sweep cannot desync the two
        // sessions' scripted fault schedules.
        bright_num::faults::with_scope(None, || {
            let (model, power) = setup();
            // Uninterrupted: 12 steps.
            let mut full = TransientSimulation::new(model.clone(), &power, 300.0, 2e-3).unwrap();
            full.run(12).unwrap();
            // Interrupted: 5 steps, checkpoint through JSON, restore into a
            // *fresh* simulation, 7 more.
            let mut first = TransientSimulation::new(model.clone(), &power, 300.0, 2e-3).unwrap();
            first.run(5).unwrap();
            let cp = Checkpoint::from_json_str(&first.save_checkpoint().to_json_string()).unwrap();
            let mut resumed = TransientSimulation::new(model, &power, 300.0, 2e-3).unwrap();
            resumed.restore_checkpoint(&cp).unwrap();
            resumed.run(7).unwrap();
            assert_eq!(resumed.temperatures(), full.temperatures());
            assert_eq!(resumed.time(), full.time());
        });
    }

    #[test]
    fn adaptive_checkpoint_restore_continues_bitwise() {
        // Deterministic bitwise reference: force injection off so an
        // env-steered BRIGHT_FAULTS sweep cannot desync the two
        // sessions' scripted fault schedules.
        bright_num::faults::with_scope(None, || {
            let (model, power) = setup();
            let zero = Field2d::zeros(model.grid().clone());
            let trace = PowerTrace::new(vec![
                TraceSegment::constant(0.03, power.clone()),
                TraceSegment::constant(0.05, zero),
            ])
            .unwrap();
            let cfg = AdaptiveConfig {
                dt_init: 1e-3,
                dt_min: 2e-4,
                dt_max: 0.02,
                ..AdaptiveConfig::default()
            };
            let mut full = AdaptiveTransient::new(model.clone(), trace.clone(), 300.0, cfg).unwrap();
            // Integrate the first segment, checkpoint at its boundary, then
            // finish.
            while !full.finished() && full.time() < 0.03 - 1e-12 {
                full.step().unwrap();
            }
            let cp = full.save_checkpoint();
            assert_eq!(cp.segment, 1, "checkpoint should sit at the boundary");
            full.run_to_end().unwrap();

            let mut branch = AdaptiveTransient::new(model, trace, 300.0, cfg).unwrap();
            branch
                .restore_checkpoint(&Checkpoint::from_json_str(&cp.to_json_string()).unwrap())
                .unwrap();
            branch.run_to_end().unwrap();
            assert_eq!(branch.temperatures(), full.temperatures());
            assert_eq!(branch.time(), full.time());
        });
    }

    #[test]
    fn checkpoint_restore_validates_shape() {
        let (model, power) = setup();
        let mut sim = TransientSimulation::new(model, &power, 300.0, 1e-3).unwrap();
        let mut cp = sim.save_checkpoint();
        cp.temperatures.pop();
        assert!(sim.restore_checkpoint(&cp).is_err());
        let mut cp2 = sim.save_checkpoint();
        cp2.dt = -1.0;
        assert!(sim.restore_checkpoint(&cp2).is_err());
    }

    #[test]
    fn adaptive_halves_dt_on_solver_faults_and_finishes() {
        use bright_num::faults::{self, FaultPlan};
        use bright_num::RecoveryPolicy;
        let (model, power) = setup();
        let trace = PowerTrace::new(vec![TraceSegment::constant(0.02, power)]).unwrap();
        let cfg = AdaptiveConfig::default();
        let mut adaptive = AdaptiveTransient::new(model, trace, 300.0, cfg).unwrap();
        // Disable the session's own ladder so injected breakdowns reach
        // the adaptive controller's retry path.
        adaptive.set_recovery_policy(RecoveryPolicy::disabled());
        // Exactly one breakdown, at the 7th solve opportunity (the
        // period exceeds any realistic opportunity count): the failed
        // trial costs one halved-Δt retry, the rest of the trace runs
        // clean.
        let plan = FaultPlan { seed: 7, breakdown: 1 << 40, ..FaultPlan::default() };
        let peak = faults::with_plan(Some(plan), || {
            faults::reset_counters();
            adaptive.run_to_end().unwrap()
        });
        assert!(peak > 300.0);
        assert!(adaptive.finished());
        let stats = adaptive.stats();
        assert!(
            stats.solver_retries >= 1,
            "expected at least one solver retry, got {stats:?}"
        );
        // The session never recovered anything itself (ladder off).
        assert_eq!(adaptive.session_stats().recovered_solves, 0);
    }

    #[test]
    fn checkpoint_json_roundtrip_is_exact() {
        let cp = Checkpoint {
            time: 0.123456789012345,
            dt: 1.5e-3,
            segment: 3,
            time_in_segment: 7.25e-4,
            temperatures: vec![300.15, 314.999999999999, 2.2250738585072014e-308],
            warm_start: vec![1.0 / 3.0],
            stats: AdaptiveStats {
                accepted: 41,
                rejected: 3,
                forced: 1,
                solves: 88,
                solver_retries: 2,
            },
        };
        let back = Checkpoint::from_json_str(&cp.to_json_string()).unwrap();
        assert_eq!(back, cp);
        assert!(Checkpoint::from_json_str("{}").is_err());
        assert!(Checkpoint::from_json_str("not json").is_err());
    }

    #[test]
    fn checkpoint_file_roundtrip_detects_corruption_and_torn_writes() {
        use bright_num::faults;

        let dir = std::env::temp_dir().join(format!("bright_thermal_cp{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job.checkpoint.json");
        let cp = Checkpoint {
            time: 0.02,
            dt: 2e-3,
            segment: 1,
            time_in_segment: 0.0,
            temperatures: vec![300.0, 301.5, 0.1 + 0.2],
            warm_start: vec![1.0 / 3.0],
            stats: AdaptiveStats::default(),
        };
        cp.save_to_file(&path).unwrap();
        assert_eq!(Checkpoint::load_from_file(&path).unwrap(), cp);
        assert!(!dir.join("job.checkpoint.json.tmp").exists());

        // A missing file is an error (the cold-re-run signal)...
        assert!(Checkpoint::load_from_file(&dir.join("absent.json")).is_err());
        // ...and so are truncation and byte corruption.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(Checkpoint::load_from_file(&path).is_err());
        std::fs::write(&path, text.replace("300.0", "333.0")).unwrap();
        assert!(Checkpoint::load_from_file(&path).is_err());

        // An injected torn write persists a truncated record and panics
        // like a power cut; the reload detects the damage.
        cp.save_to_file(&path).unwrap();
        let killed = std::panic::catch_unwind(|| {
            faults::with_scope(Some(faults::FaultPlan::one_shot_torn(1)), || {
                cp.save_to_file(&path)
            })
        });
        let payload = killed.expect_err("torn site must fire on the first write");
        assert!(faults::is_injected_kill(payload.as_ref()));
        assert!(Checkpoint::load_from_file(&path).is_err(), "torn record must not verify");
        // Re-saving cleanly repairs the document.
        cp.save_to_file(&path).unwrap();
        assert_eq!(Checkpoint::load_from_file(&path).unwrap(), cp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The ramp used by the coefficient-transient tests: halve the flow
    /// while the inlet warms 8 K across the segment.
    fn test_ramp(model: &ThermalModel) -> CoefficientRamp {
        let (flow, inlet) = model.operating_point().unwrap();
        CoefficientRamp {
            flow_start: flow,
            flow_end: CubicMetersPerSecond::new(flow.value() * 0.5),
            inlet_start: inlet,
            inlet_end: Kelvin::new(inlet.value() + 8.0),
        }
    }

    #[test]
    fn trbdf2_tracks_reference_with_fewer_solves_than_doubling() {
        // Both controllers integrate the same step trace to the same
        // tolerance; each must land near the fine backward-Euler
        // reference, and TR-BDF2 must spend meaningfully fewer linear
        // solves (2 per attempt vs 3, plus a higher-order estimate
        // allowing larger steps).
        let (model, power) = setup();
        let zero = Field2d::zeros(model.grid().clone());
        let trace = PowerTrace::new(vec![
            TraceSegment::constant(0.05, power.clone()),
            TraceSegment::constant(0.15, zero),
        ])
        .unwrap();
        let base = AdaptiveConfig {
            abs_tol: 0.02,
            dt_init: 5e-4,
            dt_min: 1e-4,
            dt_max: 0.05,
            ..AdaptiveConfig::default()
        };
        let mut reference =
            TransientSimulation::new(model.clone(), &trace.segments()[0].power, 300.0, 2.5e-4)
                .unwrap();
        reference.run_trace(&trace).unwrap();

        let mut solves = [0u64; 2];
        for (slot, controller) in
            [Controller::TrBdf2, Controller::StepDoubling].into_iter().enumerate()
        {
            let cfg = AdaptiveConfig { controller, ..base };
            let mut a =
                AdaptiveTransient::new(model.clone(), trace.clone(), 300.0, cfg).unwrap();
            a.run_to_end().unwrap();
            let err = wrms_diff(
                a.temperatures(),
                reference.temperatures(),
                cfg.abs_tol,
                cfg.rel_tol,
            );
            assert!(
                err < 5.0,
                "{} drifted {err} tolerance units from reference",
                controller.as_str()
            );
            solves[slot] = a.stats().solves;
        }
        assert!(
            (solves[1] as f64) >= 1.5 * solves[0] as f64,
            "TR-BDF2 used {} solves vs step-doubling's {}",
            solves[0],
            solves[1]
        );
    }

    #[test]
    fn adaptive_solve_counters_reconcile_with_session() {
        // AdaptiveStats::solves is accounted as the session's
        // successful-solve delta around every attempt, so after a run
        // it equals SessionStats::solves exactly — for both
        // controllers, and with injected solver faults in play.
        use bright_num::faults::{self, FaultPlan};
        let (model, power) = setup();
        let trace =
            PowerTrace::new(vec![TraceSegment::constant(0.02, power)]).unwrap();
        for controller in [Controller::TrBdf2, Controller::StepDoubling] {
            let cfg = AdaptiveConfig { controller, ..AdaptiveConfig::default() };
            let mut a =
                AdaptiveTransient::new(model.clone(), trace.clone(), 300.0, cfg).unwrap();
            a.set_recovery_policy(bright_num::RecoveryPolicy::disabled());
            let plan = FaultPlan { seed: 11, breakdown: 1 << 41, ..FaultPlan::default() };
            faults::with_plan(Some(plan), || {
                faults::reset_counters();
                a.run_to_end().unwrap()
            });
            let stats = a.stats();
            assert_eq!(
                stats.solves,
                a.session_stats().solves,
                "{}: controller solves must reconcile with the session",
                controller.as_str()
            );
            assert!(stats.accepted > 0);
        }
    }

    #[test]
    fn legacy_v1_checkpoint_loads_with_zero_stats() {
        // A version-1 document (and one with no version field at all)
        // parses into zeroed counters; documents from the future are
        // rejected.
        let v1 = r#"{"version":1,"time":0.25,"dt":1e-3,"segment":2,
            "time_in_segment":0.125,"temperatures":[300.0,301.0],
            "warm_start":[300.5,300.5]}"#;
        let cp = Checkpoint::from_json_str(v1).unwrap();
        assert_eq!(cp.stats, AdaptiveStats::default());
        assert_eq!(cp.segment, 2);
        assert_eq!(cp.time, 0.25);

        let unversioned = r#"{"time":0.1,"dt":1e-3,"segment":0,
            "time_in_segment":0.0,"temperatures":[300.0],"warm_start":[300.0]}"#;
        assert_eq!(
            Checkpoint::from_json_str(unversioned).unwrap().stats,
            AdaptiveStats::default()
        );

        let v3 = r#"{"version":3,"time":0.1,"dt":1e-3,"segment":0,
            "time_in_segment":0.0,"temperatures":[300.0],"warm_start":[300.0]}"#;
        assert!(Checkpoint::from_json_str(v3).is_err());

        // Version 2 without the stats object is malformed.
        let v2_missing = r#"{"version":2,"time":0.1,"dt":1e-3,"segment":0,
            "time_in_segment":0.0,"temperatures":[300.0],"warm_start":[300.0]}"#;
        assert!(Checkpoint::from_json_str(v2_missing).is_err());
    }

    #[test]
    fn ramp_trace_refreshes_coefficients_without_reassembly() {
        let (model, power) = setup();
        let ramp = test_ramp(&model);
        let zero = Field2d::zeros(model.grid().clone());
        let trace = PowerTrace::new(vec![
            TraceSegment::constant(0.02, power.clone()).with_ramp(ramp),
            TraceSegment::constant(0.02, zero),
        ])
        .unwrap();
        let mut a =
            AdaptiveTransient::new(model.clone(), trace.clone(), 300.0, AdaptiveConfig::default())
                .unwrap();
        let peak = a.run_to_end().unwrap();
        assert!(a.finished());
        assert!(peak > 300.0);
        // The whole ramped run rides value refreshes on the pattern
        // assembled at construction — never a re-assembly.
        assert_eq!(a.model().assembly_count(), 1, "ramp must not re-assemble");
        assert!(
            a.coefficient_refreshes() > 0,
            "ramped segment must re-stamp coefficients"
        );
        // Halved flow + warmer inlet must run hotter than the
        // constant-coefficient trace.
        let constant = PowerTrace::new(vec![
            TraceSegment::constant(0.02, power),
            TraceSegment::constant(0.02, Field2d::zeros(model.grid().clone())),
        ])
        .unwrap();
        let mut c =
            AdaptiveTransient::new(model, constant, 300.0, AdaptiveConfig::default()).unwrap();
        let peak_constant = c.run_to_end().unwrap();
        assert!(
            peak > peak_constant,
            "degraded cooling must run hotter: {peak} vs {peak_constant}"
        );
        assert_eq!(c.coefficient_refreshes(), 0, "constant trace must not re-stamp");
    }

    #[test]
    fn step_doubling_rejects_coefficient_ramps() {
        let (model, power) = setup();
        let ramp = test_ramp(&model);
        let cfg = AdaptiveConfig {
            controller: Controller::StepDoubling,
            ..AdaptiveConfig::default()
        };
        let ramped = PowerTrace::new(vec![
            TraceSegment::constant(0.01, power.clone()).with_ramp(ramp)
        ])
        .unwrap();
        assert!(AdaptiveTransient::new(model.clone(), ramped, 300.0, cfg).is_err());
        let plain =
            PowerTrace::new(vec![TraceSegment::constant(0.01, power.clone())]).unwrap();
        let mut a = AdaptiveTransient::new(model, plain, 300.0, cfg).unwrap();
        assert!(a
            .push_segment(TraceSegment::constant(0.01, power).with_ramp(ramp))
            .is_err());
    }

    #[test]
    fn conduction_only_stack_rejects_ramps_at_first_step() {
        let model = presets::conduction_stack_scaled(1).unwrap();
        let power = Field2d::constant(model.grid().clone(), 1e6);
        let ramp = CoefficientRamp {
            flow_start: CubicMetersPerSecond::from_milliliters_per_minute(100.0),
            flow_end: CubicMetersPerSecond::from_milliliters_per_minute(50.0),
            inlet_start: Kelvin::new(300.0),
            inlet_end: Kelvin::new(300.0),
        };
        let trace =
            PowerTrace::new(vec![TraceSegment::constant(0.01, power).with_ramp(ramp)]).unwrap();
        let mut a =
            AdaptiveTransient::new(model, trace, 300.0, AdaptiveConfig::default()).unwrap();
        assert!(a.step().is_err(), "no microchannel layers to ramp");
    }

    #[test]
    fn mid_ramp_checkpoint_restores_bitwise() {
        // Deterministic bitwise reference: force injection off so an
        // env-steered BRIGHT_FAULTS sweep cannot desync the two
        // sessions' scripted fault schedules.
        bright_num::faults::with_scope(None, || {
            let (model, power) = setup();
            let ramp = test_ramp(&model);
            let zero = Field2d::zeros(model.grid().clone());
            let trace = PowerTrace::new(vec![
                TraceSegment::constant(0.02, power).with_ramp(ramp),
                TraceSegment::constant(0.02, zero),
            ])
            .unwrap();
            let cfg = AdaptiveConfig {
                dt_init: 1e-3,
                dt_min: 2e-4,
                dt_max: 0.01,
                ..AdaptiveConfig::default()
            };
            let mut full = AdaptiveTransient::new(model.clone(), trace.clone(), 300.0, cfg).unwrap();
            // Stop strictly inside the ramped segment so the checkpoint
            // carries a mid-ramp operating point.
            while full.time() < 0.008 {
                full.step().unwrap();
            }
            assert_eq!(full.segment_index(), 0, "checkpoint must be mid-segment");
            let cp = full.save_checkpoint();
            full.run_to_end().unwrap();

            let mut branch = AdaptiveTransient::new(model, trace, 300.0, cfg).unwrap();
            branch
                .restore_checkpoint(&Checkpoint::from_json_str(&cp.to_json_string()).unwrap())
                .unwrap();
            branch.run_to_end().unwrap();
            assert_eq!(branch.temperatures(), full.temperatures());
            assert_eq!(branch.time(), full.time());
            assert_eq!(branch.stats(), full.stats(), "restored counters stay cumulative");
        });
    }

    #[test]
    fn push_segment_carry_matches_single_trace_run() {
        // Deterministic bitwise reference: force injection off so an
        // env-steered BRIGHT_FAULTS sweep cannot desync the two
        // sessions' scripted fault schedules.
        bright_num::faults::with_scope(None, || {
            // Extending a *finished* integrator with push_segment and
            // continuing (the engine's carry-down primitive) is bitwise
            // identical to integrating the full trace from the start.
            let (model, power) = setup();
            let ramp = test_ramp(&model);
            let zero = Field2d::zeros(model.grid().clone());
            let seg0 = TraceSegment::constant(0.02, power);
            let seg1 = TraceSegment::constant(0.02, zero).with_ramp(ramp);
            let cfg = AdaptiveConfig::default();

            let full_trace =
                PowerTrace::new(vec![seg0.clone(), seg1.clone()]).unwrap();
            let mut full = AdaptiveTransient::new(model.clone(), full_trace, 300.0, cfg).unwrap();
            full.run_to_end().unwrap();

            let mut carried = AdaptiveTransient::new(
                model,
                PowerTrace::new(vec![seg0]).unwrap(),
                300.0,
                cfg,
            )
            .unwrap();
            carried.run_to_end().unwrap();
            assert!(carried.finished());
            carried.push_segment(seg1).unwrap();
            assert!(!carried.finished(), "push must re-arm a finished integrator");
            carried.run_to_end().unwrap();
            assert_eq!(carried.temperatures(), full.temperatures());
            assert_eq!(carried.time(), full.time());
            assert_eq!(carried.stats(), full.stats());
        });
    }
}
