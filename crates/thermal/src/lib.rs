//! 3D-ICE-style compact thermal model with microchannel liquid cooling.
//!
//! Re-implements the compact transient/steady thermal modelling approach
//! of 3D-ICE (Sridhar et al., the tool the paper uses for its thermal
//! evaluation): the chip stack is divided into layers, each discretized
//! into cells connected by thermal conductances; microchannel layers add
//! fluid cells with upstream advection and fin-homogenized convective
//! coupling to the solid above and below.
//!
//! * [`materials`] — material library (silicon, oxide, copper, TIM),
//! * [`stack`] — layer stack description (solid layers, microchannel
//!   layers),
//! * [`model`] — assembly and the steady-state solver,
//! * [`transient`] — transient stepping: fixed backward-Euler or
//!   adaptive TR-BDF2 Δt control, piecewise-constant power traces with
//!   optional coolant coefficient ramps, and serializable checkpoints
//!   for branching shared trace prefixes,
//! * [`presets`] — the POWER7+ stack of the paper's case study.
//!
//! # Examples
//!
//! ```
//! use bright_thermal::presets;
//! use bright_floorplan::{power7, PowerScenario};
//!
//! let model = presets::power7_stack().expect("valid stack");
//! let power = PowerScenario::full_load()
//!     .rasterize(&power7::floorplan(), model.grid())
//!     .expect("power map");
//! let sol = model.solve_steady(&power).expect("steady solve");
//! let peak = sol.max_temperature().to_celsius().value();
//! // The paper's Fig. 9: peak around 41 degC with the Table II flow.
//! assert!(peak > 30.0 && peak < 55.0, "peak = {peak} degC");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod materials;
pub mod model;
pub mod presets;
pub mod stack;
pub mod transient;

pub use materials::Material;
pub use model::{ThermalModel, ThermalSolution};
pub use stack::{LayerSpec, MicrochannelSpec, StackConfig};
pub use transient::{
    AdaptiveConfig, AdaptiveStats, AdaptiveStep, AdaptiveTransient, Checkpoint, CoefficientRamp,
    Controller, PowerTrace, TraceSegment, TransientSimulation,
};

use std::fmt;

/// Errors produced by the thermal model.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermalError {
    /// Invalid stack or discretization description.
    InvalidConfig(String),
    /// The power map does not match the model grid.
    PowerMapMismatch(String),
    /// The linear solve failed.
    Numerical(String),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            ThermalError::PowerMapMismatch(m) => write!(f, "power map mismatch: {m}"),
            ThermalError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for ThermalError {}

impl From<bright_num::NumError> for ThermalError {
    fn from(e: bright_num::NumError) -> Self {
        ThermalError::Numerical(e.to_string())
    }
}
