//! Assembly and steady-state solution of the thermal network.
//!
//! The operator is assembled **once** per model through the symbolic/
//! numeric CSR split: the stamp list, the compiled [`CsrSymbolic`]
//! pattern and the numeric matrix are all cached. Flow-rate and
//! inlet-temperature sweeps call [`ThermalModel::refresh_coefficients`]
//! to re-stamp *values* through the cached pattern in O(nnz) — the
//! sparsity is identical between such configurations, only conductances
//! change — instead of rebuilding the model. Solves run through a
//! [`SolverSession`] (Krylov scratch + warm start + preconditioner),
//! kept in sync with the operator by an (operator tag, coefficient
//! epoch) pair.

use crate::stack::{LayerSpec, MicrochannelSpec, StackConfig};
use crate::ThermalError;
use bright_flow::laminar::heat_transfer_coefficient;
use bright_flow::RectChannel;
use bright_mesh::{Field2d, Grid2d};
use bright_num::session::next_operator_tag;
use bright_num::solvers::IterOptions;
use bright_num::{CsrSymbolic, PrecondSpec, SolverSession, TripletMatrix};
use bright_units::{CubicMetersPerSecond, Kelvin, Meters, Watt};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One vertical level of the flattened stack.
#[derive(Debug, Clone)]
enum Level {
    Solid {
        conductivity: f64,
        heat_capacity: f64,
        dz: f64,
    },
    Fluid {
        spec: MicrochannelSpec,
        /// Advective capacity rate per channel, ρc·V̇ (W/K).
        capacity_rate: f64,
        /// Convective conductance to the solid below/above per cell (W/K),
        /// fin-homogenized.
        g_conv: f64,
        /// Vertical wall (fin) conduction bypass per cell (W/K).
        g_wall: f64,
    },
}

/// The assembled conductance operator: the stamp list, the compiled
/// sparsity pattern, the numeric matrix and the source-independent RHS.
/// Built once per model; coefficient refreshes re-stamp the values
/// through the cached pattern.
#[derive(Debug, Clone)]
pub(crate) struct ThermalOperator {
    /// The stamp list of the last assembly/refresh (kept so refreshes
    /// reuse the allocation and the scatter map stays valid).
    triplets: TripletMatrix,
    symbolic: CsrSymbolic,
    pub(crate) matrix: bright_num::CsrMatrix,
    /// Inlet forcing and top-cooling ambient terms (power-independent).
    pub(crate) rhs_base: Vec<f64>,
    /// Session-facing operator identity (see [`next_operator_tag`]).
    tag: u64,
}

/// The assembled compact thermal model.
#[derive(Debug)]
pub struct ThermalModel {
    config: StackConfig,
    levels: Vec<Level>,
    grid: Grid2d,
    /// Lazily built, then shared by all solves on this model (clones
    /// carry the cache along).
    operator: OnceLock<ThermalOperator>,
    /// Coefficient epoch: bumped by every refresh so bound sessions can
    /// resync values without re-assembly.
    epoch: u64,
    /// Full (symbolic) operator assemblies over this model's lifetime —
    /// the counter sweep tests use to prove refreshes don't re-assemble.
    assemblies: AtomicUsize,
    /// Value-only refreshes over this model's lifetime.
    refreshes: usize,
}

impl Clone for ThermalModel {
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            levels: self.levels.clone(),
            grid: self.grid.clone(),
            operator: self.operator.clone(),
            epoch: self.epoch,
            assemblies: AtomicUsize::new(self.assemblies.load(Ordering::Relaxed)),
            refreshes: self.refreshes,
        }
    }
}

/// A solved temperature field.
#[derive(Debug, Clone)]
pub struct ThermalSolution {
    levels: Vec<Field2d>,
    fluid_levels: Vec<usize>,
    inlet: Kelvin,
    capacity_rate: f64,
}

/// Builds the per-level coefficient table from a (validated) stack
/// configuration. Shared by construction and coefficient refreshes so
/// both produce bit-identical values.
fn build_levels(config: &StackConfig, grid: &Grid2d) -> Result<Vec<Level>, ThermalError> {
    let pitch = config.pitch().value();
    let dy = grid.dy();
    let mut levels = Vec::with_capacity(config.total_levels());
    for layer in &config.layers {
        match layer {
            LayerSpec::Solid {
                material,
                thickness,
                sublayers,
                ..
            } => {
                let dz = thickness.value() / *sublayers as f64;
                for _ in 0..*sublayers {
                    levels.push(Level::Solid {
                        conductivity: material.conductivity.value(),
                        heat_capacity: material.heat_capacity.value(),
                        dz,
                    });
                }
            }
            LayerSpec::Microchannel { spec, .. } => {
                let w = spec.channel_width.value();
                let h_ch = spec.channel_height.value();
                let cpc = spec.channels_per_cell as f64;
                // Wall (fin) thickness attributed to each channel.
                let t_wall = (pitch - cpc * w) / cpc;
                // Capacity rate of all channels lumped in one cell.
                let capacity_rate = spec.fluid.volumetric_heat_capacity.value()
                    * spec.total_flow.value()
                    / config.nx as f64;
                // Heat-transfer coefficient from the laminar H1
                // Nusselt correlation for one physical channel.
                let duct = RectChannel::new(
                    Meters::new(w),
                    Meters::new(h_ch),
                    Meters::new(config.height.value()),
                )
                .map_err(|e| ThermalError::InvalidConfig(e.to_string()))?;
                let htc = heat_transfer_coefficient(&spec.fluid, &duct);
                // Fin homogenization: side walls are fins of thickness
                // t_wall wetted on both faces, split top/bottom; each
                // cell aggregates `cpc` channels.
                let k_wall = spec.wall_material.conductivity.value();
                let g_conv = if t_wall > 0.0 {
                    let m = (2.0 * htc / (k_wall * t_wall)).sqrt();
                    let mh = m * h_ch / 2.0;
                    let eta = if mh > 1e-12 { mh.tanh() / mh } else { 1.0 };
                    cpc * htc * dy * (w + eta * h_ch)
                } else {
                    cpc * htc * dy * w
                };
                let g_wall = if t_wall > 0.0 {
                    cpc * k_wall * t_wall * dy / h_ch
                } else {
                    0.0
                };
                levels.push(Level::Fluid {
                    spec: *spec,
                    capacity_rate,
                    g_conv,
                    g_wall,
                });
            }
        }
    }
    Ok(levels)
}

impl ThermalModel {
    /// Builds a model from a stack configuration.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] from [`StackConfig::validate`],
    ///   if the stack has no microchannel layer (the network would float
    ///   with all-adiabatic boundaries), or if two microchannel layers are
    ///   adjacent.
    pub fn new(config: StackConfig) -> Result<Self, ThermalError> {
        config.validate()?;
        if config.top_cooling.is_none()
            && !config
                .layers
                .iter()
                .any(|l| matches!(l, LayerSpec::Microchannel { .. }))
        {
            return Err(ThermalError::InvalidConfig(
                "stack needs a microchannel layer or top cooling (adiabatic outer walls)"
                    .into(),
            ));
        }
        for w in config.layers.windows(2) {
            if matches!(w[0], LayerSpec::Microchannel { .. })
                && matches!(w[1], LayerSpec::Microchannel { .. })
            {
                return Err(ThermalError::InvalidConfig(
                    "adjacent microchannel layers are not supported".into(),
                ));
            }
        }
        let grid = Grid2d::from_extent(
            config.width.value(),
            config.height.value(),
            config.nx,
            config.ny,
        )
        .map_err(|e| ThermalError::InvalidConfig(e.to_string()))?;
        let levels = build_levels(&config, &grid)?;
        Ok(Self {
            config,
            levels,
            grid,
            operator: OnceLock::new(),
            epoch: 0,
            assemblies: AtomicUsize::new(0),
            refreshes: 0,
        })
    }

    /// The shared in-plane grid (power maps must live on this grid).
    #[inline]
    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    /// The stack configuration.
    #[inline]
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Number of vertical levels.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Indices of the fluid levels.
    pub fn fluid_levels(&self) -> Vec<usize> {
        self.levels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| matches!(l, Level::Fluid { .. }).then_some(i))
            .collect()
    }

    /// Volumetric heat capacity × flow (W/K) summed over all channels of
    /// the first microchannel layer — the fluid's total capacity rate.
    pub fn total_capacity_rate(&self) -> f64 {
        self.levels
            .iter()
            .find_map(|l| match l {
                Level::Fluid { capacity_rate, .. } => {
                    Some(capacity_rate * self.config.nx as f64)
                }
                _ => None,
            })
            .unwrap_or(0.0)
    }

    fn cell_index(&self, level: usize, ix: usize, iy: usize) -> usize {
        level * self.grid.len() + iy * self.grid.nx() + ix
    }

    /// Exact stamp count of [`ThermalModel::stamp_operator`], so the
    /// triplet buffer is sized once with no growth reallocation in the
    /// assembly loops.
    fn operator_stamp_count(&self) -> usize {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let cells = self.grid.len();
        let n_levels = self.levels.len();
        let mut count = 0usize;
        for (lvl, level) in self.levels.iter().enumerate() {
            match level {
                Level::Solid { .. } => {
                    // In-plane conductance stamps: 4 entries each.
                    count += 4 * ((nx - 1) * ny + nx * (ny - 1));
                }
                Level::Fluid { g_wall, .. } => {
                    // Advection: diagonal everywhere + upwind neighbour
                    // away from the inlet row.
                    count += cells + nx * (ny - 1);
                    if *g_wall > 0.0 && lvl > 0 && lvl + 1 < n_levels {
                        count += 4 * cells;
                    }
                }
            }
        }
        // Vertical coupling between adjacent levels.
        count += 4 * cells * n_levels.saturating_sub(1);
        if self.config.top_cooling.is_some() && matches!(self.levels[n_levels - 1], Level::Solid { .. })
        {
            count += cells;
        }
        count
    }

    /// The cached operator, assembled on first use.
    pub(crate) fn operator(&self) -> Result<&ThermalOperator, ThermalError> {
        bright_num::lazy::get_or_try_init(&self.operator, || self.assemble_operator())
    }

    /// Forces the lazy operator assembly now (idempotent). Callers that
    /// fan a model out by cloning should assemble first, so every clone
    /// carries the cached operator instead of re-assembling its own.
    ///
    /// # Errors
    ///
    /// Assembly errors as in [`ThermalModel::solve_steady`].
    pub fn assemble(&self) -> Result<(), ThermalError> {
        self.operator().map(|_| ())
    }

    /// Number of full (symbolic) operator assemblies this model has
    /// performed. Sweeps routed through
    /// [`ThermalModel::refresh_coefficients`] keep this at 1 however
    /// many points they evaluate.
    pub fn assembly_count(&self) -> usize {
        self.assemblies.load(Ordering::Relaxed)
    }

    /// Number of O(nnz) coefficient refreshes this model has performed.
    #[inline]
    pub fn refresh_count(&self) -> usize {
        self.refreshes
    }

    /// The coefficient epoch (bumped by every refresh); sessions bound
    /// to this model resync automatically when it advances.
    #[inline]
    pub fn coefficient_epoch(&self) -> u64 {
        self.epoch
    }

    /// Stamps the steady conductance matrix `G` and the power-independent
    /// part of the RHS (inlet forcing, top-cooling ambient) into `t` and
    /// `rhs`. The stamp *sequence* depends only on the grid and the layer
    /// structure — never on coefficient values (the
    /// [`CsrSymbolic::refresh_values`] contract) — with one exception:
    /// the `g_wall > 0` fin-bypass branch, which is structural and
    /// guarded against in [`ThermalModel::refresh_microchannels`].
    fn stamp_operator(
        &self,
        t: &mut TripletMatrix,
        rhs: &mut Vec<f64>,
    ) -> Result<(), ThermalError> {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let dx = self.grid.dx();
        let dy = self.grid.dy();
        let n_levels = self.levels.len();
        let n = n_levels * self.grid.len();
        rhs.clear();
        rhs.resize(n, 0.0);

        // In-plane conduction within solid levels.
        for (lvl, level) in self.levels.iter().enumerate() {
            if let Level::Solid {
                conductivity, dz, ..
            } = level
            {
                let gx = conductivity * dz * dy / dx;
                let gy = conductivity * dz * dx / dy;
                for iy in 0..ny {
                    for ix in 0..nx {
                        let me = self.cell_index(lvl, ix, iy);
                        if ix + 1 < nx {
                            t.stamp_conductance(me, self.cell_index(lvl, ix + 1, iy), gx)
                                .map_err(ThermalError::from)?;
                        }
                        if iy + 1 < ny {
                            t.stamp_conductance(me, self.cell_index(lvl, ix, iy + 1), gy)
                                .map_err(ThermalError::from)?;
                        }
                    }
                }
            }
        }

        // Vertical coupling between adjacent levels.
        let area = dx * dy;
        for lvl in 0..n_levels.saturating_sub(1) {
            let (below, above) = (&self.levels[lvl], &self.levels[lvl + 1]);
            match (below, above) {
                (
                    Level::Solid {
                        conductivity: kb,
                        dz: dzb,
                        ..
                    },
                    Level::Solid {
                        conductivity: ka,
                        dz: dza,
                        ..
                    },
                ) => {
                    let g = area / (dzb / (2.0 * kb) + dza / (2.0 * ka));
                    for iy in 0..ny {
                        for ix in 0..nx {
                            t.stamp_conductance(
                                self.cell_index(lvl, ix, iy),
                                self.cell_index(lvl + 1, ix, iy),
                                g,
                            )
                            .map_err(ThermalError::from)?;
                        }
                    }
                }
                (
                    Level::Solid {
                        conductivity: ks,
                        dz: dzs,
                        ..
                    },
                    Level::Fluid { g_conv, .. },
                )
                | (
                    Level::Fluid { g_conv, .. },
                    Level::Solid {
                        conductivity: ks,
                        dz: dzs,
                        ..
                    },
                ) => {
                    // Solid half-cell conduction in series with the
                    // fin-homogenized convective conductance.
                    let g_half = 2.0 * ks * area / dzs;
                    let g = 1.0 / (1.0 / g_half + 1.0 / g_conv);
                    for iy in 0..ny {
                        for ix in 0..nx {
                            t.stamp_conductance(
                                self.cell_index(lvl, ix, iy),
                                self.cell_index(lvl + 1, ix, iy),
                                g,
                            )
                            .map_err(ThermalError::from)?;
                        }
                    }
                }
                (Level::Fluid { .. }, Level::Fluid { .. }) => {
                    unreachable!("adjacent fluid layers rejected at construction")
                }
            }
        }

        // Wall (fin) vertical bypass across fluid levels.
        for lvl in 0..n_levels {
            if let Level::Fluid { g_wall, .. } = &self.levels[lvl] {
                if *g_wall > 0.0 && lvl > 0 && lvl + 1 < n_levels {
                    for iy in 0..ny {
                        for ix in 0..nx {
                            t.stamp_conductance(
                                self.cell_index(lvl - 1, ix, iy),
                                self.cell_index(lvl + 1, ix, iy),
                                *g_wall,
                            )
                            .map_err(ThermalError::from)?;
                        }
                    }
                }
            }
        }

        // Fluid advection (upwind along +y) and inlet forcing.
        for lvl in 0..n_levels {
            if let Level::Fluid {
                spec,
                capacity_rate,
                ..
            } = &self.levels[lvl]
            {
                for iy in 0..ny {
                    for ix in 0..nx {
                        let me = self.cell_index(lvl, ix, iy);
                        t.push(me, me, *capacity_rate).map_err(ThermalError::from)?;
                        if iy > 0 {
                            t.push(me, self.cell_index(lvl, ix, iy - 1), -capacity_rate)
                                .map_err(ThermalError::from)?;
                        } else {
                            rhs[me] += capacity_rate * spec.inlet_temperature.value();
                        }
                    }
                }
            }
        }

        // Conventional heat-sink boundary on the top face, if configured:
        // solid half-cell conduction in series with the film coefficient.
        if let Some(tc) = &self.config.top_cooling {
            if let Level::Solid {
                conductivity: ks,
                dz: dzs,
                ..
            } = &self.levels[n_levels - 1]
            {
                let g_half = 2.0 * ks * area / dzs;
                let g_film = tc.coefficient * area;
                let g = 1.0 / (1.0 / g_half + 1.0 / g_film);
                for iy in 0..ny {
                    for ix in 0..nx {
                        let me = self.cell_index(n_levels - 1, ix, iy);
                        t.push(me, me, g).map_err(ThermalError::from)?;
                        rhs[me] += g * tc.ambient.value();
                    }
                }
            }
        }
        Ok(())
    }

    /// Assembles the operator: stamps the triplet list, compiles the
    /// symbolic pattern and materializes the numeric matrix. Called once
    /// per model; refreshes reuse the pattern.
    fn assemble_operator(&self) -> Result<ThermalOperator, ThermalError> {
        let n = self.levels.len() * self.grid.len();
        let mut t = TripletMatrix::with_capacity(n, n, self.operator_stamp_count());
        let mut rhs = Vec::new();
        self.stamp_operator(&mut t, &mut rhs)?;
        let symbolic = t.to_csr_symbolic();
        let matrix = symbolic.numeric(&t).map_err(ThermalError::from)?;
        self.assemblies.fetch_add(1, Ordering::Relaxed);
        Ok(ThermalOperator {
            triplets: t,
            symbolic,
            matrix,
            rhs_base: rhs,
            tag: next_operator_tag(),
        })
    }

    /// Re-derives the level coefficients after a microchannel update and
    /// re-stamps the cached operator's values through its pattern —
    /// O(nnz), no sorting, no symbolic work. `update` is applied to every
    /// microchannel layer's spec.
    ///
    /// Permitted updates are those that change coefficient *values* only
    /// (flow, inlet temperature, fluid snapshot, wall material, channel
    /// geometry within the pitch). An update that would change the
    /// sparsity pattern (e.g. making the fin bypass appear or vanish) is
    /// rejected; build a fresh model for those.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::InvalidConfig`] if the updated configuration
    ///   fails validation or changes the operator pattern.
    pub fn refresh_microchannels(
        &mut self,
        mut update: impl FnMut(&mut MicrochannelSpec),
    ) -> Result<(), ThermalError> {
        let mut config = self.config.clone();
        for layer in &mut config.layers {
            if let LayerSpec::Microchannel { spec, .. } = layer {
                update(spec);
            }
        }
        config.validate()?;
        let levels = build_levels(&config, &self.grid)?;
        // Structural guard: the fin-bypass branch is the only stamp whose
        // presence depends on a coefficient; refuse a flip.
        let bypass = |ls: &[Level]| -> Vec<bool> {
            ls.iter()
                .map(|l| matches!(l, Level::Fluid { g_wall, .. } if *g_wall > 0.0))
                .collect()
        };
        if bypass(&levels) != bypass(&self.levels) {
            return Err(ThermalError::InvalidConfig(
                "update changes the operator pattern (fin bypass appeared/vanished); \
                 build a new ThermalModel instead"
                    .into(),
            ));
        }
        self.config = config;
        self.levels = levels;
        // Take the operator out so `stamp_operator` can borrow `self`
        // (an error mid-refresh drops the cache; the next solve
        // re-assembles lazily with the committed coefficients).
        if let Some(mut op) = self.operator.take() {
            op.triplets.clear();
            // Re-stamp with the same sequence; only values differ.
            self.stamp_operator(&mut op.triplets, &mut op.rhs_base)?;
            op.symbolic
                .refresh_values(&mut op.matrix, &op.triplets)
                .map_err(ThermalError::from)?;
            let _ = self.operator.set(op);
            self.epoch += 1;
            self.refreshes += 1;
        }
        Ok(())
    }

    /// Re-stamps the cached operator for a new total flow rate and inlet
    /// temperature — the fast path for the paper's flow-rate and
    /// inlet-temperature design sweeps. The coolant property snapshot is
    /// left unchanged; callers that re-evaluate fluid properties at the
    /// new inlet temperature should use
    /// [`ThermalModel::refresh_microchannels`] and update
    /// [`MicrochannelSpec::fluid`] too.
    ///
    /// # Errors
    ///
    /// As [`ThermalModel::refresh_microchannels`].
    pub fn refresh_coefficients(
        &mut self,
        total_flow: CubicMetersPerSecond,
        inlet_temperature: Kelvin,
    ) -> Result<(), ThermalError> {
        self.refresh_microchannels(|spec| {
            spec.total_flow = total_flow;
            spec.inlet_temperature = inlet_temperature;
        })
    }

    /// Iteration options tuned for the thermal operator: BiCGSTAB on the
    /// nonsymmetric advection system with symmetric Gauss–Seidel (SSOR
    /// ω=1) preconditioning — ~4× fewer iterations than Jacobi on the
    /// POWER7+ stack (see `BENCH_PR2.json`).
    #[must_use]
    pub fn iter_options() -> IterOptions {
        IterOptions {
            tolerance: 1e-10,
            max_iterations: 60_000,
            preconditioner: PrecondSpec::ssor(),
            ..IterOptions::default()
        }
    }

    /// True when the stack has at least one microchannel layer. Fluid
    /// advection makes the operator strongly nonsymmetric, which rules
    /// out the geometric-multigrid preconditioner (its symmetric
    /// bilinear transfers produce expansive Galerkin coarse operators
    /// there — see `docs/MULTIGRID.md`).
    fn has_fluid_levels(&self) -> bool {
        self.levels.iter().any(|l| matches!(l, Level::Fluid { .. }))
    }

    /// Iteration options sized to *this* model's grid and physics: as
    /// [`ThermalModel::iter_options`], but for conduction-only stacks
    /// (no microchannel layers — the operator is symmetric) the
    /// preconditioner comes from [`PrecondSpec::auto_for_grid`], which
    /// switches to the geometric-multigrid V-cycle once
    /// `nx·ny·levels` reaches the `BRIGHT_MG_MIN_UNKNOWNS` threshold
    /// (default 200 000) — the scaled conduction presets land there.
    /// Stacks with fluid layers keep SSOR at every size: their
    /// advection-dominated rows are outside the geometric hierarchy's
    /// reach, and the downstream-ordered sweeps handle them well.
    /// `BRIGHT_PRECOND` forces a specific choice either way.
    #[must_use]
    pub fn solve_options(&self) -> IterOptions {
        let preconditioner = if self.has_fluid_levels() {
            PrecondSpec::forced_or(
                self.grid.nx(),
                self.grid.ny(),
                self.level_count(),
                PrecondSpec::ssor(),
            )
        } else {
            PrecondSpec::auto_for_grid(
                self.grid.nx(),
                self.grid.ny(),
                self.level_count(),
                PrecondSpec::ssor(),
            )
        };
        IterOptions {
            preconditioner,
            ..Self::iter_options()
        }
    }

    /// Creates a solver session bound to this model's operator, with the
    /// thermal solve defaults. One session per sweep (or per worker
    /// thread) amortizes the Krylov scratch, the preconditioner and the
    /// warm start across every solve.
    ///
    /// # Errors
    ///
    /// Assembly errors as in [`ThermalModel::solve_steady`].
    pub fn session(&self) -> Result<SolverSession, ThermalError> {
        self.session_with_kernel(bright_num::KernelSpec::Auto)
    }

    /// As [`ThermalModel::session`] with an explicit kernel-backend
    /// selection (see [`bright_num::KernelSpec`]) — benches pin the
    /// scalar/blocked/threaded paths this way; production callers keep
    /// `Auto`, which picks the threaded matvec on large grids and
    /// multi-core hosts.
    ///
    /// # Errors
    ///
    /// Assembly errors as in [`ThermalModel::solve_steady`].
    pub fn session_with_kernel(
        &self,
        kernel: bright_num::KernelSpec,
    ) -> Result<SolverSession, ThermalError> {
        let mut session = SolverSession::new(self.solve_options());
        session.set_kernel(kernel);
        let op = self.operator()?;
        session.bind(&op.symbolic, &op.matrix, op.tag, self.epoch);
        Ok(session)
    }

    /// Brings a caller-owned session in sync with the operator: binds an
    /// unbound/foreign session, reloads values after a coefficient
    /// refresh, and leaves a current session untouched.
    fn sync_session(
        &self,
        op: &ThermalOperator,
        session: &mut SolverSession,
    ) -> Result<(), ThermalError> {
        if session.is_current(op.tag, self.epoch) {
            return Ok(());
        }
        if session.is_bound() && session.operator_tag() == op.tag {
            session
                .load_values(&op.matrix, self.epoch)
                .map_err(ThermalError::from)?;
        } else {
            session.bind(&op.symbolic, &op.matrix, op.tag, self.epoch);
        }
        Ok(())
    }

    fn validate_sources(&self, sources: &[(usize, &Field2d)]) -> Result<(), ThermalError> {
        for (level, power) in sources {
            if power.grid() != &self.grid {
                return Err(ThermalError::PowerMapMismatch(format!(
                    "power grid {}x{} != model grid {}x{}",
                    power.grid().nx(),
                    power.grid().ny(),
                    self.grid.nx(),
                    self.grid.ny()
                )));
            }
            if *level >= self.levels.len() {
                return Err(ThermalError::PowerMapMismatch(format!(
                    "injection level {level} outside the {}-level stack",
                    self.levels.len()
                )));
            }
            if matches!(self.levels[*level], Level::Fluid { .. }) {
                return Err(ThermalError::PowerMapMismatch(format!(
                    "injection level {level} is a fluid layer"
                )));
            }
        }
        Ok(())
    }

    /// Fills `rhs` with the base RHS plus the power injection of the
    /// (already validated) sources.
    fn build_rhs(&self, rhs_base: &[f64], sources: &[(usize, &Field2d)], rhs: &mut Vec<f64>) {
        rhs.clear();
        rhs.extend_from_slice(rhs_base);
        let area = self.grid.dx() * self.grid.dy();
        let cells = self.grid.len();
        for (level, power) in sources {
            let dst = &mut rhs[level * cells..(level + 1) * cells];
            for (d, p) in dst.iter_mut().zip(power.as_slice()) {
                *d += p * area;
            }
        }
    }

    /// Solves the steady-state temperature field for a power-density map
    /// (W/m² on the model grid).
    ///
    /// # Errors
    ///
    /// * [`ThermalError::PowerMapMismatch`] if the map grid differs,
    /// * [`ThermalError::Numerical`] if BiCGSTAB fails.
    pub fn solve_steady(&self, power: &Field2d) -> Result<ThermalSolution, ThermalError> {
        self.solve_steady_with_sources(&[(0, power)])
    }

    /// As [`ThermalModel::solve_steady`], but reusing a caller-owned
    /// [`SolverSession`]: the operator pattern, the Krylov scratch and
    /// the preconditioner are reused, and the solve warm-starts from the
    /// previous solution held in the session — the fast path for sweeps
    /// where the power map (or, via
    /// [`ThermalModel::refresh_coefficients`], the coefficients) change
    /// gradually between points. An unbound session is bound on first
    /// use; a stale one is resynced automatically.
    ///
    /// # Errors
    ///
    /// As [`ThermalModel::solve_steady`].
    pub fn solve_steady_warm(
        &self,
        power: &Field2d,
        session: &mut SolverSession,
    ) -> Result<ThermalSolution, ThermalError> {
        self.solve_steady_with_sources_warm(&[(0, power)], session)
    }

    /// Solves the steady state with power maps injected at arbitrary
    /// solid levels — the 3D-stacking case of the paper's introduction
    /// (multiple active dies with interlayer cooling, refs [6-8]).
    ///
    /// # Errors
    ///
    /// As [`ThermalModel::solve_steady`], plus
    /// [`ThermalError::PowerMapMismatch`] for a level index outside the
    /// stack or on a fluid layer.
    pub fn solve_steady_with_sources(
        &self,
        sources: &[(usize, &Field2d)],
    ) -> Result<ThermalSolution, ThermalError> {
        let mut session = SolverSession::new(self.solve_options());
        self.solve_steady_with_sources_warm(sources, &mut session)
    }

    /// Session variant of [`ThermalModel::solve_steady_with_sources`];
    /// see [`ThermalModel::solve_steady_warm`].
    ///
    /// # Errors
    ///
    /// As [`ThermalModel::solve_steady_with_sources`].
    pub fn solve_steady_with_sources_warm(
        &self,
        sources: &[(usize, &Field2d)],
        session: &mut SolverSession,
    ) -> Result<ThermalSolution, ThermalError> {
        self.validate_sources(sources)?;
        let op = self.operator()?;
        self.sync_session(op, session)?;
        let n = op.rhs_base.len();
        {
            let rhs = session.rhs_mut();
            self.build_rhs(&op.rhs_base, sources, rhs);
        }
        if session.solution().len() != n {
            // No previous solution of this size: start from a uniform
            // inlet-temperature field, matching the cold-start path.
            session.seed_uniform(n, self.inlet_temperature().value());
        }
        session
            .solve_general_in_place()
            .map_err(ThermalError::from)?;
        self.wrap_solution(session.solution().to_vec())
    }

    /// The coolant reference temperature: the inlet of the first
    /// microchannel layer, or the top-cooling ambient for stacks without
    /// fluid layers.
    pub fn inlet_temperature(&self) -> Kelvin {
        self.levels
            .iter()
            .find_map(|l| match l {
                Level::Fluid { spec, .. } => Some(spec.inlet_temperature),
                _ => None,
            })
            .or(self.config.top_cooling.map(|tc| tc.ambient))
            .expect("validated: a microchannel layer or top cooling exists")
    }

    pub(crate) fn wrap_solution(&self, x: Vec<f64>) -> Result<ThermalSolution, ThermalError> {
        let cells = self.grid.len();
        let mut maps = Vec::with_capacity(self.levels.len());
        for lvl in 0..self.levels.len() {
            let data = x[lvl * cells..(lvl + 1) * cells].to_vec();
            maps.push(
                Field2d::from_vec(self.grid.clone(), data)
                    .map_err(|e| ThermalError::Numerical(e.to_string()))?,
            );
        }
        Ok(ThermalSolution {
            levels: maps,
            fluid_levels: self.fluid_levels(),
            inlet: self.inlet_temperature(),
            capacity_rate: self.total_capacity_rate() / self.config.nx as f64,
        })
    }

    pub(crate) fn levels_heat_capacity_volumes(&self) -> Vec<f64> {
        // Per-cell heat capacity (J/K) per level, for the transient solver.
        let dx = self.grid.dx();
        let dy = self.grid.dy();
        self.levels
            .iter()
            .map(|l| match l {
                Level::Solid {
                    heat_capacity, dz, ..
                } => heat_capacity * dx * dy * dz,
                Level::Fluid { spec, .. } => {
                    spec.fluid.volumetric_heat_capacity.value()
                        * spec.channel_width.value()
                        * spec.channel_height.value()
                        * spec.channels_per_cell as f64
                        * dy
                }
            })
            .collect()
    }

    /// Fills `rhs` with the transient steady forcing (base RHS plus the
    /// power injection at the active layer) — the piece of the transient
    /// system that changes when the power map changes mid-trace.
    pub(crate) fn transient_rhs(
        &self,
        power: &Field2d,
        rhs: &mut Vec<f64>,
    ) -> Result<(), ThermalError> {
        let sources: &[(usize, &Field2d)] = &[(0, power)];
        self.validate_sources(sources)?;
        let op = self.operator()?;
        self.build_rhs(&op.rhs_base, sources, rhs);
        Ok(())
    }

    pub(crate) fn assemble_for_transient(
        &self,
        power: &Field2d,
    ) -> Result<(bright_num::CsrMatrix, Vec<f64>), ThermalError> {
        let mut rhs = Vec::new();
        self.transient_rhs(power, &mut rhs)?;
        let op = self.operator()?;
        Ok((op.matrix.clone(), rhs))
    }

    /// The current coefficient operating point: the first microchannel
    /// layer's (total flow, inlet temperature). `None` for stacks
    /// without fluid layers — those have no rampable coefficients.
    #[must_use]
    pub fn operating_point(&self) -> Option<(CubicMetersPerSecond, Kelvin)> {
        self.config.layers.iter().find_map(|l| match l {
            LayerSpec::Microchannel { spec, .. } => {
                Some((spec.total_flow, spec.inlet_temperature))
            }
            _ => None,
        })
    }

    /// Copies the cached operator's values into a same-pattern matrix —
    /// the O(nnz) sync the transient stepper uses after a
    /// [`ThermalModel::refresh_coefficients`] mid-trace.
    pub(crate) fn copy_operator_values_into(
        &self,
        dst: &mut bright_num::CsrMatrix,
    ) -> Result<(), ThermalError> {
        let op = self.operator()?;
        dst.copy_values_from(&op.matrix).map_err(ThermalError::from)
    }
}

impl ThermalSolution {
    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Temperature map (kelvin) of one level (0 = active silicon).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_map(&self, level: usize) -> &Field2d {
        &self.levels[level]
    }

    /// The junction (bottom, active-silicon) temperature map.
    pub fn junction_map(&self) -> &Field2d {
        &self.levels[0]
    }

    /// Peak temperature over the whole stack.
    pub fn max_temperature(&self) -> Kelvin {
        Kelvin::new(
            self.levels
                .iter()
                .map(Field2d::max)
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// `(level, ix, iy)` of the hottest cell.
    pub fn max_location(&self) -> (usize, usize, usize) {
        let mut best = (0, 0, 0);
        let mut best_t = f64::NEG_INFINITY;
        for (lvl, map) in self.levels.iter().enumerate() {
            let (ix, iy) = map.argmax();
            let t = map.get(ix, iy);
            if t > best_t {
                best_t = t;
                best = (lvl, ix, iy);
            }
        }
        best
    }

    /// Indices of the fluid levels.
    pub fn fluid_levels(&self) -> &[usize] {
        &self.fluid_levels
    }

    /// Fluid temperature profile along channel `ix` of the first fluid
    /// level, inlet to outlet.
    ///
    /// # Panics
    ///
    /// Panics if there is no fluid level or `ix` is out of range.
    pub fn channel_profile(&self, ix: usize) -> Vec<Kelvin> {
        let map = &self.levels[self.fluid_levels[0]];
        (0..map.grid().ny())
            .map(|iy| Kelvin::new(map.get(ix, iy)))
            .collect()
    }

    /// Mean fluid outlet temperature of the first fluid level.
    pub fn outlet_mean(&self) -> Kelvin {
        let map = &self.levels[self.fluid_levels[0]];
        let ny = map.grid().ny();
        let mean = map
            .mean_where(|_, iy| iy == ny - 1)
            .expect("non-empty outlet row");
        Kelvin::new(mean)
    }

    /// Heat absorbed by the coolant, `Σ_ch ṁc·(T_out − T_in)` — equals
    /// the injected power at steady state (energy balance).
    pub fn absorbed_power(&self) -> Watt {
        let map = &self.levels[self.fluid_levels[0]];
        let ny = map.grid().ny();
        let mut acc = 0.0;
        for ix in 0..map.grid().nx() {
            acc += self.capacity_rate * (map.get(ix, ny - 1) - self.inlet.value());
        }
        Watt::new(acc)
    }

    /// Coolant inlet temperature.
    pub fn inlet_temperature(&self) -> Kelvin {
        self.inlet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use bright_floorplan::{power7, PowerScenario};

    fn power_map(model: &ThermalModel, scenario: &PowerScenario) -> Field2d {
        scenario
            .rasterize(&power7::floorplan(), model.grid())
            .unwrap()
    }

    #[test]
    fn energy_balance_holds() {
        let model = presets::power7_stack().unwrap();
        let power = power_map(&model, &PowerScenario::full_load());
        let injected = power.integral();
        let sol = model.solve_steady(&power).unwrap();
        let absorbed = sol.absorbed_power().value();
        assert!(
            ((injected - absorbed) / injected).abs() < 1e-5,
            "injected {injected} vs absorbed {absorbed}"
        );
    }

    #[test]
    fn full_load_peak_matches_paper_ballpark() {
        // Fig. 9: peak 41 degC at 676 ml/min, 27 degC inlet.
        let model = presets::power7_stack().unwrap();
        let power = power_map(&model, &PowerScenario::full_load());
        let sol = model.solve_steady(&power).unwrap();
        let peak_c = sol.max_temperature().to_celsius().value();
        assert!(peak_c > 32.0 && peak_c < 50.0, "peak = {peak_c} degC");
        // Hottest spot sits in the active layer.
        let (lvl, _, _) = sol.max_location();
        assert_eq!(lvl, 0);
    }

    #[test]
    fn fluid_heats_downstream() {
        let model = presets::power7_stack().unwrap();
        let power = power_map(&model, &PowerScenario::full_load());
        let sol = model.solve_steady(&power).unwrap();
        let prof = sol.channel_profile(44);
        assert!(prof.last().unwrap().value() > prof.first().unwrap().value());
        assert!(sol.outlet_mean().value() > sol.inlet_temperature().value());
    }

    #[test]
    fn zero_power_stays_at_inlet() {
        let model = presets::power7_stack().unwrap();
        let zero = Field2d::zeros(model.grid().clone());
        let sol = model.solve_steady(&zero).unwrap();
        let max = sol.max_temperature().value();
        let inlet = sol.inlet_temperature().value();
        assert!((max - inlet).abs() < 1e-6, "max {max} vs inlet {inlet}");
    }

    #[test]
    fn hotter_cores_show_in_junction_map() {
        let model = presets::power7_stack().unwrap();
        let power = power_map(&model, &PowerScenario::full_load());
        let sol = model.solve_steady(&power).unwrap();
        let j = sol.junction_map();
        // Core band (bottom band y ~ 2.5 mm) hotter than center L3 band.
        let core_t = j
            .mean_where(|ix, iy| {
                let (x, y) = j.grid().cell_center(ix, iy).unwrap();
                (1.3e-3..24e-3).contains(&x) && y < 5e-3
            })
            .unwrap();
        let l3_t = j
            .mean_where(|_, iy| {
                let y = (iy as f64 + 0.5) * j.grid().dy();
                (8e-3..13e-3).contains(&y)
            })
            .unwrap();
        assert!(core_t > l3_t, "core {core_t} vs L3 {l3_t}");
    }

    #[test]
    fn doubled_flow_lowers_peak() {
        let base = presets::power7_stack().unwrap();
        let power = power_map(&base, &PowerScenario::full_load());
        let hot = base.solve_steady(&power).unwrap().max_temperature();

        let mut config = base.config().clone();
        if let LayerSpec::Microchannel { spec, .. } = &mut config.layers[1] {
            spec.total_flow = spec.total_flow * 2.0;
        }
        let fast = ThermalModel::new(config).unwrap();
        let cool = fast.solve_steady(&power).unwrap().max_temperature();
        assert!(cool.value() < hot.value());
    }

    #[test]
    fn refresh_coefficients_matches_cold_rebuild_exactly() {
        // A model refreshed to (flow₂, T₂) must carry the *bitwise* same
        // operator values and base RHS as a model built at (flow₂, T₂)
        // from scratch — both run the same stamp sequence through the
        // same accumulation order.
        let mut model = presets::power7_stack().unwrap();
        let power = power_map(&model, &PowerScenario::full_load());
        model.solve_steady(&power).unwrap(); // force assembly
        let flow2 = CubicMetersPerSecond::from_milliliters_per_minute(211.0);
        let inlet2 = Kelvin::new(306.0);

        let mut config2 = model.config().clone();
        for layer in &mut config2.layers {
            if let LayerSpec::Microchannel { spec, .. } = layer {
                spec.total_flow = flow2;
                spec.inlet_temperature = inlet2;
            }
        }
        let fresh = ThermalModel::new(config2).unwrap();
        let fresh_op = fresh.operator().unwrap();

        model.refresh_coefficients(flow2, inlet2).unwrap();
        let refreshed_op = model.operator().unwrap();

        assert_eq!(refreshed_op.matrix, fresh_op.matrix, "operator values diverged");
        assert_eq!(refreshed_op.rhs_base, fresh_op.rhs_base, "base RHS diverged");
        assert_eq!(model.assembly_count(), 1);
        assert_eq!(model.refresh_count(), 1);
        assert_eq!(model.coefficient_epoch(), 1);

        // And the solutions agree.
        let a = model.solve_steady(&power).unwrap();
        let b = fresh.solve_steady(&power).unwrap();
        assert!((a.max_temperature().value() - b.max_temperature().value()).abs() < 1e-8);
    }

    #[test]
    fn flow_sweep_through_refresh_assembles_once() {
        // The paper's flow-rate ablation: one model, one assembly, N
        // refreshed solves; the warm session follows along.
        let mut model = presets::power7_stack().unwrap();
        let power = power_map(&model, &PowerScenario::full_load());
        let mut session = model.session().unwrap();
        let mut peaks = Vec::new();
        for ml_min in [676.0, 400.0, 200.0, 100.0, 48.0] {
            model
                .refresh_coefficients(
                    CubicMetersPerSecond::from_milliliters_per_minute(ml_min),
                    Kelvin::new(300.0),
                )
                .unwrap();
            let sol = model.solve_steady_warm(&power, &mut session).unwrap();
            peaks.push(sol.max_temperature().value());
        }
        // Less flow → hotter chip, monotonically.
        for pair in peaks.windows(2) {
            assert!(pair[1] > pair[0], "peaks not monotone: {peaks:?}");
        }
        assert_eq!(model.assembly_count(), 1, "sweep must not re-assemble");
        assert_eq!(model.refresh_count(), 5);
        // The session re-synced values per refresh but never re-bound.
        assert_eq!(session.stats().binds, 1);
        assert_eq!(session.stats().refreshes, 5);
    }

    #[test]
    fn refresh_rejects_invalid_updates_and_leaves_model_usable() {
        let mut model = presets::power7_stack().unwrap();
        model.operator().unwrap();
        let before_epoch = model.coefficient_epoch();
        // Widening the channels beyond the pitch fails validation; the
        // model must be left untouched and still solvable.
        let pitch_um = model.config().pitch().to_micrometers();
        let err = model.refresh_microchannels(|spec| {
            spec.channel_width = Meters::from_micrometers(pitch_um * 1.5);
        });
        assert!(err.is_err(), "invalid update must be rejected");
        assert_eq!(model.coefficient_epoch(), before_epoch);
        let power = power_map(&model, &PowerScenario::full_load());
        model.solve_steady(&power).unwrap();
    }

    #[test]
    fn power_map_grid_is_checked() {
        let model = presets::power7_stack().unwrap();
        let wrong = Field2d::zeros(Grid2d::new(10, 10, 1e-3, 1e-3).unwrap());
        assert!(matches!(
            model.solve_steady(&wrong),
            Err(ThermalError::PowerMapMismatch(_))
        ));
    }

    #[test]
    fn stack_without_channels_is_rejected() {
        let mut config = presets::power7_stack().unwrap().config().clone();
        config.layers.retain(|l| matches!(l, LayerSpec::Solid { .. }));
        assert!(matches!(
            ThermalModel::new(config),
            Err(ThermalError::InvalidConfig(_))
        ));
    }

    #[test]
    fn single_cell_stack_matches_hand_calculation() {
        // 1x1 grid: the network reduces to a resistance chain that can be
        // checked by hand. All power P flows into the single fluid cell:
        // T_fluid = T_in + P/(rho c V), T_junction = T_fluid + P/G with
        // 1/G = 1/G_half + 1/G_conv.
        use crate::stack::{LayerSpec, MicrochannelSpec, StackConfig};
        use crate::Material;
        use bright_flow::fluid::TemperatureDependentFluid;
        use bright_units::CubicMetersPerSecond;

        let fluid = TemperatureDependentFluid::vanadium_electrolyte()
            .at(Kelvin::new(300.0))
            .unwrap();
        let config = StackConfig {
            width: Meters::from_micrometers(300.0),
            height: Meters::from_millimeters(22.0),
            nx: 1,
            ny: 1,
            layers: vec![
                LayerSpec::Solid {
                    name: "die".into(),
                    material: Material::silicon(),
                    thickness: Meters::from_micrometers(400.0),
                    sublayers: 1,
                },
                LayerSpec::Microchannel {
                    name: "mc".into(),
                    spec: MicrochannelSpec {
                        channel_width: Meters::from_micrometers(200.0),
                        channel_height: Meters::from_micrometers(400.0),
                        channels_per_cell: 1,
                        fluid,
                        total_flow: CubicMetersPerSecond::from_milliliters_per_minute(7.68),
                        inlet_temperature: Kelvin::new(300.0),
                        wall_material: Material::silicon(),
                    },
                },
            ],
            top_cooling: None,
        };
        let model = ThermalModel::new(config).unwrap();
        let p = 1.0; // W
        let area = model.grid().cell_area();
        let power = Field2d::constant(model.grid().clone(), p / area);
        let sol = model.solve_steady(&power).unwrap();

        let cap_rate = model.total_capacity_rate();
        let t_fluid_expected = 300.0 + p / cap_rate;
        let fluid_lvl = model.fluid_levels()[0];
        let t_fluid = sol.level_map(fluid_lvl).get(0, 0);
        assert!(
            (t_fluid - t_fluid_expected).abs() < 1e-6,
            "{t_fluid} vs {t_fluid_expected}"
        );
        // Junction is hotter than the fluid, by P/G for some finite G.
        let t_j = sol.junction_map().get(0, 0);
        assert!(t_j > t_fluid);
        let g_implied = p / (t_j - t_fluid);
        assert!(g_implied > 0.1 && g_implied < 100.0, "G = {g_implied} W/K");
    }
}
