//! Thermal material library.

use bright_units::{JoulePerCubicMeterKelvin, WattPerMeterKelvin};

/// A solid material's thermal properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Thermal conductivity (W/(m·K)).
    pub conductivity: WattPerMeterKelvin,
    /// Volumetric heat capacity (J/(m³·K)).
    pub heat_capacity: JoulePerCubicMeterKelvin,
}

impl Material {
    /// Bulk silicon near operating temperature (k ≈ 130 W/(m·K) at 350 K,
    /// ρc_p ≈ 1.63 MJ/(m³·K)) — the 3D-ICE default.
    pub fn silicon() -> Self {
        Self {
            conductivity: WattPerMeterKelvin::new(130.0),
            heat_capacity: JoulePerCubicMeterKelvin::new(1.63e6),
        }
    }

    /// Silicon dioxide (BEOL dielectric).
    pub fn silicon_dioxide() -> Self {
        Self {
            conductivity: WattPerMeterKelvin::new(1.4),
            heat_capacity: JoulePerCubicMeterKelvin::new(1.65e6),
        }
    }

    /// Copper (power/ground planes, heat spreaders).
    pub fn copper() -> Self {
        Self {
            conductivity: WattPerMeterKelvin::new(400.0),
            heat_capacity: JoulePerCubicMeterKelvin::new(3.44e6),
        }
    }

    /// A typical thermal interface material.
    pub fn tim() -> Self {
        Self {
            conductivity: WattPerMeterKelvin::new(4.0),
            heat_capacity: JoulePerCubicMeterKelvin::new(2.0e6),
        }
    }

    /// Checks the properties are positive and finite.
    pub fn is_physical(&self) -> bool {
        self.conductivity.value() > 0.0
            && self.conductivity.is_finite()
            && self.heat_capacity.value() > 0.0
            && self.heat_capacity.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_physical_and_ordered() {
        for m in [
            Material::silicon(),
            Material::silicon_dioxide(),
            Material::copper(),
            Material::tim(),
        ] {
            assert!(m.is_physical());
        }
        assert!(Material::copper().conductivity > Material::silicon().conductivity);
        assert!(Material::silicon().conductivity > Material::silicon_dioxide().conductivity);
    }

    #[test]
    fn degenerate_material_detected() {
        let bad = Material {
            conductivity: WattPerMeterKelvin::new(0.0),
            heat_capacity: JoulePerCubicMeterKelvin::new(1.0),
        };
        assert!(!bad.is_physical());
    }
}
