//! The POWER7+ stack of the paper's case study.

use crate::stack::{LayerSpec, MicrochannelSpec, StackConfig};
use crate::{Material, ThermalError, ThermalModel};
use bright_flow::fluid::TemperatureDependentFluid;
use bright_units::{CubicMetersPerSecond, Kelvin, Meters};

/// Default channel count (= grid columns), one per Table II channel.
pub const POWER7_NX: usize = 88;

/// Default grid rows along the channels.
pub const POWER7_NY: usize = 44;

/// Builds the POWER7+ stack at the Table II operating point:
/// 88 channels (200 µm × 400 µm) at 300 µm pitch, 676 ml/min total,
/// 27 °C (300 K) inlet, flip-chip die with channels etched on top
/// (Fig. 1/Fig. 5 of the paper).
///
/// # Errors
///
/// Returns [`ThermalError`] variants if construction fails (cannot happen
/// for the encoded constants).
pub fn power7_stack() -> Result<ThermalModel, ThermalError> {
    power7_stack_at(
        CubicMetersPerSecond::from_milliliters_per_minute(676.0),
        Kelvin::new(300.0),
    )
}

/// POWER7+ stack with explicit total flow and inlet temperature — used by
/// the paper's Section III-B throttling experiments (48 ml/min, 37 °C
/// inlet).
///
/// # Errors
///
/// Returns [`ThermalError::InvalidConfig`] for non-physical flow or inlet
/// temperature.
pub fn power7_stack_at(
    total_flow: CubicMetersPerSecond,
    inlet: Kelvin,
) -> Result<ThermalModel, ThermalError> {
    let fluid = TemperatureDependentFluid::vanadium_electrolyte()
        .at(inlet)
        .map_err(|e| ThermalError::InvalidConfig(e.to_string()))?;
    ThermalModel::new(StackConfig {
        width: Meters::from_millimeters(26.55),
        height: Meters::from_millimeters(21.34),
        nx: POWER7_NX,
        ny: POWER7_NY,
        layers: vec![
            LayerSpec::Solid {
                name: "die".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(400.0),
                sublayers: 2,
            },
            LayerSpec::Microchannel {
                name: "flow-cell channels".into(),
                spec: MicrochannelSpec {
                    channel_width: Meters::from_micrometers(200.0),
                    channel_height: Meters::from_micrometers(400.0),
                    channels_per_cell: 1,
                    fluid,
                    total_flow,
                    inlet_temperature: inlet,
                    wall_material: Material::silicon(),
                },
            },
            LayerSpec::Solid {
                name: "cap".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(300.0),
                sublayers: 1,
            },
        ],
        top_cooling: None,
    })
}

/// POWER7+ stack with the plane resolution multiplied by `scale` in
/// both directions (`scale = 1` is [`power7_stack`]): the physical die
/// and operating point are unchanged; the microchannel array is
/// refined with the grid (one channel per column at `scale`× finer
/// pitch, width shrunk proportionally) so the per-cell geometry stays
/// valid. `scale = 8` puts the 4-level stack at
/// `704 × 352 × 4 ≈ 991k` unknowns, exercising the threaded-kernel
/// large-grid path. The fluid layer keeps the session on SSOR at every
/// size (see [`ThermalModel::solve_options`]); the geometric-multigrid
/// regime is reached by the conduction-only
/// [`conduction_stack_scaled`].
///
/// # Errors
///
/// Returns [`ThermalError::InvalidConfig`] for `scale = 0` (and
/// construction errors as in [`power7_stack`], which cannot happen for
/// the encoded constants).
pub fn power7_stack_scaled(scale: usize) -> Result<ThermalModel, ThermalError> {
    if scale == 0 {
        return Err(ThermalError::InvalidConfig(
            "preset scale must be at least 1".into(),
        ));
    }
    let inlet = Kelvin::new(300.0);
    let total_flow = CubicMetersPerSecond::from_milliliters_per_minute(676.0);
    let fluid = TemperatureDependentFluid::vanadium_electrolyte()
        .at(inlet)
        .map_err(|e| ThermalError::InvalidConfig(e.to_string()))?;
    ThermalModel::new(StackConfig {
        width: Meters::from_millimeters(26.55),
        height: Meters::from_millimeters(21.34),
        nx: POWER7_NX * scale,
        ny: POWER7_NY * scale,
        layers: vec![
            LayerSpec::Solid {
                name: "die".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(400.0),
                sublayers: 2,
            },
            LayerSpec::Microchannel {
                name: "flow-cell channels".into(),
                spec: MicrochannelSpec {
                    channel_width: Meters::from_micrometers(200.0 / scale as f64),
                    channel_height: Meters::from_micrometers(400.0),
                    channels_per_cell: 1,
                    fluid,
                    total_flow,
                    inlet_temperature: inlet,
                    wall_material: Material::silicon(),
                },
            },
            LayerSpec::Solid {
                name: "cap".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(300.0),
                sublayers: 1,
            },
        ],
        top_cooling: None,
    })
}

/// The conventional-cooling baseline the paper argues against, scaled
/// for large-grid solver work: the same POWER7+ die (two 400 µm silicon
/// tiers and a cap, no microchannels) under a forced-air heat sink,
/// with the plane resolution multiplied by `scale` in both directions.
/// The operator is pure conduction — symmetric positive definite — so
/// [`ThermalModel::solve_options`] switches the session to the
/// geometric-multigrid preconditioner once `nx·ny·levels` crosses
/// [`bright_num::mg_min_unknowns`]: `scale = 4` gives
/// `352 × 176 × 5 ≈ 310k` unknowns, `scale = 8` gives
/// `704 × 352 × 5 ≈ 1.24M`.
///
/// # Errors
///
/// Returns [`ThermalError::InvalidConfig`] for `scale = 0` (and
/// construction errors as in [`power7_stack`], which cannot happen for
/// the encoded constants).
pub fn conduction_stack_scaled(scale: usize) -> Result<ThermalModel, ThermalError> {
    if scale == 0 {
        return Err(ThermalError::InvalidConfig(
            "preset scale must be at least 1".into(),
        ));
    }
    ThermalModel::new(StackConfig {
        width: Meters::from_millimeters(26.55),
        height: Meters::from_millimeters(21.34),
        nx: POWER7_NX * scale,
        ny: POWER7_NY * scale,
        layers: vec![
            LayerSpec::Solid {
                name: "die0".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(400.0),
                sublayers: 2,
            },
            LayerSpec::Solid {
                name: "die1".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(400.0),
                sublayers: 2,
            },
            LayerSpec::Solid {
                name: "cap".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(300.0),
                sublayers: 1,
            },
        ],
        top_cooling: Some(crate::stack::TopCooling::forced_air()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_builds() {
        let m = power7_stack().unwrap();
        assert_eq!(m.level_count(), 4);
        assert_eq!(m.fluid_levels(), vec![2]);
        assert_eq!(m.grid().nx(), 88);
        // Total capacity rate ~ 47 W/K for 676 ml/min of the electrolyte.
        let cr = m.total_capacity_rate();
        assert!((cr - 47.2).abs() < 1.0, "capacity rate {cr}");
    }

    #[test]
    fn scaled_preset_multiplies_the_plane() {
        let m = power7_stack_scaled(2).unwrap();
        assert_eq!(m.grid().nx(), 2 * POWER7_NX);
        assert_eq!(m.grid().ny(), 2 * POWER7_NY);
        assert_eq!(m.level_count(), 4);
        // Same physical die: capacity rate is unchanged by resolution.
        let cr = m.total_capacity_rate();
        assert!((cr - 47.2).abs() < 1.0, "capacity rate {cr}");
        assert!(power7_stack_scaled(0).is_err());
    }

    #[test]
    fn conduction_preset_is_fluid_free() {
        let m = conduction_stack_scaled(1).unwrap();
        assert_eq!(m.level_count(), 5);
        assert!(m.fluid_levels().is_empty());
        assert!(conduction_stack_scaled(0).is_err());
    }

    #[test]
    fn preset_rejects_bad_operating_points() {
        assert!(power7_stack_at(
            CubicMetersPerSecond::from_milliliters_per_minute(0.0),
            Kelvin::new(300.0)
        )
        .is_err());
        assert!(power7_stack_at(
            CubicMetersPerSecond::from_milliliters_per_minute(100.0),
            Kelvin::new(-4.0)
        )
        .is_err());
    }
}
