//! Electrical quantities: potential, current, power, resistance, charge.

use crate::geometry::SquareMeters;

/// Electric potential in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volt(f64);
quantity_impl!(Volt, "V");

/// Electric current in amperes. Positive cell current denotes discharge
/// (power delivered to the load) throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ampere(f64);
quantity_impl!(Ampere, "A");

/// Electric power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watt(f64);
quantity_impl!(Watt, "W");

/// Electrical resistance in ohms.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ohm(f64);
quantity_impl!(Ohm, "ohm");

/// Electric charge in coulombs.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Coulomb(f64);
quantity_impl!(Coulomb, "C");

/// Current density in A/m². (1 mA/cm² = 10 A/m².)
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct AmperePerSquareMeter(f64);
quantity_impl!(AmperePerSquareMeter, "A/m^2");

/// Areal power density in W/m². (1 W/cm² = 10⁴ W/m².)
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WattPerSquareMeter(f64);
quantity_impl!(WattPerSquareMeter, "W/m^2");

/// Ionic or electronic conductivity in S/m.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SiemensPerMeter(f64);
quantity_impl!(SiemensPerMeter, "S/m");

impl core::ops::Mul<Ampere> for Volt {
    type Output = Watt;
    #[inline]
    fn mul(self, rhs: Ampere) -> Watt {
        Watt::new(self.0 * rhs.value())
    }
}

impl core::ops::Mul<Volt> for Ampere {
    type Output = Watt;
    #[inline]
    fn mul(self, rhs: Volt) -> Watt {
        Watt::new(self.0 * rhs.value())
    }
}

impl core::ops::Mul<Ampere> for Ohm {
    type Output = Volt;
    #[inline]
    fn mul(self, rhs: Ampere) -> Volt {
        Volt::new(self.0 * rhs.value())
    }
}

impl core::ops::Mul<Ohm> for Ampere {
    type Output = Volt;
    #[inline]
    fn mul(self, rhs: Ohm) -> Volt {
        Volt::new(self.0 * rhs.value())
    }
}

impl core::ops::Div<Ampere> for Volt {
    type Output = Ohm;
    #[inline]
    fn div(self, rhs: Ampere) -> Ohm {
        Ohm::new(self.0 / rhs.value())
    }
}

impl core::ops::Div<Volt> for Watt {
    type Output = Ampere;
    #[inline]
    fn div(self, rhs: Volt) -> Ampere {
        Ampere::new(self.0 / rhs.value())
    }
}

impl core::ops::Div<Ampere> for Watt {
    type Output = Volt;
    #[inline]
    fn div(self, rhs: Ampere) -> Volt {
        Volt::new(self.0 / rhs.value())
    }
}

impl core::ops::Mul<SquareMeters> for AmperePerSquareMeter {
    type Output = Ampere;
    #[inline]
    fn mul(self, rhs: SquareMeters) -> Ampere {
        Ampere::new(self.0 * rhs.value())
    }
}

impl core::ops::Mul<SquareMeters> for WattPerSquareMeter {
    type Output = Watt;
    #[inline]
    fn mul(self, rhs: SquareMeters) -> Watt {
        Watt::new(self.0 * rhs.value())
    }
}

impl core::ops::Div<SquareMeters> for Ampere {
    type Output = AmperePerSquareMeter;
    #[inline]
    fn div(self, rhs: SquareMeters) -> AmperePerSquareMeter {
        AmperePerSquareMeter::new(self.0 / rhs.value())
    }
}

impl core::ops::Div<SquareMeters> for Watt {
    type Output = WattPerSquareMeter;
    #[inline]
    fn div(self, rhs: SquareMeters) -> WattPerSquareMeter {
        WattPerSquareMeter::new(self.0 / rhs.value())
    }
}

impl AmperePerSquareMeter {
    /// Expresses the current density in mA/cm², the unit of the paper's
    /// polarization plots (Fig. 3).
    #[inline]
    pub fn to_milliamps_per_square_centimeter(self) -> f64 {
        self.0 / 10.0
    }

    /// Builds a current density from a value in mA/cm².
    #[inline]
    pub fn from_milliamps_per_square_centimeter(value: f64) -> Self {
        Self::new(value * 10.0)
    }
}

impl WattPerSquareMeter {
    /// Expresses the power density in W/cm², the unit used for chip power
    /// densities in the paper (e.g. 26.7 W/cm² peak for the POWER7+).
    #[inline]
    pub fn to_watts_per_square_centimeter(self) -> f64 {
        self.0 / 1e4
    }

    /// Builds a power density from a value in W/cm².
    #[inline]
    pub fn from_watts_per_square_centimeter(value: f64) -> Self {
        Self::new(value * 1e4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Meters;

    #[test]
    fn ohms_law_and_power() {
        let v = Volt::new(1.0);
        let i = Ampere::new(6.0);
        assert_eq!((v * i).value(), 6.0);
        assert_eq!((i * v).value(), 6.0);
        assert!(((v / i).value() - 1.0 / 6.0).abs() < 1e-15);
        assert_eq!((Ohm::new(0.5) * Ampere::new(2.0)).value(), 1.0);
    }

    #[test]
    fn density_times_area() {
        let a = Meters::new(0.02) * Meters::new(0.002); // 33x smaller than chip
        let j = AmperePerSquareMeter::from_milliamps_per_square_centimeter(30.0);
        let i = j * a;
        assert!((i.value() - 300.0 * 4e-5).abs() < 1e-12);
    }

    #[test]
    fn unit_conversions_roundtrip() {
        let j = AmperePerSquareMeter::new(250.0);
        assert!((j.to_milliamps_per_square_centimeter() - 25.0).abs() < 1e-12);
        let p = WattPerSquareMeter::from_watts_per_square_centimeter(26.7);
        assert!((p.value() - 2.67e5).abs() < 1e-9);
    }
}
