//! Universal physical constants (CODATA 2018 values).

/// Universal (molar) gas constant `R` in J/(mol·K).
pub const GAS_CONSTANT: f64 = 8.314_462_618;

/// Faraday constant `F` in C/mol.
pub const FARADAY: f64 = 96_485.332_12;

/// Standard atmospheric pressure in Pa.
pub const ATMOSPHERE: f64 = 101_325.0;

/// Absolute zero expressed in degrees Celsius.
pub const ABSOLUTE_ZERO_CELSIUS: f64 = -273.15;

/// Boltzmann constant `k_B` in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge `e` in C.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Avogadro constant `N_A` in 1/mol.
pub const AVOGADRO: f64 = 6.022_140_76e23;

/// Thermal voltage `RT/F` in volts at the given absolute temperature.
///
/// This is the scale of the Nernst and Butler–Volmer exponentials;
/// ≈ 25.7 mV at 298.15 K.
///
/// # Examples
///
/// ```
/// let vt = bright_units::constants::thermal_voltage(298.15);
/// assert!((vt - 0.02569).abs() < 1e-4);
/// ```
#[inline]
pub fn thermal_voltage(temperature_kelvin: f64) -> f64 {
    GAS_CONSTANT * temperature_kelvin / FARADAY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faraday_is_avogadro_times_charge() {
        assert!((FARADAY - AVOGADRO * ELEMENTARY_CHARGE).abs() < 1e-3);
    }

    #[test]
    fn gas_constant_is_avogadro_times_boltzmann() {
        assert!((GAS_CONSTANT - AVOGADRO * BOLTZMANN).abs() < 1e-9);
    }

    #[test]
    fn thermal_voltage_at_body_temperature() {
        let vt = thermal_voltage(310.15);
        assert!(vt > 0.0266 && vt < 0.0268, "got {vt}");
    }
}
