//! Absolute and relative temperature types.

use crate::constants::ABSOLUTE_ZERO_CELSIUS;

/// Absolute (thermodynamic) temperature in kelvin.
///
/// All physics code in the workspace carries temperatures as `Kelvin`;
/// [`Celsius`] exists for human-facing input/output only.
///
/// # Examples
///
/// ```
/// use bright_units::{Kelvin, Celsius};
///
/// let t = Kelvin::new(300.0);
/// assert!((t.to_celsius().value() - 26.85).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(f64);
quantity_impl!(Kelvin, "K");

/// Temperature on the Celsius scale, for display and configuration.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);
quantity_impl!(Celsius, "degC");

impl Kelvin {
    /// Converts to the Celsius scale.
    #[inline]
    pub fn to_celsius(self) -> Celsius {
        Celsius::new(self.0 + ABSOLUTE_ZERO_CELSIUS)
    }

    /// Returns `true` for physically meaningful absolute temperatures
    /// (finite and strictly positive).
    #[inline]
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl Celsius {
    /// Converts to the absolute (kelvin) scale.
    #[inline]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 - ABSOLUTE_ZERO_CELSIUS)
    }
}

impl From<Celsius> for Kelvin {
    #[inline]
    fn from(c: Celsius) -> Kelvin {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    #[inline]
    fn from(k: Kelvin) -> Celsius {
        k.to_celsius()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_roundtrip() {
        let c = Celsius::new(27.0);
        let k: Kelvin = c.into();
        assert!((k.value() - 300.15).abs() < 1e-12);
        let back: Celsius = k.into();
        assert!((back.value() - 27.0).abs() < 1e-12);
    }

    #[test]
    fn physicality_check() {
        assert!(Kelvin::new(300.0).is_physical());
        assert!(!Kelvin::new(0.0).is_physical());
        assert!(!Kelvin::new(-1.0).is_physical());
        assert!(!Kelvin::new(f64::NAN).is_physical());
    }

    #[test]
    fn display_formats_with_unit() {
        assert_eq!(format!("{:.2}", Kelvin::new(300.154)), "300.15 K");
        assert_eq!(format!("{}", Celsius::new(41.0)), "41 degC");
    }
}
