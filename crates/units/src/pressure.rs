//! Pressure and pressure-gradient quantities.

use crate::flowrate::CubicMetersPerSecond;
use crate::geometry::Meters;

/// Pressure in pascals.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Pascal(f64);
quantity_impl!(Pascal, "Pa");

/// Pressure gradient in Pa/m.
///
/// The paper quotes channel pressure drops per unit length in bar/cm
/// (1 bar/cm = 10⁷ Pa/m).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PascalPerMeter(f64);
quantity_impl!(PascalPerMeter, "Pa/m");

impl Pascal {
    /// Builds a pressure from a value in bar.
    #[inline]
    pub fn from_bar(value: f64) -> Self {
        Self::new(value * 1e5)
    }

    /// Expresses the pressure in bar.
    #[inline]
    pub fn to_bar(self) -> f64 {
        self.0 / 1e5
    }

    /// Ideal hydraulic power `Δp·V̇` of a stream pushed against this
    /// pressure drop, in watts. Divide by pump efficiency for shaft power.
    #[inline]
    pub fn hydraulic_power(self, flow: CubicMetersPerSecond) -> crate::Watt {
        crate::Watt::new(self.0 * flow.value())
    }
}

impl PascalPerMeter {
    /// Builds a pressure gradient from a value in bar/cm.
    #[inline]
    pub fn from_bar_per_centimeter(value: f64) -> Self {
        Self::new(value * 1e7)
    }

    /// Expresses the pressure gradient in bar/cm.
    #[inline]
    pub fn to_bar_per_centimeter(self) -> f64 {
        self.0 / 1e7
    }
}

impl core::ops::Mul<Meters> for PascalPerMeter {
    type Output = Pascal;
    #[inline]
    fn mul(self, rhs: Meters) -> Pascal {
        Pascal::new(self.0 * rhs.value())
    }
}

impl core::ops::Div<Meters> for Pascal {
    type Output = PascalPerMeter;
    #[inline]
    fn div(self, rhs: Meters) -> PascalPerMeter {
        PascalPerMeter::new(self.0 / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_conversions() {
        let grad = PascalPerMeter::from_bar_per_centimeter(1.5);
        assert!((grad.value() - 1.5e7).abs() < 1e-6);
        assert!((grad.to_bar_per_centimeter() - 1.5).abs() < 1e-12);
        let p = Pascal::from_bar(3.3);
        assert!((p.value() - 3.3e5).abs() < 1e-9);
    }

    #[test]
    fn gradient_times_length() {
        let grad = PascalPerMeter::from_bar_per_centimeter(1.5);
        let dp = grad * Meters::from_millimeters(22.0);
        assert!((dp.to_bar() - 3.3).abs() < 1e-12);
    }

    #[test]
    fn hydraulic_power_matches_paper_scale() {
        // dp * flow for the paper's quoted numbers lands in the watt range.
        let dp = Pascal::from_bar(1.95);
        let flow = CubicMetersPerSecond::from_milliliters_per_minute(676.0);
        let p = dp.hydraulic_power(flow);
        assert!(p.value() > 1.0 && p.value() < 3.0, "got {p}");
    }
}
