//! Physical quantities, constants and unit conversions for the
//! `bright-silicon` workspace.
//!
//! Every physical value that crosses a crate boundary in this workspace is
//! wrapped in a newtype from this crate ([`Kelvin`], [`Volt`], [`Pascal`],
//! ...), so that a pressure can never be passed where a potential is
//! expected. The newtypes are thin `f64` wrappers: construction and access
//! are free, and a small set of physically meaningful arithmetic operations
//! is provided (same-type addition, scalar scaling, and cross-type products
//! such as `Volt * Ampere = Watt`).
//!
//! # Examples
//!
//! ```
//! use bright_units::{Celsius, Kelvin, Volt, Ampere};
//!
//! let inlet = Celsius::new(27.0).to_kelvin();
//! assert!((inlet.value() - 300.15).abs() < 1e-12);
//!
//! let power = Volt::new(1.0) * Ampere::new(6.0);
//! assert_eq!(power.value(), 6.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

#[macro_use]
mod quantity;

pub mod constants;
pub mod electrical;
pub mod flowrate;
pub mod geometry;
pub mod pressure;
pub mod temperature;

pub use electrical::{
    Ampere, AmperePerSquareMeter, Coulomb, Ohm, SiemensPerMeter, Volt, Watt, WattPerSquareMeter,
};
pub use flowrate::{CubicMetersPerSecond, KilogramsPerSecond, MetersPerSecond};
pub use geometry::{CubicMeters, Meters, SquareMeters};
pub use pressure::{Pascal, PascalPerMeter};
pub use temperature::{Celsius, Kelvin};

/// Amount-of-substance concentration in mol/m³ (the SI unit used throughout
/// the electrochemistry crates; note 1 mol/L = 1000 mol/m³).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MolePerCubicMeter(f64);
quantity_impl!(MolePerCubicMeter, "mol/m^3");

/// Diffusion coefficient in m²/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SquareMetersPerSecond(f64);
quantity_impl!(SquareMetersPerSecond, "m^2/s");

/// Dynamic viscosity in Pa·s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct PascalSecond(f64);
quantity_impl!(PascalSecond, "Pa.s");

/// Mass density in kg/m³.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct KilogramPerCubicMeter(f64);
quantity_impl!(KilogramPerCubicMeter, "kg/m^3");

/// Thermal conductivity in W/(m·K).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WattPerMeterKelvin(f64);
quantity_impl!(WattPerMeterKelvin, "W/(m.K)");

/// Volumetric heat capacity in J/(m³·K).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct JoulePerCubicMeterKelvin(f64);
quantity_impl!(JoulePerCubicMeterKelvin, "J/(m^3.K)");

/// Specific heat capacity in J/(kg·K).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct JoulePerKilogramKelvin(f64);
quantity_impl!(JoulePerKilogramKelvin, "J/(kg.K)");

/// Heat-transfer coefficient in W/(m²·K).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct WattPerSquareMeterKelvin(f64);
quantity_impl!(WattPerSquareMeterKelvin, "W/(m^2.K)");

/// Kinetic (electrochemical) rate constant in m/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MetersPerSecondRate(f64);
quantity_impl!(MetersPerSecondRate, "m/s");

/// Thermal resistance in K/W.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct KelvinPerWatt(f64);
quantity_impl!(KelvinPerWatt, "K/W");

/// Molar activation energy in J/mol (used by Arrhenius temperature models).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct JoulePerMole(f64);
quantity_impl!(JoulePerMole, "J/mol");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentration_roundtrip() {
        let c = MolePerCubicMeter::new(2000.0);
        assert_eq!(c.value(), 2000.0);
        assert_eq!(format!("{c}"), "2000 mol/m^3");
    }

    #[test]
    fn quantity_arithmetic() {
        let a = MolePerCubicMeter::new(10.0);
        let b = MolePerCubicMeter::new(4.0);
        assert_eq!((a + b).value(), 14.0);
        assert_eq!((a - b).value(), 6.0);
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((a / 2.0).value(), 5.0);
        assert_eq!((2.0 * a).value(), 20.0);
    }

    #[test]
    fn ratio_of_same_quantity_is_dimensionless() {
        let a = JoulePerMole::new(30.0);
        let b = JoulePerMole::new(10.0);
        assert_eq!(a / b, 3.0);
    }
}
