//! Length, area and volume quantities.

/// Length in metres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Meters(f64);
quantity_impl!(Meters, "m");

/// Area in square metres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SquareMeters(f64);
quantity_impl!(SquareMeters, "m^2");

/// Volume in cubic metres.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct CubicMeters(f64);
quantity_impl!(CubicMeters, "m^3");

impl Meters {
    /// Builds a length from a value in millimetres.
    #[inline]
    pub fn from_millimeters(value: f64) -> Self {
        Self::new(value * 1e-3)
    }

    /// Builds a length from a value in micrometres.
    #[inline]
    pub fn from_micrometers(value: f64) -> Self {
        Self::new(value * 1e-6)
    }

    /// Expresses the length in millimetres.
    #[inline]
    pub fn to_millimeters(self) -> f64 {
        self.0 * 1e3
    }

    /// Expresses the length in micrometres.
    #[inline]
    pub fn to_micrometers(self) -> f64 {
        self.0 * 1e6
    }
}

impl SquareMeters {
    /// Expresses the area in square centimetres.
    #[inline]
    pub fn to_square_centimeters(self) -> f64 {
        self.0 * 1e4
    }

    /// Builds an area from a value in square centimetres.
    #[inline]
    pub fn from_square_centimeters(value: f64) -> Self {
        Self::new(value * 1e-4)
    }
}

impl core::ops::Mul<Meters> for Meters {
    type Output = SquareMeters;
    #[inline]
    fn mul(self, rhs: Meters) -> SquareMeters {
        SquareMeters::new(self.0 * rhs.0)
    }
}

impl core::ops::Mul<Meters> for SquareMeters {
    type Output = CubicMeters;
    #[inline]
    fn mul(self, rhs: Meters) -> CubicMeters {
        CubicMeters::new(self.0 * rhs.value())
    }
}

impl core::ops::Div<Meters> for SquareMeters {
    type Output = Meters;
    #[inline]
    fn div(self, rhs: Meters) -> Meters {
        Meters::new(self.0 / rhs.value())
    }
}

impl core::ops::Div<Meters> for CubicMeters {
    type Output = SquareMeters;
    #[inline]
    fn div(self, rhs: Meters) -> SquareMeters {
        SquareMeters::new(self.0 / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_area_in_square_centimeters() {
        // The POWER7+ die of the paper: 21.34 mm x 26.55 mm = 5.666 cm^2.
        let area = Meters::from_millimeters(21.34) * Meters::from_millimeters(26.55);
        assert!((area.to_square_centimeters() - 5.66577).abs() < 1e-4);
    }

    #[test]
    fn micrometer_conversion() {
        let w = Meters::from_micrometers(200.0);
        assert!((w.value() - 2e-4).abs() < 1e-18);
        assert!((w.to_micrometers() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn area_length_algebra() {
        let a = SquareMeters::new(6.0);
        let l = Meters::new(2.0);
        assert_eq!((a / l).value(), 3.0);
        assert_eq!((a * l).value(), 12.0);
        assert_eq!((CubicMeters::new(12.0) / l).value(), 6.0);
    }
}
