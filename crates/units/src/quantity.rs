//! Internal macro generating the shared API surface of quantity newtypes.

/// Implements the common quantity API for a `f64` newtype:
///
/// * `new`, `value`, `abs`, `min`/`max`, `is_finite`
/// * `Display` with the given unit suffix
/// * `Add`/`Sub` with itself, `Mul`/`Div` by `f64` (both orders for `Mul`),
///   unary `Neg`, and `Div` by itself yielding a dimensionless `f64`
/// * `From<f64>` via the inner value.
///
/// The macro is internal to `bright-units`; downstream crates interact with
/// the generated inherent methods and operator impls only.
macro_rules! quantity_impl {
    ($name:ident, $unit:expr) => {
        impl $name {
            /// Wraps a raw value expressed in the canonical unit of this
            /// quantity.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the canonical unit of this quantity.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` if the wrapped value is neither infinite nor
            /// NaN.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The canonical unit suffix used by the `Display` impl.
            pub const UNIT: &'static str = $unit;
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl From<f64> for $name {
            #[inline]
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

    };
}
