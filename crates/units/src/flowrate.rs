//! Flow-rate and velocity quantities.

use crate::geometry::SquareMeters;

/// Volumetric flow rate in m³/s.
///
/// The paper quotes flow rates in µL/min (validation cell, Table I) and
/// ml/min (POWER7+ array, Table II); converters for both are provided.
///
/// # Examples
///
/// ```
/// use bright_units::CubicMetersPerSecond;
///
/// let array_flow = CubicMetersPerSecond::from_milliliters_per_minute(676.0);
/// assert!((array_flow.value() - 1.1267e-5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct CubicMetersPerSecond(f64);
quantity_impl!(CubicMetersPerSecond, "m^3/s");

/// Linear velocity in m/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MetersPerSecond(f64);
quantity_impl!(MetersPerSecond, "m/s");

/// Mass flow rate in kg/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct KilogramsPerSecond(f64);
quantity_impl!(KilogramsPerSecond, "kg/s");

impl CubicMetersPerSecond {
    /// Builds a flow rate from µL/min (unit of Table I).
    #[inline]
    pub fn from_microliters_per_minute(value: f64) -> Self {
        Self::new(value * 1e-9 / 60.0)
    }

    /// Builds a flow rate from ml/min (unit of Table II).
    #[inline]
    pub fn from_milliliters_per_minute(value: f64) -> Self {
        Self::new(value * 1e-6 / 60.0)
    }

    /// Expresses the flow rate in µL/min.
    #[inline]
    pub fn to_microliters_per_minute(self) -> f64 {
        self.0 * 60.0 / 1e-9
    }

    /// Expresses the flow rate in ml/min.
    #[inline]
    pub fn to_milliliters_per_minute(self) -> f64 {
        self.0 * 60.0 / 1e-6
    }

    /// Mean velocity through a duct of the given cross-section.
    #[inline]
    pub fn mean_velocity(self, cross_section: SquareMeters) -> MetersPerSecond {
        MetersPerSecond::new(self.0 / cross_section.value())
    }
}

impl core::ops::Div<SquareMeters> for CubicMetersPerSecond {
    type Output = MetersPerSecond;
    #[inline]
    fn div(self, rhs: SquareMeters) -> MetersPerSecond {
        MetersPerSecond::new(self.0 / rhs.value())
    }
}

impl core::ops::Mul<SquareMeters> for MetersPerSecond {
    type Output = CubicMetersPerSecond;
    #[inline]
    fn mul(self, rhs: SquareMeters) -> CubicMetersPerSecond {
        CubicMetersPerSecond::new(self.0 * rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Meters;

    #[test]
    fn microliter_conversion_roundtrip() {
        for v in [2.5, 10.0, 60.0, 300.0] {
            let q = CubicMetersPerSecond::from_microliters_per_minute(v);
            assert!((q.to_microliters_per_minute() - v).abs() < 1e-9);
        }
    }

    #[test]
    fn table2_mean_velocity() {
        // 676 ml/min through 88 channels of 200 um x 400 um gives ~1.6 m/s;
        // the paper rounds the average flow velocity to 1.4 m/s.
        let total = CubicMetersPerSecond::from_milliliters_per_minute(676.0);
        let per_channel = total / 88.0;
        let area = Meters::from_micrometers(200.0) * Meters::from_micrometers(400.0);
        let v = per_channel.mean_velocity(area);
        assert!(v.value() > 1.3 && v.value() < 1.7, "got {v}");
    }

    #[test]
    fn velocity_times_area_is_flow() {
        let v = MetersPerSecond::new(1.5);
        let a = SquareMeters::new(8e-8);
        let q = v * a;
        assert!((q.value() - 1.2e-7).abs() < 1e-20);
    }
}
