//! Property-based tests of the quantity algebra.

use proptest::prelude::*;

use bright_units::{
    Ampere, Celsius, CubicMetersPerSecond, Kelvin, Meters, Pascal, PascalPerMeter, SquareMeters,
    Volt, Watt,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addition_is_commutative_and_scaling_distributes(
        a in -1e6..1e6f64,
        b in -1e6..1e6f64,
        k in -100.0..100.0f64,
    ) {
        let x = Watt::new(a);
        let y = Watt::new(b);
        prop_assert_eq!((x + y).value(), (y + x).value());
        let lhs = (x + y) * k;
        let rhs = x * k + y * k;
        prop_assert!((lhs.value() - rhs.value()).abs() < 1e-6 * lhs.value().abs().max(1.0));
    }

    #[test]
    fn power_identities(v in 0.01..10.0f64, i in 0.01..100.0f64) {
        let volt = Volt::new(v);
        let amp = Ampere::new(i);
        let p = volt * amp;
        prop_assert!((p.value() - v * i).abs() < 1e-12 * (v * i));
        // P / V = I and P / I = V.
        prop_assert!(((p / volt).value() - i).abs() < 1e-9 * i);
        prop_assert!(((p / amp).value() - v).abs() < 1e-9 * v);
        // Ohm's law roundtrip.
        let r = volt / amp;
        prop_assert!(((r * amp).value() - v).abs() < 1e-9 * v);
    }

    #[test]
    fn unit_conversions_roundtrip(x in 1e-9..1e3f64) {
        prop_assert!((Meters::from_millimeters(x).to_millimeters() - x).abs() < 1e-9 * x);
        prop_assert!((Meters::from_micrometers(x).to_micrometers() - x).abs() < 1e-9 * x);
        prop_assert!(
            (CubicMetersPerSecond::from_microliters_per_minute(x)
                .to_microliters_per_minute()
                - x)
                .abs()
                < 1e-9 * x
        );
        prop_assert!((Pascal::from_bar(x).to_bar() - x).abs() < 1e-9 * x);
        prop_assert!(
            (PascalPerMeter::from_bar_per_centimeter(x).to_bar_per_centimeter() - x).abs()
                < 1e-9 * x
        );
        prop_assert!(
            (SquareMeters::from_square_centimeters(x).to_square_centimeters() - x).abs()
                < 1e-9 * x
        );
    }

    #[test]
    fn temperature_scale_offset_is_exact(c in -273.0..1000.0f64) {
        let k = Celsius::new(c).to_kelvin();
        prop_assert!((k.value() - (c + 273.15)).abs() < 1e-9);
        prop_assert!((k.to_celsius().value() - c).abs() < 1e-9);
    }

    #[test]
    fn kelvin_physicality(k in -500.0..500.0f64) {
        prop_assert_eq!(Kelvin::new(k).is_physical(), k > 0.0 && k.is_finite());
    }

    #[test]
    fn mean_velocity_definition(q in 1e-12..1e-3f64, a in 1e-10..1e-3f64) {
        let flow = CubicMetersPerSecond::new(q);
        let area = SquareMeters::new(a);
        let v = flow.mean_velocity(area);
        prop_assert!((v * area).value() - q < 1e-12 * q.max(1e-300));
    }

    #[test]
    fn text_roundtrip(x in -1e12..1e12f64) {
        // Rust's float Display prints the shortest representation that
        // parses back to the same f64, so a text round-trip of the inner
        // value is exact — this is what the JSON export layer relies on.
        let w = Watt::new(x);
        let back: f64 = w.value().to_string().parse().unwrap();
        prop_assert!(back == x, "{back} vs {x}");
    }
}
