//! Electrical invariants of the power-grid solver.

use bright_mesh::{Field2d, Grid2d};
use bright_pdn::{PortLayout, PowerGrid};
use bright_units::Volt;

fn grid() -> Grid2d {
    Grid2d::from_extent(20e-3, 20e-3, 40, 40).unwrap()
}

fn solve(load_w_cm2: f64, rs: f64, ports: &PortLayout) -> bright_pdn::PdnSolution {
    let g = grid();
    let load = Field2d::constant(g.clone(), load_w_cm2 * 1e4);
    PowerGrid::new(g, rs, Volt::new(1.0), 0.01, ports, &load)
        .unwrap()
        .solve()
        .unwrap()
}

#[test]
fn linearity_in_load() {
    let ports = PortLayout::UniformArray { pitch: 5e-3 };
    let d1 = solve(1.0, 0.1, &ports).worst_drop().value();
    let d2 = solve(2.0, 0.1, &ports).worst_drop().value();
    assert!((d2 - 2.0 * d1).abs() < 0.02 * d2, "drops {d1} vs {d2}");
}

#[test]
fn voltage_never_exceeds_supply() {
    let ports = PortLayout::UniformArray { pitch: 4e-3 };
    let sol = solve(3.0, 0.2, &ports);
    assert!(sol.max_voltage().value() <= 1.0 + 1e-9);
    assert!(sol.min_voltage().value() > 0.0);
}

#[test]
fn symmetry_of_symmetric_problem() {
    // Uniform load + symmetric ports: the voltage map must be symmetric
    // under x-mirror.
    let ports = PortLayout::EdgeColumns {
        columns: 1,
        pitch: 4e-3,
    };
    let sol = solve(2.0, 0.1, &ports);
    let map = sol.voltage_map();
    let nx = map.grid().nx();
    for iy in [0usize, 13, 27, 39] {
        for ix in 0..nx / 2 {
            let a = map.get(ix, iy);
            let b = map.get(nx - 1 - ix, iy);
            assert!((a - b).abs() < 1e-7, "asymmetry at ({ix},{iy}): {a} vs {b}");
        }
    }
}

#[test]
fn delivered_power_below_nominal_under_droop() {
    // Constant-current loads at drooped voltages deliver less than the
    // nominal P = sum(density*area).
    let ports = PortLayout::UniformArray { pitch: 6e-3 };
    let sol = solve(2.0, 0.3, &ports);
    let nominal = 2.0 * 4.0; // 2 W/cm^2 x 4 cm^2
    let delivered = sol.delivered_power().value();
    assert!(delivered < nominal);
    assert!(delivered > 0.7 * nominal, "delivered {delivered}");
}

#[test]
fn port_resistance_adds_uniform_droop() {
    let g = grid();
    let load = Field2d::constant(g.clone(), 1e4);
    let ports = PortLayout::UniformArray { pitch: 4e-3 };
    let tight = PowerGrid::new(g.clone(), 0.05, Volt::new(1.0), 0.0, &ports, &load)
        .unwrap()
        .solve()
        .unwrap();
    let loose = PowerGrid::new(g, 0.05, Volt::new(1.0), 0.1, &ports, &load)
        .unwrap()
        .solve()
        .unwrap();
    assert!(loose.min_voltage().value() < tight.min_voltage().value());
    assert!(loose.max_voltage().value() < tight.max_voltage().value() + 1e-12);
}

#[test]
fn current_conservation_through_ports() {
    // Sum of port currents equals total sink current: check via power
    // balance P_ports = sum over sinks of I_sink * V_node + I^2R losses.
    // Weak form: delivered power + grid losses <= supply power, within
    // tolerance of the solve.
    let ports = PortLayout::UniformArray { pitch: 5e-3 };
    let sol = solve(1.5, 0.15, &ports);
    let supply_power = sol.total_current().value() * 1.0; // all current from 1 V ports
    let delivered = sol.delivered_power().value();
    assert!(delivered <= supply_power + 1e-9);
    // Losses are positive but bounded (< 15% here).
    let losses = supply_power - delivered;
    assert!(losses > 0.0 && losses < 0.15 * supply_power, "losses {losses}");
}
