//! The C4 pin-budget argument (paper introduction, issue (2)).
//!
//! Conventional MPSoCs dedicate a majority of their controlled-collapse
//! chip-connection (C4) bumps to power and ground to keep the PDN
//! resistance acceptable — bumps that are then unavailable for I/O
//! (Wright et al., ECTC 2006). Delivering power through the coolant frees
//! those bumps. This module quantifies the trade.

use crate::PdnError;
use bright_units::{Ampere, SquareMeters};

/// A package bump (C4) budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinBudget {
    /// Total bumps available on the die footprint.
    pub total: usize,
    /// Bumps used for power/ground delivery.
    pub power_ground: usize,
    /// Bumps available for signal I/O.
    pub io: usize,
}

/// Parameters of the pin-budget model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinModel {
    /// C4 bump pitch (m); ~200 µm for the paper's era.
    pub bump_pitch: f64,
    /// Maximum sustained current per power bump (A); ~200 mA
    /// electromigration-limited.
    pub max_current_per_bump: f64,
    /// Power-integrity derating: extra power/ground bumps beyond the
    /// DC-current minimum (pairs for return current, redundancy). 2.0
    /// doubles the raw count (one ground per power bump).
    pub redundancy: f64,
}

impl Default for PinModel {
    fn default() -> Self {
        Self {
            bump_pitch: 200e-6,
            max_current_per_bump: 0.2,
            redundancy: 2.0,
        }
    }
}

impl PinModel {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> Result<(), PdnError> {
        for (name, v) in [
            ("bump pitch", self.bump_pitch),
            ("max current per bump", self.max_current_per_bump),
            ("redundancy", self.redundancy),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(PdnError::InvalidConfig(format!(
                    "{name} must be positive, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// Total bumps on a die of the given area (full-area array).
    ///
    /// # Errors
    ///
    /// As [`PinModel::validate`].
    pub fn total_bumps(&self, die_area: SquareMeters) -> Result<usize, PdnError> {
        self.validate()?;
        if !die_area.is_finite() || die_area.value() <= 0.0 {
            return Err(PdnError::InvalidConfig(format!(
                "die area must be positive, got {die_area}"
            )));
        }
        Ok((die_area.value() / (self.bump_pitch * self.bump_pitch)).floor() as usize)
    }

    /// Pin budget of a *conventional* package delivering `chip_current`
    /// entirely through bumps.
    ///
    /// # Errors
    ///
    /// As [`PinModel::total_bumps`]; also
    /// [`PdnError::InvalidConfig`] if the power bumps alone exceed the
    /// package's total.
    pub fn conventional(
        &self,
        die_area: SquareMeters,
        chip_current: Ampere,
    ) -> Result<PinBudget, PdnError> {
        let total = self.total_bumps(die_area)?;
        if !(chip_current.value() >= 0.0 && chip_current.is_finite()) {
            return Err(PdnError::InvalidConfig(format!(
                "chip current must be non-negative, got {chip_current}"
            )));
        }
        let raw = (chip_current.value() / self.max_current_per_bump).ceil();
        let power_ground = (raw * self.redundancy).ceil() as usize;
        if power_ground > total {
            return Err(PdnError::InvalidConfig(format!(
                "{power_ground} power/ground bumps exceed the {total} available"
            )));
        }
        Ok(PinBudget {
            total,
            power_ground,
            io: total - power_ground,
        })
    }

    /// Pin budget when a fraction `fluidic_fraction ∈ [0, 1]` of the chip
    /// current is delivered through the microfluidic network instead of
    /// bumps (1.0 = the paper's end vision: all power through the fluid).
    ///
    /// # Errors
    ///
    /// As [`PinModel::conventional`]; also rejects fractions outside
    /// `[0, 1]`.
    pub fn with_fluidic_delivery(
        &self,
        die_area: SquareMeters,
        chip_current: Ampere,
        fluidic_fraction: f64,
    ) -> Result<PinBudget, PdnError> {
        if !(0.0..=1.0).contains(&fluidic_fraction) {
            return Err(PdnError::InvalidConfig(format!(
                "fluidic fraction must be in [0,1], got {fluidic_fraction}"
            )));
        }
        self.conventional(
            die_area,
            Ampere::new(chip_current.value() * (1.0 - fluidic_fraction)),
        )
    }
}

impl PinBudget {
    /// Fraction of bumps available for I/O.
    pub fn io_fraction(&self) -> f64 {
        self.io as f64 / self.total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn die() -> SquareMeters {
        // The POWER7+ die.
        SquareMeters::new(26.55e-3 * 21.34e-3)
    }

    #[test]
    fn total_bumps_match_pitch() {
        let m = PinModel::default();
        let total = m.total_bumps(die()).unwrap();
        // 566.6 mm^2 / 0.04 mm^2 = 14164.
        assert_eq!(total, 14_164);
    }

    #[test]
    fn conventional_budget_for_a_hungry_chip() {
        let m = PinModel::default();
        // ~73 W at 1 V -> 73 A -> 365 power bumps x2 redundancy = 730.
        let b = m.conventional(die(), Ampere::new(73.0)).unwrap();
        assert_eq!(b.power_ground, 730);
        assert_eq!(b.io, b.total - 730);
    }

    #[test]
    fn fluidic_delivery_frees_pins() {
        let m = PinModel::default();
        let conv = m.conventional(die(), Ampere::new(100.0)).unwrap();
        let half = m
            .with_fluidic_delivery(die(), Ampere::new(100.0), 0.5)
            .unwrap();
        let full = m
            .with_fluidic_delivery(die(), Ampere::new(100.0), 1.0)
            .unwrap();
        assert!(half.io > conv.io);
        assert!(full.io > half.io);
        assert_eq!(full.power_ground, 0);
        assert!(full.io_fraction() > 0.999);
    }

    #[test]
    fn validation() {
        let m = PinModel::default();
        assert!(m.with_fluidic_delivery(die(), Ampere::new(10.0), 1.5).is_err());
        assert!(m.conventional(die(), Ampere::new(-1.0)).is_err());
        assert!(m.conventional(SquareMeters::new(0.0), Ampere::new(1.0)).is_err());
        let bad = PinModel {
            bump_pitch: 0.0,
            ..PinModel::default()
        };
        assert!(bad.validate().is_err());
        // Power demand beyond the package's bump count.
        let tiny = PinModel {
            bump_pitch: 1e-3,
            max_current_per_bump: 0.01,
            redundancy: 2.0,
        };
        assert!(tiny.conventional(die(), Ampere::new(1000.0)).is_err());
    }
}
