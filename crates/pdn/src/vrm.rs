//! Voltage-regulator module (VRM) models.
//!
//! The flow cells produce ~1.2–1.65 V set by vanadium thermodynamics; the
//! cache rail wants 1.0 V. The paper places VRMs inside the package
//! (switched-capacitor converters per Andersen et al. \[22\] — 86 %
//! efficiency at 4.6 W/mm² — or stacked buck converters per Onizuka et
//! al. \[23\]) between the cell electrodes and the on-chip grid.

use crate::PdnError;
use bright_units::{Ampere, Volt, Watt};

/// A DC-DC converter between the flow-cell array and the chip rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Vrm {
    /// Lossless conversion to the rail voltage (upper-bound analysis).
    Ideal {
        /// Output (rail) voltage.
        output: Volt,
    },
    /// Fixed power efficiency regardless of operating point.
    FixedEfficiency {
        /// Output (rail) voltage.
        output: Volt,
        /// Power efficiency in (0, 1].
        efficiency: f64,
    },
    /// Switched-capacitor converter: discrete conversion ratio with a
    /// peak efficiency that degrades as the input departs from
    /// `ratio × output` (Andersen et al. 2013).
    SwitchedCapacitor {
        /// Output (rail) voltage.
        output: Volt,
        /// Ideal (rational) conversion ratio `V_in/V_out`.
        ratio: f64,
        /// Peak efficiency at the matched input in (0, 1].
        peak_efficiency: f64,
    },
}

impl Vrm {
    /// The paper's reference converter: 86 % efficient switched-capacitor
    /// at ratio 3:2 onto a 1.0 V rail (matched input 1.5 V ≈ the cell
    /// array near its max-power point).
    pub fn andersen_switched_capacitor() -> Self {
        Vrm::SwitchedCapacitor {
            output: Volt::new(1.0),
            ratio: 1.5,
            peak_efficiency: 0.86,
        }
    }

    /// Output (rail) voltage.
    pub fn output_voltage(&self) -> Volt {
        match self {
            Vrm::Ideal { output }
            | Vrm::FixedEfficiency { output, .. }
            | Vrm::SwitchedCapacitor { output, .. } => *output,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidConfig`] for non-positive voltages,
    /// ratios, or efficiencies outside (0, 1].
    pub fn validate(&self) -> Result<(), PdnError> {
        let out = self.output_voltage().value();
        if !(out > 0.0 && out.is_finite()) {
            return Err(PdnError::InvalidConfig(format!(
                "VRM output voltage must be positive, got {out}"
            )));
        }
        match self {
            Vrm::Ideal { .. } => Ok(()),
            Vrm::FixedEfficiency { efficiency, .. } => {
                if !(*efficiency > 0.0 && *efficiency <= 1.0) {
                    return Err(PdnError::InvalidConfig(format!(
                        "efficiency must be in (0,1], got {efficiency}"
                    )));
                }
                Ok(())
            }
            Vrm::SwitchedCapacitor {
                ratio,
                peak_efficiency,
                ..
            } => {
                if !(*ratio > 0.0 && ratio.is_finite()) {
                    return Err(PdnError::InvalidConfig(format!(
                        "ratio must be positive, got {ratio}"
                    )));
                }
                if !(*peak_efficiency > 0.0 && *peak_efficiency <= 1.0) {
                    return Err(PdnError::InvalidConfig(format!(
                        "peak efficiency must be in (0,1], got {peak_efficiency}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Power efficiency when converting from the given input voltage.
    ///
    /// For the switched-capacitor model the intrinsic (charge-sharing)
    /// efficiency is capped by `V_matched/V_in` when the input exceeds
    /// the matched voltage `ratio × V_out` — the classic SC linear loss —
    /// scaled by the peak efficiency.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidConfig`] for a non-positive input or if
    /// the input is below the output-referred minimum (conversion
    /// impossible for a step-down converter).
    pub fn efficiency_at(&self, input: Volt) -> Result<f64, PdnError> {
        self.validate()?;
        let v_in = input.value();
        if !(v_in > 0.0 && v_in.is_finite()) {
            return Err(PdnError::InvalidConfig(format!(
                "input voltage must be positive, got {v_in}"
            )));
        }
        let v_out = self.output_voltage().value();
        if v_in < v_out {
            return Err(PdnError::InvalidConfig(format!(
                "step-down VRM cannot boost {v_in} V to {v_out} V"
            )));
        }
        Ok(match self {
            Vrm::Ideal { .. } => 1.0,
            Vrm::FixedEfficiency { efficiency, .. } => *efficiency,
            Vrm::SwitchedCapacitor {
                ratio,
                peak_efficiency,
                ..
            } => {
                let matched = ratio * v_out;
                let intrinsic = if v_in <= matched { 1.0 } else { matched / v_in };
                peak_efficiency * intrinsic
            }
        })
    }

    /// Input power needed to deliver `output_power` at the rail from the
    /// given input voltage.
    ///
    /// # Errors
    ///
    /// As [`Vrm::efficiency_at`]; also rejects negative output power.
    pub fn input_power(&self, output_power: Watt, input: Volt) -> Result<Watt, PdnError> {
        if output_power.value() < 0.0 {
            return Err(PdnError::InvalidConfig(format!(
                "output power must be non-negative, got {output_power}"
            )));
        }
        Ok(Watt::new(
            output_power.value() / self.efficiency_at(input)?,
        ))
    }

    /// Input current drawn from the cell array for a rail current, at the
    /// given input voltage: `I_in = V_out·I_out/(η·V_in)`.
    ///
    /// # Errors
    ///
    /// As [`Vrm::efficiency_at`].
    pub fn input_current(&self, output_current: Ampere, input: Volt) -> Result<Ampere, PdnError> {
        let p_out = self.output_voltage() * output_current;
        let p_in = self.input_power(p_out, input)?;
        Ok(Ampere::new(p_in.value() / input.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_lossless() {
        let v = Vrm::Ideal {
            output: Volt::new(1.0),
        };
        assert_eq!(v.efficiency_at(Volt::new(1.5)).unwrap(), 1.0);
        let p = v.input_power(Watt::new(6.0), Volt::new(1.5)).unwrap();
        assert_eq!(p.value(), 6.0);
    }

    #[test]
    fn fixed_efficiency_scales_power() {
        let v = Vrm::FixedEfficiency {
            output: Volt::new(1.0),
            efficiency: 0.86,
        };
        let p = v.input_power(Watt::new(6.0), Volt::new(1.5)).unwrap();
        assert!((p.value() - 6.0 / 0.86).abs() < 1e-12);
    }

    #[test]
    fn switched_capacitor_peaks_at_matched_ratio() {
        let v = Vrm::andersen_switched_capacitor();
        let at_match = v.efficiency_at(Volt::new(1.5)).unwrap();
        assert!((at_match - 0.86).abs() < 1e-12);
        // Above the matched input the intrinsic SC loss kicks in.
        let above = v.efficiency_at(Volt::new(1.65)).unwrap();
        assert!((above - 0.86 * 1.5 / 1.65).abs() < 1e-12);
        // Below matched (but above V_out) stays at peak.
        let below = v.efficiency_at(Volt::new(1.2)).unwrap();
        assert!((below - 0.86).abs() < 1e-12);
    }

    #[test]
    fn input_current_reflects_voltage_ratio() {
        let v = Vrm::Ideal {
            output: Volt::new(1.0),
        };
        // 6 A at 1 V from a 1.5 V source: 4 A drawn.
        let i = v.input_current(Ampere::new(6.0), Volt::new(1.5)).unwrap();
        assert!((i.value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(Vrm::FixedEfficiency {
            output: Volt::new(1.0),
            efficiency: 1.5
        }
        .validate()
        .is_err());
        assert!(Vrm::SwitchedCapacitor {
            output: Volt::new(-1.0),
            ratio: 1.5,
            peak_efficiency: 0.86
        }
        .validate()
        .is_err());
        let v = Vrm::andersen_switched_capacitor();
        assert!(v.efficiency_at(Volt::new(0.5)).is_err()); // below output
        assert!(v.efficiency_at(Volt::new(-1.0)).is_err());
        assert!(v.input_power(Watt::new(-1.0), Volt::new(1.5)).is_err());
    }
}
