//! Supply-port layouts: where the regulated rail voltage enters the grid.

use crate::PdnError;
use bright_mesh::Grid2d;

/// Where TSV/VRM supply ports connect to the on-chip grid.
#[derive(Debug, Clone, PartialEq)]
pub enum PortLayout {
    /// A uniform array of ports at the given pitch (m) across the whole
    /// die — the microfluidic concept, where every channel segment can
    /// drop a TSV (Fig. 5).
    UniformArray {
        /// Port-to-port pitch in metres.
        pitch: f64,
    },
    /// Ports along the left and right die edges only (a conventional
    /// package-fed rail for comparison).
    EdgeColumns {
        /// Number of grid columns per edge carrying ports.
        columns: usize,
        /// Port pitch along the edge in metres.
        pitch: f64,
    },
    /// Explicit cell indices.
    Explicit {
        /// `(ix, iy)` grid cells hosting ports.
        cells: Vec<(usize, usize)>,
    },
}

impl PortLayout {
    /// Resolves the layout to grid cells.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::InvalidConfig`] if the layout produces no
    /// ports or references cells outside the grid.
    pub fn resolve(&self, grid: &Grid2d) -> Result<Vec<(usize, usize)>, PdnError> {
        let cells = match self {
            PortLayout::UniformArray { pitch } => {
                if !(*pitch > 0.0 && pitch.is_finite()) {
                    return Err(PdnError::InvalidConfig(format!(
                        "port pitch must be positive, got {pitch}"
                    )));
                }
                let mut cells = Vec::new();
                let nx_ports = (grid.width() / pitch).floor().max(1.0) as usize;
                let ny_ports = (grid.height() / pitch).floor().max(1.0) as usize;
                for py in 0..ny_ports {
                    for px in 0..nx_ports {
                        let x = (px as f64 + 0.5) * grid.width() / nx_ports as f64;
                        let y = (py as f64 + 0.5) * grid.height() / ny_ports as f64;
                        cells.push(grid.locate(x, y));
                    }
                }
                cells.sort_unstable();
                cells.dedup();
                cells
            }
            PortLayout::EdgeColumns { columns, pitch } => {
                if *columns == 0 || *columns * 2 > grid.nx() {
                    return Err(PdnError::InvalidConfig(format!(
                        "edge columns {columns} incompatible with grid width {}",
                        grid.nx()
                    )));
                }
                if !(*pitch > 0.0 && pitch.is_finite()) {
                    return Err(PdnError::InvalidConfig(format!(
                        "port pitch must be positive, got {pitch}"
                    )));
                }
                let n_rows = (grid.height() / pitch).floor().max(1.0) as usize;
                let mut cells = Vec::new();
                for row in 0..n_rows {
                    let y = (row as f64 + 0.5) * grid.height() / n_rows as f64;
                    let (_, iy) = grid.locate(0.0, y);
                    for c in 0..*columns {
                        cells.push((c, iy));
                        cells.push((grid.nx() - 1 - c, iy));
                    }
                }
                cells.sort_unstable();
                cells.dedup();
                cells
            }
            PortLayout::Explicit { cells } => {
                for &(ix, iy) in cells {
                    if ix >= grid.nx() || iy >= grid.ny() {
                        return Err(PdnError::InvalidConfig(format!(
                            "port cell ({ix},{iy}) outside grid {}x{}",
                            grid.nx(),
                            grid.ny()
                        )));
                    }
                }
                cells.clone()
            }
        };
        if cells.is_empty() {
            return Err(PdnError::InvalidConfig("layout produced no ports".into()));
        }
        Ok(cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid2d {
        Grid2d::from_extent(26.55e-3, 21.34e-3, 88, 71).unwrap()
    }

    #[test]
    fn uniform_array_covers_die() {
        let ports = PortLayout::UniformArray { pitch: 3e-3 }
            .resolve(&grid())
            .unwrap();
        // 8 x 7 port sites.
        assert_eq!(ports.len(), 56);
        // Spread across the die, not clustered at one edge.
        let min_x = ports.iter().map(|p| p.0).min().unwrap();
        let max_x = ports.iter().map(|p| p.0).max().unwrap();
        assert!(min_x < 10 && max_x > 75);
    }

    #[test]
    fn edge_columns_sit_on_edges() {
        let ports = PortLayout::EdgeColumns {
            columns: 2,
            pitch: 2e-3,
        }
        .resolve(&grid())
        .unwrap();
        assert!(ports.iter().all(|&(ix, _)| !(2..86).contains(&ix)));
        assert!(ports.len() >= 40);
    }

    #[test]
    fn explicit_is_validated() {
        let ok = PortLayout::Explicit {
            cells: vec![(0, 0), (87, 70)],
        };
        assert_eq!(ok.resolve(&grid()).unwrap().len(), 2);
        let bad = PortLayout::Explicit {
            cells: vec![(88, 0)],
        };
        assert!(bad.resolve(&grid()).is_err());
        let empty = PortLayout::Explicit { cells: vec![] };
        assert!(empty.resolve(&grid()).is_err());
    }

    #[test]
    fn degenerate_layouts_rejected() {
        assert!(PortLayout::UniformArray { pitch: 0.0 }.resolve(&grid()).is_err());
        assert!(PortLayout::EdgeColumns {
            columns: 0,
            pitch: 1e-3
        }
        .resolve(&grid())
        .is_err());
        assert!(PortLayout::EdgeColumns {
            columns: 60,
            pitch: 1e-3
        }
        .resolve(&grid())
        .is_err());
    }
}
