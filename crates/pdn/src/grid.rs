//! The on-chip power grid as a resistive sheet.
//!
//! The rail metal is modelled as a uniform sheet of resistance `R_s`
//! (Ω/sq) discretized on the simulation grid; block loads are constant
//! current sinks (`I = P/V_nom`); supply ports connect cells to the VRM
//! output voltage through a series port resistance. The resulting SPD
//! system is solved with preconditioned CG, yielding the voltage map of
//! Fig. 8.
//!
//! The conductance system is assembled once through the symbolic/numeric
//! CSR split and never changes afterwards
//! ([`PowerGrid::set_power_density`] touches only the RHS), so repeated
//! solves run through a [`SolverSession`] bound once to the operator:
//! Krylov scratch, warm start and the preconditioner factorization are
//! all amortized across the sweep. The default session preconditioner is
//! SSOR — the weakly dominant sheet Laplacian is where it beats Jacobi
//! by the largest margin (see `BENCH_PR2.json`).

use crate::ports::PortLayout;
use crate::PdnError;
use bright_mesh::{Field2d, Grid2d};
use bright_num::session::next_operator_tag;
use bright_num::solvers::IterOptions;
use bright_num::{BandedCholesky, CsrMatrix, CsrSymbolic, PrecondSpec, SolverSession};
use bright_num::TripletMatrix;
use std::sync::OnceLock;
use bright_units::{Ampere, Volt, Watt};

/// A configured power grid ready to solve.
///
/// The conductance system is assembled once at construction (the matrix
/// depends only on the grid, sheet resistance and ports); repeated solves
/// and power-map updates reuse it.
#[derive(Debug, Clone)]
pub struct PowerGrid {
    grid: Grid2d,
    sheet_resistance: f64,
    supply: Volt,
    port_resistance: f64,
    port_cells: Vec<(usize, usize)>,
    sink_current: Field2d,
    symbolic: CsrSymbolic,
    system: CsrMatrix,
    rhs: Vec<f64>,
    /// Session-facing operator identity.
    tag: u64,
    /// Banded Cholesky factor of the conductance system, built on the
    /// first [`PowerGrid::solve_direct`] call. The matrix depends only
    /// on grid, sheet resistance and ports — never on the load — so
    /// the factor survives every [`PowerGrid::set_power_density`].
    direct: OnceLock<BandedCholesky>,
}

/// The solved voltage distribution.
#[derive(Debug, Clone)]
pub struct PdnSolution {
    voltage: Field2d,
    supply: Volt,
    total_current: Ampere,
    sink_current: Field2d,
}

impl PowerGrid {
    /// Builds a power grid.
    ///
    /// * `grid` — simulation grid over the die,
    /// * `sheet_resistance` — effective rail sheet resistance (Ω/sq),
    /// * `supply` — VRM output voltage feeding the ports,
    /// * `port_resistance` — series resistance of each port (TSV + VRM
    ///   output impedance), Ω,
    /// * `ports` — port layout,
    /// * `power_density` — block power-density map (W/m²) on `grid`;
    ///   converted to current sinks at the supply voltage.
    ///
    /// # Errors
    ///
    /// [`PdnError::InvalidConfig`] / [`PdnError::GridMismatch`] on bad
    /// inputs.
    pub fn new(
        grid: Grid2d,
        sheet_resistance: f64,
        supply: Volt,
        port_resistance: f64,
        ports: &PortLayout,
        power_density: &Field2d,
    ) -> Result<Self, PdnError> {
        if !(sheet_resistance > 0.0 && sheet_resistance.is_finite()) {
            return Err(PdnError::InvalidConfig(format!(
                "sheet resistance must be positive, got {sheet_resistance}"
            )));
        }
        if !(supply.value() > 0.0 && supply.is_finite()) {
            return Err(PdnError::InvalidConfig(format!(
                "supply voltage must be positive, got {supply}"
            )));
        }
        if !(port_resistance >= 0.0 && port_resistance.is_finite()) {
            return Err(PdnError::InvalidConfig(format!(
                "port resistance must be non-negative, got {port_resistance}"
            )));
        }
        if power_density.grid() != &grid {
            return Err(PdnError::GridMismatch(format!(
                "power map {}x{} vs grid {}x{}",
                power_density.grid().nx(),
                power_density.grid().ny(),
                grid.nx(),
                grid.ny()
            )));
        }
        if power_density.as_slice().iter().any(|p| *p < 0.0 || !p.is_finite()) {
            return Err(PdnError::InvalidConfig(
                "power density must be non-negative and finite".into(),
            ));
        }
        let port_cells = ports.resolve(&grid)?;
        let cell_area = grid.cell_area();
        let sink_current = Field2d::from_vec(
            grid.clone(),
            power_density
                .as_slice()
                .iter()
                .map(|p| p * cell_area / supply.value())
                .collect(),
        )
        .expect("same grid");
        let mut pg = Self {
            grid,
            sheet_resistance,
            supply,
            port_resistance,
            port_cells,
            sink_current,
            symbolic: TripletMatrix::new(0, 0).to_csr_symbolic(),
            system: CsrMatrix::empty(),
            rhs: Vec::new(),
            tag: next_operator_tag(),
            direct: OnceLock::new(),
        };
        pg.assemble()?;
        Ok(pg)
    }

    /// Assembles the conductance matrix and RHS through the
    /// symbolic/numeric split. Called once from [`PowerGrid::new`];
    /// [`PowerGrid::set_power_density`] refreshes the RHS only (the
    /// matrix is load-independent).
    fn assemble(&mut self) -> Result<(), PdnError> {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        let n = self.grid.len();
        // Square-sheet link conductance: horizontal neighbours span one
        // square of aspect dy/dx, vertical dx/dy.
        let g_x = self.grid.dy() / (self.sheet_resistance * self.grid.dx());
        let g_y = self.grid.dx() / (self.sheet_resistance * self.grid.dy());
        // Exact stamp count: 4 entries per interior link + one diagonal
        // push per port.
        let cap = 4 * ((nx - 1) * ny + nx * (ny - 1)) + self.port_cells.len();
        let mut t = TripletMatrix::with_capacity(n, n, cap);

        let idx = |ix: usize, iy: usize| iy * nx + ix;
        for iy in 0..ny {
            for ix in 0..nx {
                let me = idx(ix, iy);
                if ix + 1 < nx {
                    t.stamp_conductance(me, idx(ix + 1, iy), g_x)
                        .map_err(PdnError::from)?;
                }
                if iy + 1 < ny {
                    t.stamp_conductance(me, idx(ix, iy + 1), g_y)
                        .map_err(PdnError::from)?;
                }
            }
        }
        let g_port = self.port_conductance();
        for &(ix, iy) in &self.port_cells {
            let me = idx(ix, iy);
            t.push(me, me, g_port).map_err(PdnError::from)?;
        }
        self.symbolic = t.to_csr_symbolic();
        self.system = self.symbolic.numeric(&t).map_err(PdnError::from)?;
        self.direct = OnceLock::new();
        self.rebuild_rhs();
        Ok(())
    }

    fn port_conductance(&self) -> f64 {
        if self.port_resistance > 0.0 {
            1.0 / self.port_resistance
        } else {
            // An ideal port: huge but finite conductance keeps the system
            // well-conditioned.
            1e9
        }
    }

    fn rebuild_rhs(&mut self) {
        let nx = self.grid.nx();
        let n = self.grid.len();
        self.rhs.clear();
        self.rhs.resize(n, 0.0);
        for (r, s) in self.rhs.iter_mut().zip(self.sink_current.as_slice()) {
            *r = -s;
        }
        let g_port = self.port_conductance();
        for &(ix, iy) in &self.port_cells {
            self.rhs[iy * nx + ix] += g_port * self.supply.value();
        }
    }

    /// Swaps in a new power-density map (W/m² on the same grid) without
    /// re-assembling the conductance matrix — the amortized path for
    /// load sweeps and ablations.
    ///
    /// # Errors
    ///
    /// [`PdnError::GridMismatch`] / [`PdnError::InvalidConfig`] on bad
    /// maps, as in [`PowerGrid::new`].
    pub fn set_power_density(&mut self, power_density: &Field2d) -> Result<(), PdnError> {
        if power_density.grid() != &self.grid {
            return Err(PdnError::GridMismatch(format!(
                "power map {}x{} vs grid {}x{}",
                power_density.grid().nx(),
                power_density.grid().ny(),
                self.grid.nx(),
                self.grid.ny()
            )));
        }
        if power_density
            .as_slice()
            .iter()
            .any(|p| *p < 0.0 || !p.is_finite())
        {
            return Err(PdnError::InvalidConfig(
                "power density must be non-negative and finite".into(),
            ));
        }
        let cell_area = self.grid.cell_area();
        let supply = self.supply.value();
        self.sink_current = Field2d::from_vec(
            self.grid.clone(),
            power_density
                .as_slice()
                .iter()
                .map(|p| p * cell_area / supply)
                .collect(),
        )
        .expect("same grid");
        self.rebuild_rhs();
        Ok(())
    }

    /// The simulation grid.
    #[inline]
    pub fn grid(&self) -> &Grid2d {
        &self.grid
    }

    /// Number of supply ports.
    #[inline]
    pub fn port_count(&self) -> usize {
        self.port_cells.len()
    }

    /// Total sink current at nominal voltage.
    pub fn total_sink_current(&self) -> Ampere {
        Ampere::new(self.sink_current.as_slice().iter().sum())
    }

    /// Iteration options tuned for the PDN solve (CG on the SPD sheet
    /// Laplacian), with the given preconditioner.
    #[must_use]
    pub fn iter_options(preconditioner: PrecondSpec) -> IterOptions {
        IterOptions {
            tolerance: 1e-11,
            max_iterations: 50_000,
            preconditioner,
            ..IterOptions::default()
        }
    }

    /// The default session preconditioner: SSOR over-relaxed for the
    /// sheet Laplacian (≈3× fewer CG iterations than Jacobi on the
    /// production grids; see `BENCH_PR2.json`).
    #[must_use]
    pub fn default_preconditioner() -> PrecondSpec {
        PrecondSpec::Ssor { omega: 1.5 }
    }

    /// Size-aware preconditioner for *this* grid:
    /// [`PowerGrid::default_preconditioner`] (SSOR ω=1.5) on the
    /// paper-sized sheets, the geometric-multigrid V-cycle once the
    /// sheet reaches the `BRIGHT_MG_MIN_UNKNOWNS` threshold (default
    /// 200 000 unknowns), where SSOR iteration counts stop scaling.
    /// `BRIGHT_PRECOND` forces a specific choice process-wide.
    #[must_use]
    pub fn preferred_preconditioner(&self) -> PrecondSpec {
        PrecondSpec::auto_for_grid(
            self.grid.nx(),
            self.grid.ny(),
            1,
            Self::default_preconditioner(),
        )
    }

    /// Creates a solver session bound to this grid's conductance system
    /// with the size-aware [`PowerGrid::preferred_preconditioner`]. One
    /// session per sweep (or per worker thread) amortizes scratch,
    /// factorization and warm start.
    #[must_use]
    pub fn session(&self) -> SolverSession {
        self.session_with(self.preferred_preconditioner())
    }

    /// As [`PowerGrid::session`] with an explicit preconditioner choice
    /// (benches compare Jacobi/SSOR/IC(0) this way).
    #[must_use]
    pub fn session_with(&self, preconditioner: PrecondSpec) -> SolverSession {
        self.session_with_kernel(preconditioner, bright_num::KernelSpec::Auto)
    }

    /// As [`PowerGrid::session_with`] with an explicit kernel-backend
    /// selection (see [`bright_num::KernelSpec`]) — benches pin the
    /// scalar/blocked/threaded paths this way; production callers keep
    /// `Auto`.
    #[must_use]
    pub fn session_with_kernel(
        &self,
        preconditioner: PrecondSpec,
        kernel: bright_num::KernelSpec,
    ) -> SolverSession {
        let mut session = SolverSession::new(Self::iter_options(preconditioner));
        session.set_kernel(kernel);
        session.bind(&self.symbolic, &self.system, self.tag, 0);
        session
    }

    /// Solves the grid for the voltage map.
    ///
    /// # Errors
    ///
    /// Returns [`PdnError::Numerical`] if CG fails.
    pub fn solve(&self) -> Result<PdnSolution, PdnError> {
        let mut session = self.session();
        self.solve_warm(&mut session)
    }

    /// As [`PowerGrid::solve`], but reusing a caller-owned
    /// [`SolverSession`]: scratch and preconditioner are reused across
    /// solves and the solve warm-starts from the previous voltage map —
    /// the fast path when sweeping loads via
    /// [`PowerGrid::set_power_density`]. An unbound or foreign session
    /// is (re)bound to this grid's operator automatically.
    ///
    /// # Errors
    ///
    /// As [`PowerGrid::solve`].
    pub fn solve_warm(&self, session: &mut SolverSession) -> Result<PdnSolution, PdnError> {
        if !session.is_current(self.tag, 0) {
            session.bind(&self.symbolic, &self.system, self.tag, 0);
        }
        let n = self.grid.len();
        if session.solution().len() != n {
            // No previous solution: start from the flat supply voltage,
            // matching the cold-start path.
            session.seed_uniform(n, self.supply.value());
        }
        session.solve_spd(&self.rhs).map_err(PdnError::from)?;
        let voltage =
            Field2d::from_vec(self.grid.clone(), session.solution().to_vec()).expect("sized from grid");
        Ok(PdnSolution {
            voltage,
            supply: self.supply,
            total_current: self.total_sink_current(),
            sink_current: self.sink_current.clone(),
        })
    }

    /// Solves the grid through a banded Cholesky factorization of the
    /// conductance system, built once on first call and cached for the
    /// life of the grid (the matrix never depends on the load, so every
    /// [`PowerGrid::set_power_density`] keeps the factor). This is the
    /// amortized path for load sweeps and Monte Carlo studies: after
    /// the one-time `O(n·bw²)` factor, each solve is two triangular
    /// sweeps — no iteration, no preconditioner, and exactly
    /// reproducible regardless of what was solved before.
    ///
    /// For a single solve, [`PowerGrid::solve`] (preconditioned CG) is
    /// cheaper; the factorization pays for itself after a handful of
    /// re-stamped loads.
    ///
    /// # Errors
    ///
    /// [`PdnError::Numerical`] if the factorization fails (the
    /// assembled system is always SPD, so this indicates a bug or a
    /// fault-injection event).
    pub fn solve_direct(&self) -> Result<PdnSolution, PdnError> {
        let chol = bright_num::lazy::get_or_try_init(&self.direct, || {
            BandedCholesky::factor(&self.system).map_err(PdnError::from)
        })?;
        let voltage = chol.solve(&self.rhs).map_err(PdnError::from)?;
        let voltage = Field2d::from_vec(self.grid.clone(), voltage).expect("sized from grid");
        Ok(PdnSolution {
            voltage,
            supply: self.supply,
            total_current: self.total_sink_current(),
            sink_current: self.sink_current.clone(),
        })
    }

    /// Whether the direct-solve factor has been built (telemetry for
    /// cache-reuse accounting).
    #[inline]
    #[must_use]
    pub fn direct_factor_ready(&self) -> bool {
        self.direct.get().is_some()
    }
}

impl PdnSolution {
    /// The solved voltage map (V).
    #[inline]
    pub fn voltage_map(&self) -> &Field2d {
        &self.voltage
    }

    /// Minimum rail voltage (worst-case droop cell).
    pub fn min_voltage(&self) -> Volt {
        Volt::new(self.voltage.min())
    }

    /// Maximum rail voltage.
    pub fn max_voltage(&self) -> Volt {
        Volt::new(self.voltage.max())
    }

    /// Worst-case IR drop from the supply.
    pub fn worst_drop(&self) -> Volt {
        Volt::new(self.supply.value() - self.voltage.min())
    }

    /// The nominal supply voltage.
    #[inline]
    pub fn supply(&self) -> Volt {
        self.supply
    }

    /// Total load current.
    #[inline]
    pub fn total_current(&self) -> Ampere {
        self.total_current
    }

    /// Total power dissipated in the loads at the *actual* (drooped)
    /// node voltages.
    pub fn delivered_power(&self) -> Watt {
        let mut acc = 0.0;
        for (ix, iy) in self.voltage.grid().iter_cells() {
            acc += self.sink_current.get(ix, iy) * self.voltage.get(ix, iy);
        }
        Watt::new(acc)
    }

    /// Mean voltage over cells selected by the predicate (e.g. one cache
    /// block). `None` if no cell matches.
    pub fn mean_voltage_where<F: FnMut(f64, f64) -> bool>(&self, mut pred: F) -> Option<Volt> {
        let grid = self.voltage.grid().clone();
        self.voltage
            .mean_where(|ix, iy| {
                let (x, y) = grid.cell_center(ix, iy).expect("valid cell");
                pred(x, y)
            })
            .map(Volt::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> Grid2d {
        Grid2d::from_extent(10e-3, 10e-3, 20, 20).unwrap()
    }

    #[test]
    fn no_load_means_no_drop() {
        let grid = small_grid();
        let zero = Field2d::zeros(grid.clone());
        let pg = PowerGrid::new(
            grid,
            0.05,
            Volt::new(1.0),
            0.01,
            &PortLayout::UniformArray { pitch: 3e-3 },
            &zero,
        )
        .unwrap();
        let sol = pg.solve().unwrap();
        assert!((sol.min_voltage().value() - 1.0).abs() < 1e-9);
        assert!((sol.worst_drop().value()).abs() < 1e-9);
    }

    #[test]
    fn load_pulls_voltage_down_but_ports_hold_it() {
        let grid = small_grid();
        let load = Field2d::constant(grid.clone(), 1e4); // 1 W/cm^2
        let pg = PowerGrid::new(
            grid,
            0.05,
            Volt::new(1.0),
            0.01,
            &PortLayout::UniformArray { pitch: 3e-3 },
            &load,
        )
        .unwrap();
        let sol = pg.solve().unwrap();
        assert!(sol.min_voltage().value() < 1.0);
        assert!(sol.min_voltage().value() > 0.9);
        assert!(sol.max_voltage().value() <= 1.0 + 1e-9);
        // 1 W/cm^2 over 1 cm^2 at 1 V nominal -> 1 A total.
        assert!((sol.total_current().value() - 1.0).abs() < 1e-9);
        assert!(sol.delivered_power().value() < 1.0);
    }

    #[test]
    fn direct_solve_matches_iterative_and_survives_load_restamps() {
        let grid = small_grid();
        let load = Field2d::constant(grid.clone(), 1e4);
        let mut pg = PowerGrid::new(
            grid.clone(),
            0.05,
            Volt::new(1.0),
            0.01,
            &PortLayout::UniformArray { pitch: 3e-3 },
            &load,
        )
        .unwrap();

        let iterative = pg.solve().unwrap();
        assert!(!pg.direct_factor_ready());
        let direct = pg.solve_direct().unwrap();
        assert!(pg.direct_factor_ready());
        for (d, i) in direct.voltage.as_slice().iter().zip(iterative.voltage.as_slice()) {
            assert!((d - i).abs() < 1e-8, "direct {d} vs iterative {i}");
        }

        // Re-stamping the load only rewrites the RHS: the cached factor
        // must survive and keep agreeing with the iterative solve.
        let heavier = Field2d::constant(grid, 3e4);
        pg.set_power_density(&heavier).unwrap();
        assert!(pg.direct_factor_ready());
        let direct2 = pg.solve_direct().unwrap();
        let iterative2 = pg.solve().unwrap();
        for (d, i) in direct2.voltage.as_slice().iter().zip(iterative2.voltage.as_slice()) {
            assert!((d - i).abs() < 1e-8, "direct {d} vs iterative {i}");
        }
        assert!(direct2.min_voltage().value() < direct.min_voltage().value());
    }

    #[test]
    fn denser_ports_reduce_droop() {
        let grid = small_grid();
        let load = Field2d::constant(grid.clone(), 2e4);
        let sparse = PowerGrid::new(
            grid.clone(),
            0.08,
            Volt::new(1.0),
            0.01,
            &PortLayout::EdgeColumns {
                columns: 1,
                pitch: 2e-3,
            },
            &load,
        )
        .unwrap()
        .solve()
        .unwrap();
        let dense = PowerGrid::new(
            grid,
            0.08,
            Volt::new(1.0),
            0.01,
            &PortLayout::UniformArray { pitch: 2e-3 },
            &load,
        )
        .unwrap()
        .solve()
        .unwrap();
        assert!(
            dense.worst_drop().value() < sparse.worst_drop().value(),
            "dense {} vs sparse {}",
            dense.worst_drop().value(),
            sparse.worst_drop().value()
        );
    }

    #[test]
    fn droop_scales_with_sheet_resistance() {
        let grid = small_grid();
        let load = Field2d::constant(grid.clone(), 1e4);
        let ports = PortLayout::EdgeColumns {
            columns: 1,
            pitch: 2e-3,
        };
        let drop_of = |rs: f64| {
            PowerGrid::new(grid.clone(), rs, Volt::new(1.0), 0.0, &ports, &load)
                .unwrap()
                .solve()
                .unwrap()
                .worst_drop()
                .value()
        };
        let d1 = drop_of(0.02);
        let d2 = drop_of(0.04);
        assert!(
            (d2 / d1 - 2.0).abs() < 0.05,
            "drops {d1} and {d2} should scale linearly"
        );
    }

    #[test]
    fn mean_voltage_where_selects_regions() {
        let grid = small_grid();
        let mut load = Field2d::zeros(grid.clone());
        // Load only the left half.
        for iy in 0..20 {
            for ix in 0..10 {
                load.set(ix, iy, 3e4);
            }
        }
        let pg = PowerGrid::new(
            grid,
            0.05,
            Volt::new(1.0),
            0.005,
            &PortLayout::UniformArray { pitch: 4e-3 },
            &load,
        )
        .unwrap();
        let sol = pg.solve().unwrap();
        let left = sol.mean_voltage_where(|x, _| x < 5e-3).unwrap();
        let right = sol.mean_voltage_where(|x, _| x >= 5e-3).unwrap();
        assert!(left.value() < right.value());
        assert!(sol.mean_voltage_where(|_, _| false).is_none());
    }

    #[test]
    fn warm_solve_matches_cold_and_power_updates_apply() {
        let grid = small_grid();
        let light = Field2d::constant(grid.clone(), 5e3);
        let heavy = Field2d::constant(grid.clone(), 3e4);
        let ports = PortLayout::UniformArray { pitch: 3e-3 };
        let mut pg = PowerGrid::new(grid.clone(), 0.05, Volt::new(1.0), 0.01, &ports, &light)
            .unwrap();

        let cold = pg.solve().unwrap();
        let mut session = pg.session();
        let warm_first = pg.solve_warm(&mut session).unwrap();
        for (a, b) in cold
            .voltage_map()
            .as_slice()
            .iter()
            .zip(warm_first.voltage_map().as_slice())
        {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }

        // Swap the load without re-assembling; the warm-started result
        // must match a freshly built grid at the new load.
        pg.set_power_density(&heavy).unwrap();
        let warm = pg.solve_warm(&mut session).unwrap();
        let fresh = PowerGrid::new(grid.clone(), 0.05, Volt::new(1.0), 0.01, &ports, &heavy)
            .unwrap()
            .solve()
            .unwrap();
        for (a, b) in warm
            .voltage_map()
            .as_slice()
            .iter()
            .zip(fresh.voltage_map().as_slice())
        {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
        // Session bound once, preconditioner factored once, 2 solves.
        assert_eq!(session.stats().binds, 1);
        assert_eq!(session.stats().precond_setups, 1);
        assert_eq!(session.stats().solves, 2);
        // The update validates its input.
        let wrong = Field2d::zeros(Grid2d::new(5, 5, 1e-3, 1e-3).unwrap());
        assert!(pg.set_power_density(&wrong).is_err());
        let neg = Field2d::constant(grid, -1.0);
        assert!(pg.set_power_density(&neg).is_err());
    }

    #[test]
    fn preconditioner_choices_agree_and_ssor_ic0_iterate_less() {
        let grid = small_grid();
        let load = Field2d::constant(grid.clone(), 2e4);
        let pg = PowerGrid::new(
            grid,
            0.05,
            Volt::new(1.0),
            0.01,
            &PortLayout::UniformArray { pitch: 3e-3 },
            &load,
        )
        .unwrap();
        let run = |spec: PrecondSpec| {
            let mut s = pg.session_with(spec);
            let sol = pg.solve_warm(&mut s).unwrap();
            (sol, s.last_stats().iterations)
        };
        let (v_jac, it_jac) = run(PrecondSpec::Jacobi);
        for spec in [PrecondSpec::ssor(), PowerGrid::default_preconditioner(), PrecondSpec::Ic0] {
            let (v, it) = run(spec);
            assert!(it < it_jac, "{spec:?}: {it} vs jacobi {it_jac}");
            for (a, b) in v
                .voltage_map()
                .as_slice()
                .iter()
                .zip(v_jac.voltage_map().as_slice())
            {
                assert!((a - b).abs() < 1e-8, "{spec:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn foreign_session_is_rebound() {
        // A session bound to one grid keeps working when handed to
        // another (it rebinds and cold-starts).
        let grid = small_grid();
        let load = Field2d::constant(grid.clone(), 1e4);
        let ports = PortLayout::UniformArray { pitch: 3e-3 };
        let a = PowerGrid::new(grid.clone(), 0.05, Volt::new(1.0), 0.01, &ports, &load).unwrap();
        let b = PowerGrid::new(grid, 0.10, Volt::new(1.0), 0.01, &ports, &load).unwrap();
        let mut session = a.session();
        a.solve_warm(&mut session).unwrap();
        let sol_b = b.solve_warm(&mut session).unwrap();
        let fresh_b = b.solve().unwrap();
        for (x, y) in sol_b
            .voltage_map()
            .as_slice()
            .iter()
            .zip(fresh_b.voltage_map().as_slice())
        {
            assert!((x - y).abs() < 1e-8);
        }
        assert_eq!(session.stats().binds, 2);
    }

    #[test]
    fn validation() {
        let grid = small_grid();
        let zero = Field2d::zeros(grid.clone());
        let ports = PortLayout::UniformArray { pitch: 3e-3 };
        assert!(PowerGrid::new(grid.clone(), 0.0, Volt::new(1.0), 0.01, &ports, &zero).is_err());
        assert!(PowerGrid::new(grid.clone(), 0.05, Volt::new(0.0), 0.01, &ports, &zero).is_err());
        assert!(
            PowerGrid::new(grid.clone(), 0.05, Volt::new(1.0), -0.01, &ports, &zero).is_err()
        );
        let wrong = Field2d::zeros(Grid2d::new(5, 5, 1e-3, 1e-3).unwrap());
        assert!(PowerGrid::new(grid.clone(), 0.05, Volt::new(1.0), 0.01, &ports, &wrong).is_err());
        let neg = Field2d::constant(grid.clone(), -1.0);
        assert!(PowerGrid::new(grid, 0.05, Volt::new(1.0), 0.01, &ports, &neg).is_err());
    }
}
