//! The POWER7+ cache-rail configuration of Fig. 8.

use crate::grid::PowerGrid;
use crate::ports::PortLayout;
use crate::PdnError;
use bright_floorplan::{power7, PowerScenario};
use bright_mesh::Grid2d;
use bright_units::Volt;

/// Effective sheet resistance of the cache rail (Ω/sq). Calibrated so
/// the Fig. 8 droop range (≈0.96–1.0 V) is reproduced with the paper's
/// cache load; representative of a mid-level metal grid dedicated to a
/// single rail.
pub const CACHE_RAIL_SHEET_RESISTANCE: f64 = 0.25;

/// Series resistance of each TSV + VRM output port (Ω).
pub const PORT_RESISTANCE: f64 = 0.03;

/// TSV/VRM port pitch of the microfluidic supply (m): one regulator per
/// ~5 mm tile (Fig. 5's interposer VRM granularity).
pub const PORT_PITCH: f64 = 5e-3;

/// Grid resolution across the die for Fig. 8 (250 µm cells).
pub const FIG8_NX: usize = 106;

/// Grid rows for Fig. 8.
pub const FIG8_NY: usize = 85;

/// Builds the Fig. 8 experiment: the POWER7+ cache blocks drawing their
/// 1 W/cm² from the microfluidic supply at 1.0 V through a uniform TSV
/// port array; the rest of the chip is externally powered and draws
/// nothing from this rail.
///
/// # Errors
///
/// Propagates construction errors (cannot occur for the encoded
/// constants).
pub fn power7_cache_rail() -> Result<PowerGrid, PdnError> {
    let plan = power7::floorplan();
    let grid = Grid2d::from_extent(
        plan.width().value(),
        plan.height().value(),
        FIG8_NX,
        FIG8_NY,
    )
    .map_err(|e| PdnError::InvalidConfig(e.to_string()))?;
    let load = PowerScenario::cache_only()
        .rasterize(&plan, &grid)
        .map_err(|e| PdnError::InvalidConfig(e.to_string()))?;
    PowerGrid::new(
        grid,
        CACHE_RAIL_SHEET_RESISTANCE,
        Volt::new(1.0),
        PORT_RESISTANCE,
        &PortLayout::UniformArray { pitch: PORT_PITCH },
        &load,
    )
}

/// The Fig. 8 cache rail at `scale`× finer resolution in both plane
/// directions (`scale = 1` is [`power7_cache_rail`]): same die, load
/// and port array, only smaller cells. `scale = 8` gives an
/// `848 × 680 ≈ 577k`-unknown sheet — the regime where
/// [`PowerGrid::preferred_preconditioner`] switches the session to the
/// geometric-multigrid V-cycle.
///
/// # Errors
///
/// [`PdnError::InvalidConfig`] for `scale = 0` (and construction errors
/// as in [`power7_cache_rail`], which cannot occur for the encoded
/// constants).
pub fn power7_cache_rail_scaled(scale: usize) -> Result<PowerGrid, PdnError> {
    if scale == 0 {
        return Err(PdnError::InvalidConfig(
            "preset scale must be at least 1".into(),
        ));
    }
    let plan = power7::floorplan();
    let grid = Grid2d::from_extent(
        plan.width().value(),
        plan.height().value(),
        FIG8_NX * scale,
        FIG8_NY * scale,
    )
    .map_err(|e| PdnError::InvalidConfig(e.to_string()))?;
    let load = PowerScenario::cache_only()
        .rasterize(&plan, &grid)
        .map_err(|e| PdnError::InvalidConfig(e.to_string()))?;
    PowerGrid::new(
        grid,
        CACHE_RAIL_SHEET_RESISTANCE,
        Volt::new(1.0),
        PORT_RESISTANCE,
        &PortLayout::UniformArray { pitch: PORT_PITCH },
        &load,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rail_refines_the_sheet() {
        let pg = power7_cache_rail_scaled(2).unwrap();
        // Same physical load at finer resolution.
        let i = pg.total_sink_current().value();
        assert!(i > 2.0 && i < 2.8, "I = {i} A");
        assert!(power7_cache_rail_scaled(0).is_err());
    }

    #[test]
    fn fig8_droop_range() {
        let sol = power7_cache_rail().unwrap().solve().unwrap();
        let min = sol.min_voltage().value();
        let max = sol.max_voltage().value();
        // Fig. 8 scale: 0.96 .. 1.0 V.
        assert!(min > 0.93 && min < 0.995, "min = {min}");
        assert!(max <= 1.0 + 1e-9 && max > 0.99, "max = {max}");
    }

    #[test]
    fn cache_current_matches_floorplan() {
        let pg = power7_cache_rail().unwrap();
        let i = pg.total_sink_current().value();
        // 1 W/cm^2 over ~2.39 cm^2 of caches at 1 V.
        assert!(i > 2.0 && i < 2.8, "I = {i} A");
    }

    #[test]
    fn cache_blocks_sag_more_than_cores() {
        let sol = power7_cache_rail().unwrap().solve().unwrap();
        let plan = bright_floorplan::power7::floorplan();
        let l3 = plan.block("l3_0").unwrap().rect();
        let core = plan.block("core0").unwrap().rect();
        let v_l3 = sol
            .mean_voltage_where(|x, y| l3.contains(x, y))
            .unwrap()
            .value();
        let v_core = sol
            .mean_voltage_where(|x, y| core.contains(x, y))
            .unwrap()
            .value();
        assert!(v_l3 < v_core, "L3 {v_l3} vs core {v_core}");
    }
}
