//! On-chip power delivery network (PDN) modelling.
//!
//! Implements Section III-A of the paper: the microfluidic flow-cell
//! array feeds the POWER7+ cache rails through TSVs and on-package
//! voltage-regulator modules (VRMs, Fig. 5/Fig. 6), and a resistive
//! power-grid solve produces the cache voltage map of Fig. 8.
//!
//! * [`grid`] — the power grid as a resistive sheet (node Laplacian),
//!   with current sinks from block power maps and supply ports,
//! * [`ports`] — supply-port layouts (TSV arrays, edge columns),
//! * [`vrm`] — voltage-regulator models (ideal, fixed-efficiency,
//!   switched-capacitor per Andersen et al., buck per Onizuka et al.),
//! * [`pins`] — the C4 pin-budget argument of the introduction: how many
//!   package bumps the fluidic supply frees for I/O,
//! * [`presets`] — the POWER7+ cache-rail configuration.
//!
//! # Examples
//!
//! ```
//! use bright_pdn::presets;
//!
//! let solution = presets::power7_cache_rail().expect("valid preset")
//!     .solve().expect("solvable grid");
//! let min_v = solution.min_voltage().value();
//! // Fig. 8: the cache rail sags to ~0.96 V from the 1.0 V supply.
//! assert!(min_v > 0.9 && min_v < 1.0, "min = {min_v} V");
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod grid;
pub mod pins;
pub mod ports;
pub mod presets;
pub mod vrm;

pub use grid::{PdnSolution, PowerGrid};
pub use ports::PortLayout;
pub use vrm::Vrm;

use std::fmt;

/// Errors produced by the PDN models.
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// Invalid grid/port/VRM configuration.
    InvalidConfig(String),
    /// A map does not match the grid.
    GridMismatch(String),
    /// The linear solve failed.
    Numerical(String),
}

impl fmt::Display for PdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdnError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            PdnError::GridMismatch(m) => write!(f, "grid mismatch: {m}"),
            PdnError::Numerical(m) => write!(f, "numerical failure: {m}"),
        }
    }
}

impl std::error::Error for PdnError {}

impl From<bright_num::NumError> for PdnError {
    fn from(e: bright_num::NumError) -> Self {
        PdnError::Numerical(e.to_string())
    }
}
