//! Property-based tests of the electrochemical relations.

use proptest::prelude::*;

use bright_echem::electrolyte::{area_specific_resistance, Electrolyte, IonicConductivity};
use bright_echem::nernst::equilibrium_potential;
use bright_echem::temperature::{diffusivity_law, rate_constant_law};
use bright_echem::vanadium;
use bright_echem::{ButlerVolmer, RedoxCouple, SurfaceState};
use bright_units::{
    AmperePerSquareMeter, Kelvin, MetersPerSecondRate, MolePerCubicMeter, SiemensPerMeter, Volt,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nernst_is_antisymmetric_in_concentration_swap(
        c_ox in 1.0..5000.0f64,
        c_red in 1.0..5000.0f64,
        t in 280.0..340.0f64,
    ) {
        let couple = RedoxCouple::new("p", Volt::new(0.0), 1, 0.5).unwrap();
        let tk = Kelvin::new(t);
        let e1 = equilibrium_potential(
            &couple,
            MolePerCubicMeter::new(c_ox),
            MolePerCubicMeter::new(c_red),
            tk,
        )
        .unwrap()
        .value();
        let e2 = equilibrium_potential(
            &couple,
            MolePerCubicMeter::new(c_red),
            MolePerCubicMeter::new(c_ox),
            tk,
        )
        .unwrap()
        .value();
        prop_assert!((e1 + e2).abs() < 1e-12);
    }

    #[test]
    fn vanadium_ocv_grows_with_state_of_charge(
        soc in 0.05..0.90f64,
        dsoc in 0.01..0.09f64,
    ) {
        let total = MolePerCubicMeter::new(2000.0);
        let t = Kelvin::new(300.0);
        let pos = vanadium::positive_couple();
        let neg = vanadium::negative_couple();
        let ocv = |s: f64| {
            let p = Electrolyte::positive_at_soc(total, s).unwrap();
            let n = Electrolyte::negative_at_soc(total, s).unwrap();
            bright_echem::nernst::open_circuit_voltage(
                &pos, p.c_ox, p.c_red, &neg, n.c_ox, n.c_red, t,
            )
            .unwrap()
            .value()
        };
        prop_assert!(ocv(soc + dsoc) > ocv(soc));
    }

    #[test]
    fn exchange_current_grows_with_rate_constant_and_concentration(
        k0 in 1e-7..1e-4f64,
        c in 10.0..3000.0f64,
        factor in 1.1..5.0f64,
    ) {
        let couple = RedoxCouple::new("p", Volt::new(0.0), 1, 0.5).unwrap();
        let make = |k: f64, conc: f64| {
            ButlerVolmer::new(
                couple.clone(),
                MetersPerSecondRate::new(k),
                MolePerCubicMeter::new(conc),
                MolePerCubicMeter::new(conc),
            )
            .unwrap()
            .exchange_current_density()
            .value()
        };
        prop_assert!(make(k0 * factor, c) > make(k0, c));
        prop_assert!(make(k0, c * factor) > make(k0, c));
        // i0 = n F k0 c for equal concentrations and alpha = 1/2.
        let i0 = make(k0, c);
        prop_assert!((i0 - 96485.33212 * k0 * c).abs() < 1e-6 * i0);
    }

    #[test]
    fn butler_volmer_slope_positive_everywhere(
        eta in -0.5..0.5f64,
        c_ox_s in 0.0..2000.0f64,
        c_red_s in 0.0..2000.0f64,
    ) {
        let couple = RedoxCouple::new("p", Volt::new(0.0), 1, 0.5).unwrap();
        let bv = ButlerVolmer::new(
            couple,
            MetersPerSecondRate::new(1e-5),
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(1000.0),
        )
        .unwrap();
        let surf = SurfaceState {
            c_ox: MolePerCubicMeter::new(c_ox_s),
            c_red: MolePerCubicMeter::new(c_red_s),
        };
        let slope = bv.current_density_slope(eta, surf, Kelvin::new(300.0)).unwrap();
        prop_assert!(slope >= 0.0);
    }

    #[test]
    fn inversion_is_monotone_in_target(
        t1 in -1000.0..1000.0f64,
        dt in 1.0..500.0f64,
    ) {
        let couple = RedoxCouple::new("p", Volt::new(0.0), 1, 0.5).unwrap();
        let bv = ButlerVolmer::new(
            couple,
            MetersPerSecondRate::new(1e-5),
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(1000.0),
        )
        .unwrap();
        let surf = SurfaceState {
            c_ox: MolePerCubicMeter::new(800.0),
            c_red: MolePerCubicMeter::new(900.0),
        };
        let tk = Kelvin::new(300.0);
        let e1 = bv
            .overpotential_for_current(AmperePerSquareMeter::new(t1), surf, tk)
            .unwrap();
        let e2 = bv
            .overpotential_for_current(AmperePerSquareMeter::new(t1 + dt), surf, tk)
            .unwrap();
        prop_assert!(e2 > e1);
    }

    #[test]
    fn arrhenius_laws_are_monotone_and_positive(
        ref_val in 1e-12..1e-3f64,
        t in 275.0..345.0f64,
        dt in 0.5..30.0f64,
    ) {
        let t_ref = Kelvin::new(300.0);
        for law in [
            rate_constant_law(ref_val, t_ref).unwrap(),
            diffusivity_law(ref_val, t_ref).unwrap(),
        ] {
            let v1 = law.at(Kelvin::new(t)).unwrap();
            let v2 = law.at(Kelvin::new(t + dt)).unwrap();
            prop_assert!(v1 > 0.0);
            prop_assert!(v2 > v1);
        }
    }

    #[test]
    fn asr_scales_linearly_with_gap(
        gap in 1e-5..1e-2f64,
        sigma in 1.0..100.0f64,
        factor in 1.1..10.0f64,
    ) {
        let s = SiemensPerMeter::new(sigma);
        let r1 = area_specific_resistance(gap, s).unwrap();
        let r2 = area_specific_resistance(gap * factor, s).unwrap();
        prop_assert!((r2 / r1 - factor).abs() < 1e-12);
    }

    #[test]
    fn conductivity_model_positive_in_operating_range(t in 280.0..360.0f64) {
        let sigma = IonicConductivity::vanadium_default()
            .at(Kelvin::new(t))
            .unwrap();
        prop_assert!(sigma.value() > 0.0);
    }
}
