//! Electrochemistry of redox flow cells.
//!
//! Implements the electrochemical theory of Section II of the DATE 2014
//! paper for the all-vanadium chemistry:
//!
//! * [`couple`] — redox couples (`Ox + n·e⁻ ⇌ Red`) with standard
//!   potentials: V²⁺/V³⁺ at the negative electrode, VO₂⁺/VO²⁺ at the
//!   positive electrode,
//! * [`nernst`] — equilibrium (Nernst) potentials, eqs. (4)–(5), and the
//!   open-circuit voltage,
//! * [`kinetics`] — Butler–Volmer electrode kinetics, eq. (6), with the
//!   surface-concentration factors that embed the mass-transfer
//!   overpotential, eqs. (7)–(8),
//! * [`electrolyte`] — compositions, state of charge and ionic
//!   conductivity (the ohmic overpotential `η_Ω = R·I`),
//! * [`temperature`] — Arrhenius laws for the kinetic rate constant and
//!   diffusivities (the coupling that makes warm chips *better*
//!   generators — the paper's +23 % observation),
//! * [`vanadium`] — ready-made parameter sets for Table I (validation
//!   cell) and Table II (POWER7+ array).
//!
//! Note on eq. (6): the paper prints the Butler–Volmer exponents as
//! `α·R·T·η/F`, which is dimensionally inverted; this crate implements the
//! standard `α·F·η/(R·T)` form from the paper's own references (Bard &
//! Faulkner).
//!
//! # Examples
//!
//! ```
//! use bright_echem::vanadium;
//! use bright_units::Kelvin;
//!
//! let cell = vanadium::power7_cell_chemistry();
//! let ocv = cell.open_circuit_voltage(Kelvin::new(300.0)).unwrap();
//! // High concentration ratios push the OCV well above the 1.255 V
//! // standard value (Fig. 7 shows ~1.6 V at zero current).
//! assert!(ocv.value() > 1.4 && ocv.value() < 1.8);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cell;
pub mod couple;
pub mod electrolyte;
pub mod kinetics;
pub mod nernst;
pub mod temperature;
pub mod vanadium;

pub use cell::{CellChemistry, HalfCellChemistry};
pub use couple::RedoxCouple;
pub use electrolyte::{Electrolyte, IonicConductivity};
pub use kinetics::{ButlerVolmer, SurfaceState};
pub use temperature::Arrhenius;

use std::fmt;

/// Errors produced by the electrochemical models.
#[derive(Debug, Clone, PartialEq)]
pub enum EchemError {
    /// A concentration is non-positive or non-finite.
    InvalidConcentration(String),
    /// A temperature is non-physical.
    InvalidTemperature(String),
    /// A kinetic or thermodynamic parameter is out of range.
    InvalidParameter(String),
    /// An operating point cannot be realized (e.g. current above the
    /// mass-transfer limit).
    InfeasibleOperatingPoint(String),
}

impl fmt::Display for EchemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EchemError::InvalidConcentration(m) => write!(f, "invalid concentration: {m}"),
            EchemError::InvalidTemperature(m) => write!(f, "invalid temperature: {m}"),
            EchemError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            EchemError::InfeasibleOperatingPoint(m) => {
                write!(f, "infeasible operating point: {m}")
            }
        }
    }
}

impl std::error::Error for EchemError {}
