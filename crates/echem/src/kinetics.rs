//! Butler–Volmer electrode kinetics (paper eq. 6).
//!
//! Sign convention: **anodic current is positive**. For a couple
//! `Ox + n·e⁻ ⇌ Red` at overpotential `η = E − E_eq`:
//!
//! ```text
//! i = i₀ · [ (C_red,s/C_red,ref)·exp((1−α)·n·F·η/(R·T))
//!          − (C_ox,s /C_ox,ref )·exp(−α·n·F·η/(R·T)) ]
//! ```
//!
//! with the exchange current density
//! `i₀ = n·F·k⁰·C_ox,ref^(1−α)·C_red,ref^α`. The surface-concentration
//! ratios implicitly contain the mass-transfer overpotential, exactly as
//! the paper notes below its eq. (6).

use crate::{EchemError, RedoxCouple};
use bright_units::constants::FARADAY;
use bright_units::constants::thermal_voltage;
use bright_units::{AmperePerSquareMeter, Kelvin, MetersPerSecondRate, MolePerCubicMeter};

/// Butler–Volmer kinetics for one electrode.
///
/// Holds the couple, the kinetic rate constant `k⁰` and the reference
/// (inlet bulk) concentrations that normalize the surface terms.
#[derive(Debug, Clone, PartialEq)]
pub struct ButlerVolmer {
    couple: RedoxCouple,
    rate_constant: MetersPerSecondRate,
    c_ox_ref: MolePerCubicMeter,
    c_red_ref: MolePerCubicMeter,
}

/// Surface concentrations at an electrode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceState {
    /// Oxidized-species concentration at the electrode surface.
    pub c_ox: MolePerCubicMeter,
    /// Reduced-species concentration at the electrode surface.
    pub c_red: MolePerCubicMeter,
}

impl ButlerVolmer {
    /// Creates the kinetics for `couple` with rate constant `k⁰` and
    /// reference bulk concentrations.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidParameter`] for a non-positive rate
    /// constant and [`EchemError::InvalidConcentration`] for non-positive
    /// reference concentrations.
    pub fn new(
        couple: RedoxCouple,
        rate_constant: MetersPerSecondRate,
        c_ox_ref: MolePerCubicMeter,
        c_red_ref: MolePerCubicMeter,
    ) -> Result<Self, EchemError> {
        if !(rate_constant.value() > 0.0 && rate_constant.is_finite()) {
            return Err(EchemError::InvalidParameter(format!(
                "rate constant must be positive and finite, got {rate_constant}"
            )));
        }
        for (name, c) in [("oxidant", c_ox_ref), ("reductant", c_red_ref)] {
            if !(c.value() > 0.0 && c.is_finite()) {
                return Err(EchemError::InvalidConcentration(format!(
                    "reference {name} concentration must be positive, got {c}"
                )));
            }
        }
        Ok(Self {
            couple,
            rate_constant,
            c_ox_ref,
            c_red_ref,
        })
    }

    /// The redox couple.
    #[inline]
    pub fn couple(&self) -> &RedoxCouple {
        &self.couple
    }

    /// The kinetic rate constant `k⁰`.
    #[inline]
    pub fn rate_constant(&self) -> MetersPerSecondRate {
        self.rate_constant
    }

    /// Reference oxidant concentration.
    #[inline]
    pub fn c_ox_ref(&self) -> MolePerCubicMeter {
        self.c_ox_ref
    }

    /// Reference reductant concentration.
    #[inline]
    pub fn c_red_ref(&self) -> MolePerCubicMeter {
        self.c_red_ref
    }

    /// Returns a copy with a different rate constant (used by the
    /// temperature coupling).
    pub fn with_rate_constant(&self, k0: MetersPerSecondRate) -> Result<Self, EchemError> {
        Self::new(self.couple.clone(), k0, self.c_ox_ref, self.c_red_ref)
    }

    /// Exchange current density
    /// `i₀ = n·F·k⁰·C_ox,ref^(1−α)·C_red,ref^α` (A/m²).
    pub fn exchange_current_density(&self) -> AmperePerSquareMeter {
        let n = self.couple.electrons() as f64;
        let a = self.couple.alpha();
        AmperePerSquareMeter::new(
            n * FARADAY
                * self.rate_constant.value()
                * self.c_ox_ref.value().powf(1.0 - a)
                * self.c_red_ref.value().powf(a),
        )
    }

    /// Net anodic current density at overpotential `eta` (V) with the given
    /// surface concentrations, eq. (6) of the paper in standard form.
    ///
    /// # Errors
    ///
    /// * [`EchemError::InvalidTemperature`] for non-physical `t`,
    /// * [`EchemError::InvalidConcentration`] for negative surface
    ///   concentrations (zero is allowed — full depletion).
    pub fn current_density(
        &self,
        eta: f64,
        surface: SurfaceState,
        t: Kelvin,
    ) -> Result<AmperePerSquareMeter, EchemError> {
        if !t.is_physical() {
            return Err(EchemError::InvalidTemperature(format!(
                "non-physical temperature {t}"
            )));
        }
        for (name, c) in [("oxidant", surface.c_ox), ("reductant", surface.c_red)] {
            if !(c.value() >= 0.0 && c.is_finite()) {
                return Err(EchemError::InvalidConcentration(format!(
                    "surface {name} concentration must be non-negative, got {c}"
                )));
            }
        }
        let n = self.couple.electrons() as f64;
        let a = self.couple.alpha();
        let f_over_rt = n / thermal_voltage(t.value());
        let i0 = self.exchange_current_density().value();
        let anodic = (surface.c_red / self.c_red_ref) * ((1.0 - a) * f_over_rt * eta).exp();
        let cathodic = (surface.c_ox / self.c_ox_ref) * (-a * f_over_rt * eta).exp();
        Ok(AmperePerSquareMeter::new(i0 * (anodic - cathodic)))
    }

    /// Derivative `∂i/∂η` at the given state (used by Newton iterations).
    ///
    /// # Errors
    ///
    /// As [`ButlerVolmer::current_density`].
    pub fn current_density_slope(
        &self,
        eta: f64,
        surface: SurfaceState,
        t: Kelvin,
    ) -> Result<f64, EchemError> {
        if !t.is_physical() {
            return Err(EchemError::InvalidTemperature(format!(
                "non-physical temperature {t}"
            )));
        }
        let n = self.couple.electrons() as f64;
        let a = self.couple.alpha();
        let f_over_rt = n / thermal_voltage(t.value());
        let i0 = self.exchange_current_density().value();
        let anodic = (surface.c_red / self.c_red_ref)
            * (1.0 - a)
            * f_over_rt
            * ((1.0 - a) * f_over_rt * eta).exp();
        let cathodic =
            (surface.c_ox / self.c_ox_ref) * a * f_over_rt * (-a * f_over_rt * eta).exp();
        Ok(i0 * (anodic + cathodic))
    }

    /// Inverts Butler–Volmer: the overpotential `η` that drives current
    /// density `target` (anodic positive) at the given surface state.
    ///
    /// For the symmetric case `α = ½` (all vanadium couples in this
    /// workspace) the inversion is closed-form: with `X = exp(n·F·η/(2RT))`
    /// the kinetics become the quadratic `a_red·X² − (i/i₀)·X − a_ox = 0`.
    /// For other `α` a damped Newton iteration seeded from the symmetric
    /// solution is used.
    ///
    /// # Errors
    ///
    /// * [`EchemError::InvalidTemperature`] / `InvalidConcentration` as for
    ///   [`ButlerVolmer::current_density`],
    /// * [`EchemError::InfeasibleOperatingPoint`] if the anodic branch is
    ///   required (`target > 0`) but the reduced species is fully depleted
    ///   at the surface (or vice versa for cathodic currents).
    pub fn overpotential_for_current(
        &self,
        target: AmperePerSquareMeter,
        surface: SurfaceState,
        t: Kelvin,
    ) -> Result<f64, EchemError> {
        if !t.is_physical() {
            return Err(EchemError::InvalidTemperature(format!(
                "non-physical temperature {t}"
            )));
        }
        let a_red = surface.c_red / self.c_red_ref;
        let a_ox = surface.c_ox / self.c_ox_ref;
        if !a_red.is_finite() || !a_ox.is_finite() || a_red < 0.0 || a_ox < 0.0 {
            return Err(EchemError::InvalidConcentration(format!(
                "bad surface ratios a_red={a_red}, a_ox={a_ox}"
            )));
        }
        let i0 = self.exchange_current_density().value();
        let y = target.value() / i0;
        if a_red <= 0.0 && y > 0.0 {
            return Err(EchemError::InfeasibleOperatingPoint(
                "anodic current demanded with depleted reductant".into(),
            ));
        }
        if a_ox <= 0.0 && y < 0.0 {
            return Err(EchemError::InfeasibleOperatingPoint(
                "cathodic current demanded with depleted oxidant".into(),
            ));
        }
        let n = self.couple.electrons() as f64;
        let f_over_rt = n / thermal_voltage(t.value());

        // Symmetric closed form (exact for alpha = 1/2).
        let symmetric_eta = {
            let disc = (y * y + 4.0 * a_red * a_ox).sqrt();
            let x = if a_red > 0.0 {
                (y + disc) / (2.0 * a_red)
            } else {
                // a_red == 0, y <= 0: X = -a_ox / y.
                -a_ox / y
            };
            if !x.is_finite() || x <= 0.0 {
                return Err(EchemError::InfeasibleOperatingPoint(format!(
                    "no overpotential satisfies i/i0 = {y:.3e} at a_red={a_red:.3e}, \
                     a_ox={a_ox:.3e}"
                )));
            }
            2.0 * x.ln() / f_over_rt
        };
        if (self.couple.alpha() - 0.5).abs() < 1e-12 {
            return Ok(symmetric_eta);
        }
        // General alpha: damped Newton on the monotone BV curve.
        let mut eta = symmetric_eta;
        for _ in 0..100 {
            let i = self.current_density(eta, surface, t)?.value();
            let resid = i - target.value();
            let slope = self.current_density_slope(eta, surface, t)?;
            if slope <= 0.0 || !slope.is_finite() {
                break;
            }
            let mut step = resid / slope;
            let scale = 2.0 / f_over_rt;
            if step.abs() > scale {
                step = step.signum() * scale;
            }
            eta -= step;
            if step.abs() < 1e-14 {
                break;
            }
        }
        Ok(eta)
    }

    /// Charge-transfer resistance per unit area at equilibrium:
    /// `R_ct = R·T/(n·F·i₀)` (Ω·m²) — the small-signal linearization of
    /// Butler–Volmer.
    pub fn charge_transfer_resistance(&self, t: Kelvin) -> Result<f64, EchemError> {
        if !t.is_physical() {
            return Err(EchemError::InvalidTemperature(format!(
                "non-physical temperature {t}"
            )));
        }
        let n = self.couple.electrons() as f64;
        Ok(thermal_voltage(t.value()) / (n * self.exchange_current_density().value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bright_units::Volt;

    fn bv() -> ButlerVolmer {
        let couple = RedoxCouple::new("test", Volt::new(0.0), 1, 0.5).unwrap();
        ButlerVolmer::new(
            couple,
            MetersPerSecondRate::new(1e-5),
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(1000.0),
        )
        .unwrap()
    }

    fn bulk() -> SurfaceState {
        SurfaceState {
            c_ox: MolePerCubicMeter::new(1000.0),
            c_red: MolePerCubicMeter::new(1000.0),
        }
    }

    #[test]
    fn zero_overpotential_gives_zero_current() {
        let i = bv()
            .current_density(0.0, bulk(), Kelvin::new(300.0))
            .unwrap();
        assert!(i.value().abs() < 1e-12);
    }

    #[test]
    fn exchange_current_density_formula() {
        // i0 = F k0 sqrt(Cox Cred) = 96485 * 1e-5 * 1000 = 964.85 A/m2.
        let i0 = bv().exchange_current_density();
        assert!((i0.value() - 964.85).abs() < 0.01);
    }

    #[test]
    fn anodic_positive_cathodic_negative() {
        let b = bv();
        let t = Kelvin::new(300.0);
        assert!(b.current_density(0.1, bulk(), t).unwrap().value() > 0.0);
        assert!(b.current_density(-0.1, bulk(), t).unwrap().value() < 0.0);
    }

    #[test]
    fn symmetric_alpha_gives_antisymmetric_curve() {
        let b = bv();
        let t = Kelvin::new(300.0);
        let ip = b.current_density(0.05, bulk(), t).unwrap().value();
        let im = b.current_density(-0.05, bulk(), t).unwrap().value();
        assert!((ip + im).abs() < 1e-9 * ip.abs().max(1.0));
    }

    #[test]
    fn depleted_surface_kills_anodic_branch() {
        let b = bv();
        let t = Kelvin::new(300.0);
        let depleted = SurfaceState {
            c_ox: MolePerCubicMeter::new(1000.0),
            c_red: MolePerCubicMeter::new(0.0),
        };
        // Large positive overpotential but no reductant at the surface:
        // only the (small) cathodic branch remains -> negative current.
        let i = b.current_density(0.3, depleted, t).unwrap();
        assert!(i.value() <= 0.0, "i = {i}");
    }

    #[test]
    fn slope_matches_finite_difference() {
        let b = bv();
        let t = Kelvin::new(300.0);
        let eta = 0.07;
        let h = 1e-7;
        let slope = b.current_density_slope(eta, bulk(), t).unwrap();
        let fd = (b.current_density(eta + h, bulk(), t).unwrap().value()
            - b.current_density(eta - h, bulk(), t).unwrap().value())
            / (2.0 * h);
        assert!(((slope - fd) / fd).abs() < 1e-6, "{slope} vs {fd}");
    }

    #[test]
    fn tafel_slope_at_large_overpotential() {
        // At eta >> RT/F, d(ln i)/d(eta) -> (1-a) F/(RT).
        let b = bv();
        let t = Kelvin::new(300.0);
        let e1 = 0.25;
        let e2 = 0.26;
        let i1 = b.current_density(e1, bulk(), t).unwrap().value();
        let i2 = b.current_density(e2, bulk(), t).unwrap().value();
        let slope = (i2.ln() - i1.ln()) / (e2 - e1);
        let expected = 0.5 / thermal_voltage(300.0);
        assert!((slope - expected).abs() / expected < 1e-3);
    }

    #[test]
    fn charge_transfer_resistance_is_small_signal_inverse_slope() {
        let b = bv();
        let t = Kelvin::new(300.0);
        let rct = b.charge_transfer_resistance(t).unwrap();
        let slope = b.current_density_slope(0.0, bulk(), t).unwrap();
        assert!((rct - 1.0 / slope).abs() / rct < 1e-12);
    }

    #[test]
    fn inversion_roundtrips_symmetric() {
        let b = bv();
        let t = Kelvin::new(300.0);
        for target in [-500.0, -50.0, 0.0, 50.0, 500.0, 5000.0] {
            let eta = b
                .overpotential_for_current(AmperePerSquareMeter::new(target), bulk(), t)
                .unwrap();
            let back = b.current_density(eta, bulk(), t).unwrap().value();
            assert!(
                (back - target).abs() < 1e-8 * target.abs().max(1.0),
                "target {target}: eta {eta} -> {back}"
            );
        }
    }

    #[test]
    fn inversion_at_zero_current_is_local_nernst_shift() {
        let b = bv();
        let t = Kelvin::new(300.0);
        let skewed = SurfaceState {
            c_ox: MolePerCubicMeter::new(2000.0),
            c_red: MolePerCubicMeter::new(500.0),
        };
        let eta = b
            .overpotential_for_current(AmperePerSquareMeter::new(0.0), skewed, t)
            .unwrap();
        // eta(0) = (RT/nF) ln(a_ox/a_red) = Vt ln(2.0/0.5).
        let expected = thermal_voltage(300.0) * (4.0_f64).ln();
        assert!((eta - expected).abs() < 1e-12, "{eta} vs {expected}");
    }

    #[test]
    fn inversion_roundtrips_asymmetric_alpha() {
        let couple = RedoxCouple::new("asym", Volt::new(0.0), 1, 0.3).unwrap();
        let b = ButlerVolmer::new(
            couple,
            MetersPerSecondRate::new(1e-5),
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(1000.0),
        )
        .unwrap();
        let t = Kelvin::new(300.0);
        for target in [-800.0, -10.0, 10.0, 800.0] {
            let eta = b
                .overpotential_for_current(AmperePerSquareMeter::new(target), bulk(), t)
                .unwrap();
            let back = b.current_density(eta, bulk(), t).unwrap().value();
            assert!(
                (back - target).abs() < 1e-6 * target.abs().max(1.0),
                "target {target}: eta {eta} -> {back}"
            );
        }
    }

    #[test]
    fn inversion_rejects_depleted_demands() {
        let b = bv();
        let t = Kelvin::new(300.0);
        let no_red = SurfaceState {
            c_ox: MolePerCubicMeter::new(1000.0),
            c_red: MolePerCubicMeter::new(0.0),
        };
        assert!(matches!(
            b.overpotential_for_current(AmperePerSquareMeter::new(100.0), no_red, t),
            Err(EchemError::InfeasibleOperatingPoint(_))
        ));
        // Cathodic current through the depleted-red surface is fine.
        assert!(b
            .overpotential_for_current(AmperePerSquareMeter::new(-100.0), no_red, t)
            .is_ok());
    }

    #[test]
    fn validation() {
        let couple = RedoxCouple::new("t", Volt::new(0.0), 1, 0.5).unwrap();
        assert!(ButlerVolmer::new(
            couple.clone(),
            MetersPerSecondRate::new(0.0),
            MolePerCubicMeter::new(1.0),
            MolePerCubicMeter::new(1.0)
        )
        .is_err());
        assert!(ButlerVolmer::new(
            couple,
            MetersPerSecondRate::new(1e-5),
            MolePerCubicMeter::new(-1.0),
            MolePerCubicMeter::new(1.0)
        )
        .is_err());
        let b = bv();
        assert!(b.current_density(0.0, bulk(), Kelvin::new(0.0)).is_err());
        let bad = SurfaceState {
            c_ox: MolePerCubicMeter::new(-5.0),
            c_red: MolePerCubicMeter::new(1.0),
        };
        assert!(b.current_density(0.0, bad, Kelvin::new(300.0)).is_err());
    }
}
