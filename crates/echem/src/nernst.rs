//! Nernst equilibrium potentials (paper eqs. 4–5).

use crate::{EchemError, RedoxCouple};
use bright_units::constants::thermal_voltage;
use bright_units::{Kelvin, MolePerCubicMeter, Volt};

/// Equilibrium electrode potential from the Nernst equation:
/// `E = E⁰ + (R·T)/(n·F) · ln(C_ox / C_red)`.
///
/// # Errors
///
/// * [`EchemError::InvalidTemperature`] for non-physical `t`,
/// * [`EchemError::InvalidConcentration`] for non-positive concentrations.
///
/// # Examples
///
/// ```
/// use bright_echem::nernst::equilibrium_potential;
/// use bright_echem::RedoxCouple;
/// use bright_units::{Kelvin, MolePerCubicMeter, Volt};
///
/// let couple = RedoxCouple::new("test", Volt::new(0.5), 1, 0.5)?;
/// // Equal concentrations: E = E0 exactly.
/// let e = equilibrium_potential(
///     &couple,
///     MolePerCubicMeter::new(100.0),
///     MolePerCubicMeter::new(100.0),
///     Kelvin::new(300.0),
/// )?;
/// assert!((e.value() - 0.5).abs() < 1e-12);
/// # Ok::<(), bright_echem::EchemError>(())
/// ```
pub fn equilibrium_potential(
    couple: &RedoxCouple,
    c_ox: MolePerCubicMeter,
    c_red: MolePerCubicMeter,
    t: Kelvin,
) -> Result<Volt, EchemError> {
    if !t.is_physical() {
        return Err(EchemError::InvalidTemperature(format!(
            "non-physical temperature {t}"
        )));
    }
    for (name, c) in [("oxidant", c_ox), ("reductant", c_red)] {
        if !(c.value() > 0.0 && c.is_finite()) {
            return Err(EchemError::InvalidConcentration(format!(
                "{name} concentration must be positive and finite, got {c}"
            )));
        }
    }
    let vt = thermal_voltage(t.value()) / couple.electrons() as f64;
    Ok(couple.standard_potential() + Volt::new(vt * (c_ox / c_red).ln()))
}

/// Standard open-circuit voltage `U⁰ = E⁰_pos − E⁰_neg` of a full cell.
pub fn standard_ocv(positive: &RedoxCouple, negative: &RedoxCouple) -> Volt {
    positive.standard_potential() - negative.standard_potential()
}

/// Open-circuit voltage of a full cell with the given bulk compositions:
/// `U = E_pos − E_neg` with both electrode potentials from
/// [`equilibrium_potential`].
///
/// # Errors
///
/// As [`equilibrium_potential`].
#[allow(clippy::too_many_arguments)]
pub fn open_circuit_voltage(
    positive: &RedoxCouple,
    pos_c_ox: MolePerCubicMeter,
    pos_c_red: MolePerCubicMeter,
    negative: &RedoxCouple,
    neg_c_ox: MolePerCubicMeter,
    neg_c_red: MolePerCubicMeter,
    t: Kelvin,
) -> Result<Volt, EchemError> {
    let e_pos = equilibrium_potential(positive, pos_c_ox, pos_c_red, t)?;
    let e_neg = equilibrium_potential(negative, neg_c_ox, neg_c_red, t)?;
    Ok(e_pos - e_neg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vanadium;

    #[test]
    fn standard_ocv_of_vanadium_is_1_25() {
        let pos = vanadium::positive_couple();
        let neg = vanadium::negative_couple();
        let u0 = standard_ocv(&pos, &neg);
        // E0_pos - E0_neg = 0.991 - (-0.255) = 1.246 ~ the paper's 1.25 V.
        assert!((u0.value() - 1.246).abs() < 0.01, "U0 = {u0}");
    }

    #[test]
    fn nernst_shifts_by_59mv_per_decade_at_25c() {
        let c = RedoxCouple::new("t", Volt::new(0.0), 1, 0.5).unwrap();
        let t = Kelvin::new(298.15);
        let e1 = equilibrium_potential(
            &c,
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(100.0),
            t,
        )
        .unwrap();
        assert!((e1.value() - 0.0591).abs() < 0.0005, "shift {e1}");
    }

    #[test]
    fn two_electron_couple_halves_the_shift() {
        let c1 = RedoxCouple::new("n1", Volt::new(0.0), 1, 0.5).unwrap();
        let c2 = RedoxCouple::new("n2", Volt::new(0.0), 2, 0.5).unwrap();
        let t = Kelvin::new(300.0);
        let hi = MolePerCubicMeter::new(500.0);
        let lo = MolePerCubicMeter::new(50.0);
        let e1 = equilibrium_potential(&c1, hi, lo, t).unwrap();
        let e2 = equilibrium_potential(&c2, hi, lo, t).unwrap();
        assert!((e1.value() - 2.0 * e2.value()).abs() < 1e-12);
    }

    #[test]
    fn ocv_grows_with_charge_ratio() {
        let pos = vanadium::positive_couple();
        let neg = vanadium::negative_couple();
        let t = Kelvin::new(300.0);
        let balanced = open_circuit_voltage(
            &pos,
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(1000.0),
            &neg,
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(1000.0),
            t,
        )
        .unwrap();
        let charged = open_circuit_voltage(
            &pos,
            MolePerCubicMeter::new(1990.0),
            MolePerCubicMeter::new(10.0),
            &neg,
            MolePerCubicMeter::new(10.0),
            MolePerCubicMeter::new(1990.0),
            t,
        )
        .unwrap();
        assert!(charged.value() > balanced.value() + 0.2);
    }

    #[test]
    fn rejects_bad_inputs() {
        let c = RedoxCouple::new("t", Volt::new(0.0), 1, 0.5).unwrap();
        let good = MolePerCubicMeter::new(1.0);
        assert!(equilibrium_potential(&c, good, good, Kelvin::new(-1.0)).is_err());
        assert!(
            equilibrium_potential(&c, MolePerCubicMeter::new(0.0), good, Kelvin::new(300.0))
                .is_err()
        );
        assert!(equilibrium_potential(
            &c,
            good,
            MolePerCubicMeter::new(f64::NAN),
            Kelvin::new(300.0)
        )
        .is_err());
    }
}
