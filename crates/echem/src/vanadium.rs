//! All-vanadium parameter presets from the paper's Tables I and II.

use crate::cell::{CellChemistry, HalfCellChemistry};
use crate::electrolyte::IonicConductivity;
use crate::{ButlerVolmer, Electrolyte, RedoxCouple};
use bright_units::{Kelvin, MetersPerSecondRate, MolePerCubicMeter, SquareMetersPerSecond, Volt};

/// The negative couple `V³⁺ + e⁻ ⇌ V²⁺`, `E⁰ = −0.255 V` vs SHE (Table I).
pub fn negative_couple() -> RedoxCouple {
    RedoxCouple::new("V2+/V3+", Volt::new(-0.255), 1, 0.5).expect("valid constants")
}

/// The positive couple `VO₂⁺ + 2H⁺ + e⁻ ⇌ VO²⁺ + H₂O`, `E⁰ = +0.991 V`
/// vs SHE (Table I).
pub fn positive_couple() -> RedoxCouple {
    RedoxCouple::new("VO2+/VO2(2+)", Volt::new(0.991), 1, 0.5).expect("valid constants")
}

/// The positive couple with the rounded `E⁰ = +1.0 V` used in Table II.
pub fn positive_couple_table2() -> RedoxCouple {
    RedoxCouple::new("VO2+/VO2(2+)", Volt::new(1.0), 1, 0.5).expect("valid constants")
}

/// Table I chemistry: the Kjeang et al. (2007) validation cell.
///
/// * anode stream: `C*_Ox = 80`, `C*_Red = 920 mol/m³`, `D = 1.7e-10 m²/s`,
///   `k⁰ = 2e-5 m/s`;
/// * cathode stream: `C*_Ox = 992`, `C*_Red = 8 mol/m³`,
///   `D = 1.3e-10 m²/s`, `k⁰ = 1e-5 m/s`.
pub fn kjeang_cell_chemistry() -> CellChemistry {
    let negative_inlet = Electrolyte::new(
        MolePerCubicMeter::new(80.0),
        MolePerCubicMeter::new(920.0),
    )
    .expect("valid Table I concentrations");
    let positive_inlet = Electrolyte::new(
        MolePerCubicMeter::new(992.0),
        MolePerCubicMeter::new(8.0),
    )
    .expect("valid Table I concentrations");
    CellChemistry {
        negative: HalfCellChemistry {
            kinetics: ButlerVolmer::new(
                negative_couple(),
                MetersPerSecondRate::new(2.0e-5),
                negative_inlet.c_ox,
                negative_inlet.c_red,
            )
            .expect("valid Table I kinetics"),
            inlet: negative_inlet,
            diffusivity: SquareMetersPerSecond::new(1.7e-10),
        },
        positive: HalfCellChemistry {
            kinetics: ButlerVolmer::new(
                positive_couple(),
                MetersPerSecondRate::new(1.0e-5),
                positive_inlet.c_ox,
                positive_inlet.c_red,
            )
            .expect("valid Table I kinetics"),
            inlet: positive_inlet,
            diffusivity: SquareMetersPerSecond::new(1.3e-10),
        },
        conductivity: IonicConductivity::vanadium_default(),
        reference_temperature: Kelvin::new(300.0),
    }
}

/// Table II chemistry: the 88-channel POWER7+ array.
///
/// * anode stream: `C*_Ox = 1`, `C*_Red = 2000 mol/m³`,
///   `D = 4.13e-10 m²/s`, `k⁰ = 5.33e-5 m/s`;
/// * cathode stream: `C*_Ox = 2000`, `C*_Red = 1 mol/m³`,
///   `D = 1.26e-10 m²/s`, `k⁰ = 4.67e-5 m/s`.
///
/// The near-fully-charged compositions (SoC ≈ 0.9995) push the OCV to
/// ≈1.65 V, matching the zero-current intercept of Fig. 7.
pub fn power7_cell_chemistry() -> CellChemistry {
    let negative_inlet = Electrolyte::new(
        MolePerCubicMeter::new(1.0),
        MolePerCubicMeter::new(2000.0),
    )
    .expect("valid Table II concentrations");
    let positive_inlet = Electrolyte::new(
        MolePerCubicMeter::new(2000.0),
        MolePerCubicMeter::new(1.0),
    )
    .expect("valid Table II concentrations");
    CellChemistry {
        negative: HalfCellChemistry {
            kinetics: ButlerVolmer::new(
                negative_couple(),
                MetersPerSecondRate::new(5.33e-5),
                negative_inlet.c_ox,
                negative_inlet.c_red,
            )
            .expect("valid Table II kinetics"),
            inlet: negative_inlet,
            diffusivity: SquareMetersPerSecond::new(4.13e-10),
        },
        positive: HalfCellChemistry {
            kinetics: ButlerVolmer::new(
                positive_couple_table2(),
                MetersPerSecondRate::new(4.67e-5),
                positive_inlet.c_ox,
                positive_inlet.c_red,
            )
            .expect("valid Table II kinetics"),
            inlet: positive_inlet,
            diffusivity: SquareMetersPerSecond::new(1.26e-10),
        },
        conductivity: IonicConductivity::vanadium_default(),
        reference_temperature: Kelvin::new(300.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kjeang_ocv_matches_fig3_intercept() {
        // Fig. 3 polarization curves extrapolate to ~1.35-1.4 V at zero
        // current (mostly-charged streams raise it above the 1.246 V
        // standard value).
        let cell = kjeang_cell_chemistry();
        let u = cell.open_circuit_voltage(Kelvin::new(300.0)).unwrap();
        assert!(u.value() > 1.3 && u.value() < 1.5, "OCV = {u}");
    }

    #[test]
    fn power7_ocv_matches_fig7_intercept() {
        let cell = power7_cell_chemistry();
        let u = cell.open_circuit_voltage(Kelvin::new(300.0)).unwrap();
        // E_pos = 1.0 + 25.85mV*ln(2000) = 1.196; E_neg = -0.255 - 0.196
        // = -0.451; U = 1.648.
        assert!((u.value() - 1.648).abs() < 0.01, "OCV = {u}");
    }

    #[test]
    fn table_values_are_encoded_exactly() {
        let cell = power7_cell_chemistry();
        assert_eq!(cell.negative.kinetics.rate_constant().value(), 5.33e-5);
        assert_eq!(cell.positive.kinetics.rate_constant().value(), 4.67e-5);
        assert_eq!(cell.negative.diffusivity.value(), 4.13e-10);
        assert_eq!(cell.positive.diffusivity.value(), 1.26e-10);
        assert_eq!(cell.negative.inlet.c_red.value(), 2000.0);
        assert_eq!(cell.positive.inlet.c_ox.value(), 2000.0);

        let kj = kjeang_cell_chemistry();
        assert_eq!(kj.negative.inlet.c_ox.value(), 80.0);
        assert_eq!(kj.negative.inlet.c_red.value(), 920.0);
        assert_eq!(kj.positive.inlet.c_ox.value(), 992.0);
        assert_eq!(kj.positive.inlet.c_red.value(), 8.0);
    }

    #[test]
    fn exchange_currents_are_asymmetric() {
        // The anode of Table II has both higher k0 and (slightly)
        // different composition; verify i0 ordering is as encoded.
        let cell = power7_cell_chemistry();
        let i0_neg = cell.negative.kinetics.exchange_current_density().value();
        let i0_pos = cell.positive.kinetics.exchange_current_density().value();
        assert!(i0_neg > i0_pos);
    }
}
