//! Electrolyte compositions, state of charge and ionic conductivity.

use crate::EchemError;
use bright_units::{Kelvin, MolePerCubicMeter, SiemensPerMeter};

/// The composition of one electrolyte stream (one half-cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Electrolyte {
    /// Oxidized-form concentration in the bulk.
    pub c_ox: MolePerCubicMeter,
    /// Reduced-form concentration in the bulk.
    pub c_red: MolePerCubicMeter,
}

impl Electrolyte {
    /// Creates a composition, validating positivity.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidConcentration`] unless both
    /// concentrations are positive and finite.
    pub fn new(c_ox: MolePerCubicMeter, c_red: MolePerCubicMeter) -> Result<Self, EchemError> {
        for (name, c) in [("oxidant", c_ox), ("reductant", c_red)] {
            if !(c.value() > 0.0 && c.is_finite()) {
                return Err(EchemError::InvalidConcentration(format!(
                    "{name} concentration must be positive and finite, got {c}"
                )));
            }
        }
        Ok(Self { c_ox, c_red })
    }

    /// Total vanadium concentration `C_ox + C_red`.
    pub fn total(&self) -> MolePerCubicMeter {
        self.c_ox + self.c_red
    }

    /// Builds the composition of a *negative*-side electrolyte (charged
    /// species is the reduced form, V²⁺) at the given state of charge:
    /// `C_red = SoC·C_total`, `C_ox = (1−SoC)·C_total`.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidParameter`] if `soc ∉ (0, 1)`.
    pub fn negative_at_soc(
        total: MolePerCubicMeter,
        soc: f64,
    ) -> Result<Self, EchemError> {
        if !(soc > 0.0 && soc < 1.0) {
            return Err(EchemError::InvalidParameter(format!(
                "state of charge must be in (0,1), got {soc}"
            )));
        }
        Self::new(total * (1.0 - soc), total * soc)
    }

    /// Builds the composition of a *positive*-side electrolyte (charged
    /// species is the oxidized form, VO₂⁺) at the given state of charge:
    /// `C_ox = SoC·C_total`, `C_red = (1−SoC)·C_total`.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidParameter`] if `soc ∉ (0, 1)`.
    pub fn positive_at_soc(
        total: MolePerCubicMeter,
        soc: f64,
    ) -> Result<Self, EchemError> {
        if !(soc > 0.0 && soc < 1.0) {
            return Err(EchemError::InvalidParameter(format!(
                "state of charge must be in (0,1), got {soc}"
            )));
        }
        Self::new(total * soc, total * (1.0 - soc))
    }
}

/// Temperature-dependent ionic conductivity `σ(T) = σ_ref·(1 + s·(T−T_ref))`.
///
/// Sulfuric-acid vanadium electrolytes have σ ≈ 30–50 S/m with a positive
/// temperature coefficient of 1–2 %/K (Al-Fetlawi 2009).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IonicConductivity {
    /// Conductivity at the reference temperature.
    pub reference: SiemensPerMeter,
    /// Reference temperature.
    pub reference_temperature: Kelvin,
    /// Relative slope (1/K).
    pub slope: f64,
}

impl IonicConductivity {
    /// The default electrolyte conductivity model: 40 S/m at 300 K,
    /// +1.5 %/K.
    pub fn vanadium_default() -> Self {
        Self {
            reference: SiemensPerMeter::new(40.0),
            reference_temperature: Kelvin::new(300.0),
            slope: 0.015,
        }
    }

    /// Evaluates σ at temperature `t`.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidTemperature`] for non-physical `t` or
    /// if the linear model would produce a non-positive conductivity.
    pub fn at(&self, t: Kelvin) -> Result<SiemensPerMeter, EchemError> {
        if !t.is_physical() {
            return Err(EchemError::InvalidTemperature(format!(
                "non-physical temperature {t}"
            )));
        }
        let dt = t.value() - self.reference_temperature.value();
        let sigma = self.reference.value() * (1.0 + self.slope * dt);
        if sigma <= 0.0 {
            return Err(EchemError::InvalidTemperature(format!(
                "conductivity model extrapolated to {sigma} S/m at {t}"
            )));
        }
        Ok(SiemensPerMeter::new(sigma))
    }
}

/// Area-specific ohmic resistance (Ω·m²) of a planar electrolyte gap of
/// thickness `gap` (m) and conductivity `sigma`: `R·A = gap/σ`.
///
/// This is the `η_Ω = R·I` term of the paper for the co-laminar geometry,
/// where current crosses the channel width between the wall electrodes.
pub fn area_specific_resistance(gap: f64, sigma: SiemensPerMeter) -> Result<f64, EchemError> {
    if !(gap > 0.0 && gap.is_finite()) {
        return Err(EchemError::InvalidParameter(format!(
            "gap must be positive, got {gap}"
        )));
    }
    if !(sigma.value() > 0.0 && sigma.is_finite()) {
        return Err(EchemError::InvalidParameter(format!(
            "conductivity must be positive, got {sigma}"
        )));
    }
    Ok(gap / sigma.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soc_compositions_sum_to_total() {
        let total = MolePerCubicMeter::new(2000.0);
        let neg = Electrolyte::negative_at_soc(total, 0.8).unwrap();
        assert!((neg.total().value() - 2000.0).abs() < 1e-9);
        assert!((neg.c_red.value() - 1600.0).abs() < 1e-9);
        let pos = Electrolyte::positive_at_soc(total, 0.8).unwrap();
        assert!((pos.c_ox.value() - 1600.0).abs() < 1e-9);
    }

    #[test]
    fn soc_bounds_are_enforced() {
        let total = MolePerCubicMeter::new(1000.0);
        assert!(Electrolyte::negative_at_soc(total, 0.0).is_err());
        assert!(Electrolyte::negative_at_soc(total, 1.0).is_err());
        assert!(Electrolyte::positive_at_soc(total, -0.5).is_err());
    }

    #[test]
    fn conductivity_increases_with_temperature() {
        let m = IonicConductivity::vanadium_default();
        let cold = m.at(Kelvin::new(300.0)).unwrap();
        let warm = m.at(Kelvin::new(310.0)).unwrap();
        assert!(warm.value() > cold.value());
        assert!((warm.value() / cold.value() - 1.15).abs() < 1e-12);
    }

    #[test]
    fn conductivity_guards_extrapolation() {
        let m = IonicConductivity::vanadium_default();
        assert!(m.at(Kelvin::new(100.0)).is_err()); // sigma would go negative
        assert!(m.at(Kelvin::new(-5.0)).is_err());
    }

    #[test]
    fn asr_of_table2_geometry() {
        // 200 um gap, 40 S/m -> 5e-6 ohm m2 = 0.05 ohm cm2.
        let asr = area_specific_resistance(200e-6, SiemensPerMeter::new(40.0)).unwrap();
        assert!((asr - 5e-6).abs() < 1e-12);
        assert!(area_specific_resistance(0.0, SiemensPerMeter::new(40.0)).is_err());
        assert!(area_specific_resistance(1e-4, SiemensPerMeter::new(0.0)).is_err());
    }
}
