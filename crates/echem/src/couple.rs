//! Redox couples: `Ox + n·e⁻ ⇌ Red`.

use crate::EchemError;
use bright_units::Volt;

/// A reversible one-step redox couple.
///
/// The all-vanadium system of the paper uses two couples:
///
/// * negative electrode (eq. 2): `V³⁺ + e⁻ ⇌ V²⁺`, `E⁰ = −0.255 V` vs SHE,
/// * positive electrode (eq. 3): `VO₂⁺ + 2H⁺ + e⁻ ⇌ VO²⁺ + H₂O`,
///   `E⁰ = +0.991 V` vs SHE.
#[derive(Debug, Clone, PartialEq)]
pub struct RedoxCouple {
    name: String,
    standard_potential: Volt,
    electrons: u32,
    alpha: f64,
}

impl RedoxCouple {
    /// Creates a couple with standard potential `E⁰` (V vs SHE), number of
    /// transferred electrons `n` and cathodic transfer coefficient `α`.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidParameter`] if `n == 0`, `α ∉ (0, 1)`
    /// or `E⁰` is not finite.
    pub fn new(
        name: impl Into<String>,
        standard_potential: Volt,
        electrons: u32,
        alpha: f64,
    ) -> Result<Self, EchemError> {
        if electrons == 0 {
            return Err(EchemError::InvalidParameter(
                "electron count must be positive".into(),
            ));
        }
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(EchemError::InvalidParameter(format!(
                "transfer coefficient must be in (0,1), got {alpha}"
            )));
        }
        if !standard_potential.is_finite() {
            return Err(EchemError::InvalidParameter(format!(
                "non-finite standard potential {standard_potential}"
            )));
        }
        Ok(Self {
            name: name.into(),
            standard_potential,
            electrons,
            alpha,
        })
    }

    /// Human-readable name of the couple.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Standard electrode potential `E⁰` vs SHE.
    #[inline]
    pub fn standard_potential(&self) -> Volt {
        self.standard_potential
    }

    /// Number of electrons `n` transferred per formula unit.
    #[inline]
    pub fn electrons(&self) -> u32 {
        self.electrons
    }

    /// Cathodic transfer coefficient `α` (anodic is `1 − α`).
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Anodic transfer coefficient `1 − α`.
    #[inline]
    pub fn alpha_anodic(&self) -> f64 {
        1.0 - self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let c = RedoxCouple::new("V2+/V3+", Volt::new(-0.255), 1, 0.5).unwrap();
        assert_eq!(c.name(), "V2+/V3+");
        assert_eq!(c.electrons(), 1);
        assert!((c.alpha() - 0.5).abs() < 1e-15);
        assert!((c.alpha_anodic() - 0.5).abs() < 1e-15);
        assert_eq!(c.standard_potential(), Volt::new(-0.255));
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(RedoxCouple::new("x", Volt::new(0.0), 0, 0.5).is_err());
        assert!(RedoxCouple::new("x", Volt::new(0.0), 1, 0.0).is_err());
        assert!(RedoxCouple::new("x", Volt::new(0.0), 1, 1.0).is_err());
        assert!(RedoxCouple::new("x", Volt::new(f64::NAN), 1, 0.5).is_err());
    }
}
