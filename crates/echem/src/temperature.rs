//! Temperature dependence of electrochemical parameters.
//!
//! The paper's key coupling: chip heat warms the electrolyte, which
//! *improves* the flow cell (faster kinetics, faster diffusion, higher
//! conductivity). With the nominal 676 ml/min flow the warming is small
//! (≤4 % more current at fixed potential); throttling the flow to
//! 48 ml/min or pre-heating the inlet to 37 °C yields up to +23 % power.
//!
//! Kinetic rate constants and diffusivities follow Arrhenius laws with
//! activation energies in the published vanadium range (10–40 kJ/mol,
//! Al-Fetlawi 2009):
//!
//! ```text
//! k(T) = k_ref · exp[ −(E_a/R)·(1/T − 1/T_ref) ]
//! ```

use crate::EchemError;
use bright_units::constants::GAS_CONSTANT;
use bright_units::{JoulePerMole, Kelvin};

/// An Arrhenius-scaled scalar parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrhenius {
    /// Value at the reference temperature.
    pub reference_value: f64,
    /// Reference temperature.
    pub reference_temperature: Kelvin,
    /// Molar activation energy `E_a`.
    pub activation_energy: JoulePerMole,
}

impl Arrhenius {
    /// Creates an Arrhenius law.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidParameter`] for non-positive reference
    /// value, non-physical reference temperature or negative activation
    /// energy.
    pub fn new(
        reference_value: f64,
        reference_temperature: Kelvin,
        activation_energy: JoulePerMole,
    ) -> Result<Self, EchemError> {
        if !(reference_value > 0.0 && reference_value.is_finite()) {
            return Err(EchemError::InvalidParameter(format!(
                "reference value must be positive, got {reference_value}"
            )));
        }
        if !reference_temperature.is_physical() {
            return Err(EchemError::InvalidParameter(format!(
                "non-physical reference temperature {reference_temperature}"
            )));
        }
        if !(activation_energy.value() >= 0.0 && activation_energy.is_finite()) {
            return Err(EchemError::InvalidParameter(format!(
                "activation energy must be non-negative, got {activation_energy}"
            )));
        }
        Ok(Self {
            reference_value,
            reference_temperature,
            activation_energy,
        })
    }

    /// Evaluates the parameter at temperature `t`.
    ///
    /// # Errors
    ///
    /// Returns [`EchemError::InvalidTemperature`] for non-physical `t`.
    pub fn at(&self, t: Kelvin) -> Result<f64, EchemError> {
        if !t.is_physical() {
            return Err(EchemError::InvalidTemperature(format!(
                "non-physical temperature {t}"
            )));
        }
        let ea_over_r = self.activation_energy.value() / GAS_CONSTANT;
        Ok(self.reference_value
            * (-ea_over_r * (1.0 / t.value() - 1.0 / self.reference_temperature.value())).exp())
    }

    /// Relative change `value(t)/value(t_ref) − 1`.
    ///
    /// # Errors
    ///
    /// As [`Arrhenius::at`].
    pub fn relative_change(&self, t: Kelvin) -> Result<f64, EchemError> {
        Ok(self.at(t)? / self.reference_value - 1.0)
    }
}

/// Default activation energy for vanadium kinetic rate constants
/// (k⁰): 22 kJ/mol — middle of the published 10–40 kJ/mol range, chosen in
/// DESIGN.md so the paper's +23 % @ ~+10 K power gain emerges.
pub const EA_RATE_CONSTANT: f64 = 22_000.0;

/// Default activation energy for vanadium-ion diffusivities: 18 kJ/mol
/// (comparable to aqueous self-diffusion).
pub const EA_DIFFUSIVITY: f64 = 18_000.0;

/// Convenience: Arrhenius law for a kinetic rate constant with the default
/// activation energy.
///
/// # Errors
///
/// As [`Arrhenius::new`].
pub fn rate_constant_law(k0_ref: f64, t_ref: Kelvin) -> Result<Arrhenius, EchemError> {
    Arrhenius::new(k0_ref, t_ref, JoulePerMole::new(EA_RATE_CONSTANT))
}

/// Convenience: Arrhenius law for a diffusivity with the default
/// activation energy.
///
/// # Errors
///
/// As [`Arrhenius::new`].
pub fn diffusivity_law(d_ref: f64, t_ref: Kelvin) -> Result<Arrhenius, EchemError> {
    Arrhenius::new(d_ref, t_ref, JoulePerMole::new(EA_DIFFUSIVITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_is_fixed() {
        let a = rate_constant_law(5.33e-5, Kelvin::new(300.0)).unwrap();
        assert!((a.at(Kelvin::new(300.0)).unwrap() - 5.33e-5).abs() < 1e-18);
    }

    #[test]
    fn increases_with_temperature() {
        let a = rate_constant_law(1e-5, Kelvin::new(300.0)).unwrap();
        let k310 = a.at(Kelvin::new(310.0)).unwrap();
        assert!(k310 > 1e-5);
        // Ea = 22 kJ/mol over 300->310 K: factor exp(22000/8.314 * (1/300-1/310))
        // = exp(0.2846) = 1.329.
        assert!((k310 / 1e-5 - 1.329).abs() < 0.005, "factor {}", k310 / 1e-5);
    }

    #[test]
    fn ten_kelvin_rise_gives_twenty_plus_percent_on_diffusivity() {
        // This underpins the paper's +23% power observation.
        let d = diffusivity_law(1.26e-10, Kelvin::new(300.0)).unwrap();
        let rel = d.relative_change(Kelvin::new(310.0)).unwrap();
        assert!(rel > 0.18 && rel < 0.35, "got {rel}");
    }

    #[test]
    fn zero_activation_energy_is_constant() {
        let a = Arrhenius::new(2.0, Kelvin::new(300.0), JoulePerMole::new(0.0)).unwrap();
        assert_eq!(a.at(Kelvin::new(350.0)).unwrap(), 2.0);
        assert_eq!(a.relative_change(Kelvin::new(250.0)).unwrap(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(Arrhenius::new(0.0, Kelvin::new(300.0), JoulePerMole::new(1.0)).is_err());
        assert!(Arrhenius::new(1.0, Kelvin::new(0.0), JoulePerMole::new(1.0)).is_err());
        assert!(Arrhenius::new(1.0, Kelvin::new(300.0), JoulePerMole::new(-1.0)).is_err());
        let a = rate_constant_law(1e-5, Kelvin::new(300.0)).unwrap();
        assert!(a.at(Kelvin::new(-1.0)).is_err());
    }
}
