//! Full-cell chemistry descriptions: two half-cells plus the ionic path.

use crate::electrolyte::IonicConductivity;
use crate::nernst::equilibrium_potential;
use crate::temperature::{diffusivity_law, rate_constant_law};
use crate::{ButlerVolmer, EchemError, Electrolyte};
use bright_units::{Kelvin, MetersPerSecondRate, SquareMetersPerSecond, Volt};

/// One half-cell: kinetics, inlet composition and species diffusivity.
///
/// The tables of the paper quote a single diffusion coefficient per side;
/// it is applied to both the reactant and the product of that half-cell.
#[derive(Debug, Clone, PartialEq)]
pub struct HalfCellChemistry {
    /// Butler–Volmer kinetics (couple, k⁰, reference concentrations).
    pub kinetics: ButlerVolmer,
    /// Inlet bulk composition of this half-cell's stream.
    pub inlet: Electrolyte,
    /// Diffusion coefficient of the vanadium species in this stream.
    pub diffusivity: SquareMetersPerSecond,
}

impl HalfCellChemistry {
    /// Equilibrium potential of this electrode at its inlet composition.
    ///
    /// # Errors
    ///
    /// As [`equilibrium_potential`].
    pub fn equilibrium_potential(&self, t: Kelvin) -> Result<Volt, EchemError> {
        equilibrium_potential(self.kinetics.couple(), self.inlet.c_ox, self.inlet.c_red, t)
    }
}

/// A full redox flow cell: negative electrode (anode during discharge),
/// positive electrode (cathode during discharge) and the ionic
/// conductivity of the electrolyte between them.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChemistry {
    /// Negative-electrode half cell (V²⁺/V³⁺ in the vanadium system).
    pub negative: HalfCellChemistry,
    /// Positive-electrode half cell (VO₂⁺/VO²⁺).
    pub positive: HalfCellChemistry,
    /// Ionic conductivity model of the electrolyte.
    pub conductivity: IonicConductivity,
    /// Temperature at which the kinetic/transport parameters are quoted.
    pub reference_temperature: Kelvin,
}

impl CellChemistry {
    /// Open-circuit voltage `U = E_pos − E_neg` at the inlet compositions.
    ///
    /// # Errors
    ///
    /// As [`equilibrium_potential`].
    pub fn open_circuit_voltage(&self, t: Kelvin) -> Result<Volt, EchemError> {
        Ok(self.positive.equilibrium_potential(t)? - self.negative.equilibrium_potential(t)?)
    }

    /// Returns the chemistry with kinetic rate constants and diffusivities
    /// re-evaluated at temperature `t` via the default Arrhenius laws
    /// ([`crate::temperature`]), leaving compositions unchanged.
    ///
    /// This is the electro-thermal coupling of Section III-B: the chip's
    /// heat makes the cell a better generator.
    ///
    /// # Errors
    ///
    /// Propagates parameter/temperature validation errors.
    pub fn at_temperature(&self, t: Kelvin) -> Result<Self, EchemError> {
        let t_ref = self.reference_temperature;
        let scale_half = |half: &HalfCellChemistry| -> Result<HalfCellChemistry, EchemError> {
            let k_law = rate_constant_law(half.kinetics.rate_constant().value(), t_ref)?;
            let d_law = diffusivity_law(half.diffusivity.value(), t_ref)?;
            Ok(HalfCellChemistry {
                kinetics: half
                    .kinetics
                    .with_rate_constant(MetersPerSecondRate::new(k_law.at(t)?))?,
                inlet: half.inlet,
                diffusivity: SquareMetersPerSecond::new(d_law.at(t)?),
            })
        };
        Ok(Self {
            negative: scale_half(&self.negative)?,
            positive: scale_half(&self.positive)?,
            conductivity: self.conductivity,
            reference_temperature: t_ref,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::vanadium;
    use bright_units::Kelvin;

    #[test]
    fn warm_cell_has_faster_kinetics_and_diffusion() {
        let cell = vanadium::power7_cell_chemistry();
        let warm = cell.at_temperature(Kelvin::new(313.0)).unwrap();
        assert!(
            warm.negative.kinetics.rate_constant().value()
                > cell.negative.kinetics.rate_constant().value()
        );
        assert!(warm.positive.diffusivity.value() > cell.positive.diffusivity.value());
        // Compositions unchanged.
        assert_eq!(warm.negative.inlet, cell.negative.inlet);
    }

    #[test]
    fn reference_temperature_is_identity() {
        let cell = vanadium::power7_cell_chemistry();
        let same = cell.at_temperature(cell.reference_temperature).unwrap();
        let rel = (same.negative.kinetics.rate_constant().value()
            - cell.negative.kinetics.rate_constant().value())
        .abs()
            / cell.negative.kinetics.rate_constant().value();
        assert!(rel < 1e-12);
    }

    #[test]
    fn ocv_decomposes_into_electrode_potentials() {
        let cell = vanadium::power7_cell_chemistry();
        let t = Kelvin::new(300.0);
        let u = cell.open_circuit_voltage(t).unwrap();
        let e_pos = cell.positive.equilibrium_potential(t).unwrap();
        let e_neg = cell.negative.equilibrium_potential(t).unwrap();
        assert!((u.value() - (e_pos.value() - e_neg.value())).abs() < 1e-12);
    }
}
