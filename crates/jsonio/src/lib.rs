//! Minimal JSON value model, parser and writer.
//!
//! The workspace's report/export layer needs JSON round-trips but the
//! build environment cannot fetch `serde`/`serde_json`, so this crate
//! provides a small hand-rolled replacement: a [`Value`] tree, a
//! recursive-descent [`Value::parse`], and compact/pretty writers.
//!
//! Numbers are stored as `f64` and written with Rust's shortest
//! round-trip float formatting, so `f64 -> JSON -> f64` is exact.
//!
//! # Examples
//!
//! ```
//! use bright_jsonio::Value;
//!
//! let v = Value::parse(r#"{"name":"cell","points":[1.0,2.5]}"#)?;
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("cell"));
//! let back = v.to_json_string();
//! assert_eq!(Value::parse(&back)?, v);
//! # Ok::<(), bright_jsonio::JsonError>(())
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are sorted (BTreeMap) so output is deterministic.
    Object(BTreeMap<String, Value>),
}

/// Errors produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object<I: IntoIterator<Item = (String, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// Wraps a slice of `f64` as a JSON array.
    pub fn from_f64_slice(data: &[f64]) -> Value {
        Value::Array(data.iter().map(|&x| Value::Number(x)).collect())
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key, if the value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Array of numbers as a `Vec<f64>`, if every element is a number.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_array()?.iter().map(Value::as_f64).collect()
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }

    /// Writes the value as compact JSON.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Writes the value as pretty-printed JSON (2-space indent).
    #[must_use]
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", ch as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, value: Value) -> Result<Value, JsonError> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{kw}'")))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: the spec encodes non-BMP
                            // characters as a \uXXXX\uXXXX pair.
                            if b.get(*pos + 5..*pos + 7) != Some(br"\u") {
                                return Err(err(*pos, "unpaired high surrogate"));
                            }
                            let low = parse_hex4(b, *pos + 7)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            *pos += 6;
                            char::from_u32(combined)
                                .ok_or_else(|| err(*pos, "invalid surrogate pair"))?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| err(*pos, "invalid \\u code point"))?
                        };
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar from the source text.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                let ch = rest.chars().next().expect("non-empty by guard");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, JsonError> {
    let hex = b
        .get(at..at + 4)
        .ok_or_else(|| err(at, "truncated \\u escape"))?;
    u32::from_str_radix(
        std::str::from_utf8(hex).map_err(|_| err(at, "non-ASCII \\u escape"))?,
        16,
    )
    .map_err(|_| err(at, "bad \\u escape"))
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    let parsed: f64 = text
        .parse()
        .map_err(|_| err(start, &format!("bad number '{text}'")))?;
    Ok(Value::Number(parsed))
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => write_number(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's float Display is the shortest representation that parses
        // back exactly, which is what a round-trip needs.
        if x == x.trunc() && x.abs() < 1e15 {
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&x.to_string());
        }
    } else {
        // JSON has no Inf/NaN; encode as null like serde_json's default.
        out.push_str("null");
    }
}

/// Durable-document helpers: checksummed JSON envelopes and atomic
/// file replacement.
///
/// The scenario service persists job specs, reports, checkpoints and
/// journal records as JSON documents that must survive a process kill at
/// any instant. Two mechanisms compose to make that true:
///
/// * **Checksummed envelopes** ([`checksummed::to_string`] /
///   [`checksummed::parse`]): the payload's compact JSON text is tagged
///   with its FNV-1a 64 digest, so a torn or bit-rotted record is
///   *detected* on read instead of silently mis-parsed.
/// * **Atomic replacement** ([`checksummed::write_atomic`]): content is
///   written to a sibling temp file, flushed, and renamed over the
///   target, so readers only ever observe the old document or the new
///   one — never a prefix.
pub mod checksummed {
    use super::{JsonError, Value};
    use std::fs;
    use std::io::Write;
    use std::path::Path;

    /// FNV-1a 64-bit digest of `bytes` — small, dependency-free, and
    /// plenty for torn-write *detection* (the threat model is power
    /// loss, not an adversary).
    #[must_use]
    pub fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Wraps `payload` in a checksummed envelope:
    /// `{"crc":"<16 hex>","payload":<compact payload JSON>}`.
    #[must_use]
    pub fn to_string(payload: &Value) -> String {
        let body = payload.to_json_string();
        let crc = fnv1a64(body.as_bytes());
        format!("{{\"crc\":\"{crc:016x}\",\"payload\":{body}}}")
    }

    /// Parses a checksummed envelope and returns the verified payload.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON, a missing/mistyped `crc` or
    /// `payload` field, or a digest mismatch (a torn or corrupted
    /// record).
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let envelope = Value::parse(text)?;
        let crc_text = envelope
            .get("crc")
            .and_then(Value::as_str)
            .ok_or_else(|| JsonError { offset: 0, message: "missing 'crc' field".into() })?;
        let expected = u64::from_str_radix(crc_text, 16)
            .map_err(|_| JsonError { offset: 0, message: "malformed 'crc' field".into() })?;
        let payload = envelope
            .get("payload")
            .ok_or_else(|| JsonError { offset: 0, message: "missing 'payload' field".into() })?;
        let actual = fnv1a64(payload.to_json_string().as_bytes());
        if actual != expected {
            return Err(JsonError {
                offset: 0,
                message: format!("checksum mismatch: stored {expected:016x}, computed {actual:016x}"),
            });
        }
        Ok(payload.clone())
    }

    /// Writes `text` to `path` atomically: a sibling `.tmp` file is
    /// written, flushed to disk, and renamed over the target. A kill at
    /// any point leaves either the previous document or the new one.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Reads a checksummed document written by [`to_string`] +
    /// [`write_atomic`] and returns the verified payload.
    ///
    /// # Errors
    ///
    /// [`JsonError`] when the file is unreadable, torn or corrupted
    /// (I/O errors are folded into the message — callers treat every
    /// failure mode as "document not trustworthy").
    pub fn read_verified(path: &Path) -> Result<Value, JsonError> {
        let text = fs::read_to_string(path).map_err(|e| JsonError {
            offset: 0,
            message: format!("read {}: {e}", path.display()),
        })?;
        parse(&text)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" -1.5e3 ").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            Value::parse(r#""a\nbA""#).unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn roundtrips_nested_structures() {
        let text = r#"{"a":[1.0,2.0,{"b":null,"c":false}],"d":"x y"}"#;
        let v = Value::parse(text).unwrap();
        let emitted = v.to_json_string();
        assert_eq!(Value::parse(&emitted).unwrap(), v);
        let pretty = v.to_json_string_pretty();
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 6.02214076e23, -2.5e-300, 41.0] {
            let v = Value::Number(x);
            let back = Value::parse(&v.to_json_string()).unwrap();
            assert_eq!(back.as_f64().unwrap(), x);
        }
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"n":3.0,"s":"hi","a":[1.0],"b":true}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("a").unwrap().as_f64_vec(), Some(vec![1.0]));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("tru").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Python's json.dumps default (ensure_ascii) escapes non-BMP
        // characters as surrogate pairs.
        let v = Value::parse(r#""\ud83d\ude00 ok""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} ok"));
        // BMP escapes still work, surrogates must pair correctly.
        assert_eq!(
            Value::parse(r#""\u00e9""#).unwrap().as_str(),
            Some("\u{e9}")
        );
        assert!(Value::parse(r#""\ud83d""#).is_err()); // unpaired high
        assert!(Value::parse(r#""\ud83dx""#).is_err());
        assert!(Value::parse(r#""\ud83dA""#).is_err()); // bad low
        assert!(Value::parse(r#""\ude00""#).is_err()); // lone low
    }

    #[test]
    fn checksummed_envelope_round_trips_and_detects_corruption() {
        let payload = Value::object([
            ("id".into(), Value::String("01ABC".into())),
            ("value".into(), Value::Number(0.1 + 0.2)),
        ]);
        let text = checksummed::to_string(&payload);
        assert_eq!(checksummed::parse(&text).unwrap(), payload);
        // Any payload byte flip trips the digest.
        let corrupt = text.replace("01ABC", "01ABD");
        assert!(checksummed::parse(&corrupt).is_err());
        // A truncated record fails to parse at all.
        assert!(checksummed::parse(&text[..text.len() - 4]).is_err());
        // Missing/garbled envelope fields are errors, not panics.
        assert!(checksummed::parse("{\"payload\":1.0}").is_err());
        assert!(checksummed::parse("{\"crc\":\"zz\",\"payload\":1.0}").is_err());
    }

    #[test]
    fn atomic_write_replaces_and_read_verifies() {
        let dir = std::env::temp_dir().join(format!("bright_jsonio_t{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        let a = Value::object([("v".into(), Value::Number(1.0))]);
        let b = Value::object([("v".into(), Value::Number(2.0))]);
        checksummed::write_atomic(&path, &checksummed::to_string(&a)).unwrap();
        assert_eq!(checksummed::read_verified(&path).unwrap(), a);
        checksummed::write_atomic(&path, &checksummed::to_string(&b)).unwrap();
        assert_eq!(checksummed::read_verified(&path).unwrap(), b);
        // No temp-file debris after a completed write.
        assert!(!dir.join("doc.json.tmp").exists());
        // Corruption on disk is detected.
        std::fs::write(&path, "{\"crc\":\"0\",\"payload\":{}}").unwrap();
        assert!(checksummed::read_verified(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
