//! # bright-silicon
//!
//! A Rust reproduction of *"Integrated Microfluidic Power Generation and
//! Cooling for Bright Silicon MPSoCs"* (Sabry, Sridhar, Atienza, Ruch,
//! Michel — DATE 2014): an MPSoC whose on-chip microchannels host a
//! membrane-less vanadium redox flow cell array that simultaneously powers
//! the chip's cache memories and cools the whole die.
//!
//! This facade crate re-exports the workspace crates under a single
//! namespace:
//!
//! * [`units`] — physical quantities and constants,
//! * [`num`] — sparse/dense linear algebra and scalar solvers,
//! * [`mesh`] — structured grids and fields,
//! * [`flow`] — microfluidics (laminar flow, pressure drop, pumping power),
//! * [`echem`] — electrochemistry (Nernst, Butler–Volmer, vanadium couples),
//! * [`flowcell`] — the microfluidic fuel-cell model and cell arrays,
//! * [`thermal`] — the 3D-ICE-style compact thermal model,
//! * [`pdn`] — the on-chip power-delivery-network model,
//! * [`floorplan`] — block floorplans (IBM POWER7+ reconstruction),
//! * [`core`] — the integrated electro-thermal co-simulation engine.
//!
//! # Quickstart
//!
//! ```
//! use bright_silicon::flowcell::presets;
//!
//! // The paper's Table II array: 88 channels over the POWER7+ die.
//! let array = presets::power7_array().expect("valid Table II preset");
//! let curve = array.polarization_curve(12).expect("polarization solve");
//! let i_at_1v = curve.current_at_voltage(1.0).expect("1 V is on the curve");
//! assert!(i_at_1v.value() > 2.5, "array delivers amperes at 1 V");
//! ```

pub use bright_core as core;
pub use bright_echem as echem;
pub use bright_floorplan as floorplan;
pub use bright_flow as flow;
pub use bright_flowcell as flowcell;
pub use bright_mesh as mesh;
pub use bright_num as num;
pub use bright_pdn as pdn;
pub use bright_thermal as thermal;
pub use bright_units as units;
