//! 3-D stacking with interlayer flow-cell cooling — the denser-packaging
//! vision of the paper's introduction (refs [6–8]): two POWER7+-class
//! dies in one stack, each with its own microfluidic fuel-cell layer
//! above it, both powered and cooled by the same fluid network. The
//! final section solves the conventional air-cooled baseline at 6×
//! plane resolution (~700k unknowns), where the solver session
//! switches to the geometric multigrid preconditioner
//! (`docs/MULTIGRID.md`).
//!
//! Run with: `cargo run --release --example stacked_3d`
//! (add `--quick` to skip the scaled large-grid solve)

use bright_silicon::flow::fluid::TemperatureDependentFluid;
use bright_silicon::floorplan::{power7, PowerScenario};
use bright_silicon::thermal::stack::{LayerSpec, MicrochannelSpec, StackConfig, TopCooling};
use bright_silicon::thermal::{Material, ThermalModel};
use bright_silicon::units::{CubicMetersPerSecond, Kelvin, Meters};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = power7::floorplan();
    let fluid = TemperatureDependentFluid::vanadium_electrolyte().at(Kelvin::new(300.0))?;
    let channels = |name: &str| LayerSpec::Microchannel {
        name: name.into(),
        spec: MicrochannelSpec {
            channel_width: Meters::from_micrometers(200.0),
            channel_height: Meters::from_micrometers(400.0),
            channels_per_cell: 1,
            fluid,
            total_flow: CubicMetersPerSecond::from_milliliters_per_minute(676.0),
            inlet_temperature: Kelvin::new(300.0),
            wall_material: Material::silicon(),
        },
    };
    let die = |name: &str| LayerSpec::Solid {
        name: name.into(),
        material: Material::silicon(),
        thickness: Meters::from_micrometers(400.0),
        sublayers: 2,
    };

    // Stack bottom-up: die0, channels0, die1, channels1, cap.
    let model = ThermalModel::new(StackConfig {
        width: plan.width(),
        height: plan.height(),
        nx: 88,
        ny: 44,
        layers: vec![
            die("die0"),
            channels("interlayer channels 0"),
            die("die1"),
            channels("interlayer channels 1"),
            LayerSpec::Solid {
                name: "cap".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(300.0),
                sublayers: 1,
            },
        ],
        top_cooling: None,
    })?;

    // Both dies run the full-load POWER7+ map; die1's active face sits at
    // level 3 (die0 occupies levels 0-1, channels0 level 2).
    let power = PowerScenario::full_load().rasterize(&plan, model.grid())?;
    let total = 2.0 * power.integral();
    let sol = model.solve_steady_with_sources(&[(0, &power), (3, &power)])?;

    println!("3-D stack: two full-load dies ({total:.0} W total), two flow-cell layers\n");
    for (lvl, label) in [
        (0usize, "die0 active face"),
        (2, "fluid layer 0"),
        (3, "die1 active face"),
        (5, "fluid layer 1"),
        (6, "cap"),
    ] {
        let map = sol.level_map(lvl);
        println!(
            "  level {lvl} ({label:<18}): {:6.1} .. {:6.1} degC",
            map.min() - 273.15,
            map.max() - 273.15
        );
    }
    println!(
        "\npeak anywhere: {:.1} degC — interlayer cooling keeps a 2-die,\n\
         ~143 W stack within a laptop-class thermal envelope, while both\n\
         fluid layers keep generating electrochemical power.",
        sol.max_temperature().to_celsius().value()
    );

    // Contrast: the same two dies with only ONE cooling layer on top.
    let single = ThermalModel::new(StackConfig {
        width: plan.width(),
        height: plan.height(),
        nx: 88,
        ny: 44,
        layers: vec![
            die("die0"),
            die("die1"),
            channels("top channels"),
            LayerSpec::Solid {
                name: "cap".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(300.0),
                sublayers: 1,
            },
        ],
        top_cooling: None,
    })?;
    let sol_single = single.solve_steady_with_sources(&[(0, &power), (2, &power)])?;
    println!(
        "\nwithout the interlayer (single cooling layer on top): peak {:.1} degC",
        sol_single.max_temperature().to_celsius().value()
    );

    if std::env::args().any(|a| a == "--quick") {
        return Ok(());
    }

    // Scale-up: the same two dies under a *conventional* forced-air
    // heat sink, meshed at 6x plane resolution (528 x 264 x 5 levels =
    // 696 960 unknowns). The conduction-only operator is symmetric, so
    // at this size `ThermalModel::solve_options` switches the session
    // to the geometric-multigrid preconditioner (the interlayer stacks
    // above keep SSOR: their fluid advection is outside the geometric
    // hierarchy's reach — see docs/MULTIGRID.md).
    const SCALE: usize = 6;
    let air_cooled = ThermalModel::new(StackConfig {
        width: plan.width(),
        height: plan.height(),
        nx: 88 * SCALE,
        ny: 44 * SCALE,
        layers: vec![
            die("die0"),
            die("die1"),
            LayerSpec::Solid {
                name: "cap".into(),
                material: Material::silicon(),
                thickness: Meters::from_micrometers(300.0),
                sublayers: 1,
            },
        ],
        top_cooling: Some(TopCooling::forced_air()),
    })?;
    let power_fine = PowerScenario::full_load().rasterize(&plan, air_cooled.grid())?;
    let mut session = air_cooled.session()?;
    let sol_air =
        air_cooled.solve_steady_with_sources_warm(&[(0, &power_fine), (2, &power_fine)], &mut session)?;
    let stats = session.last_stats();
    println!(
        "\nair-cooled baseline at {} x {} x {} = {} unknowns:\n  \
         preconditioner {}, {} iterations, peak {:.1} degC —\n  \
         a forced-air sink cannot hold the 2-die stack near the\n  \
         envelope the interlayer flow cells manage above.",
        air_cooled.grid().nx(),
        air_cooled.grid().ny(),
        air_cooled.level_count(),
        air_cooled.grid().len() * air_cooled.level_count(),
        session.precond_digest(),
        stats.iterations,
        sol_air.max_temperature().to_celsius().value()
    );
    Ok(())
}
