//! The full POWER7+ case study of the paper (Section III), end to end:
//! thermal map, per-channel temperature coupling, array operating point,
//! cache-rail IR drop and the pumping-power account — with ASCII
//! renderings of Fig. 8 and Fig. 9.
//!
//! Run with: `cargo run --release --example power7_case_study`

use bright_silicon::core::{CoSimulation, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== POWER7+ integrated microfluidic power & cooling ==\n");

    let scenario = Scenario::power7_nominal();
    println!(
        "scenario: {} channels, {:.0} ml/min total, inlet {:.1} degC",
        scenario.channel_count,
        scenario.total_flow.to_milliliters_per_minute(),
        scenario.inlet_temperature.to_celsius().value()
    );

    let report = CoSimulation::new(scenario)?.run()?;
    println!("\n{}", report.summary());

    println!("junction thermal map (Fig. 9, degC):");
    println!("{}", report.render_thermal_map(76, 22));

    println!("cache-rail voltage map (Fig. 8, V):");
    println!("{}", report.render_voltage_map(76, 22));

    println!("array polarization (Fig. 7):");
    println!("    V (V)     I (A)     P (W)");
    for p in report.polarization.points() {
        println!(
            "   {:6.3}   {:7.3}   {:7.3}",
            p.voltage.value(),
            p.current.value(),
            p.power.value()
        );
    }

    if report.is_net_positive() {
        println!(
            "\nconclusion: the array powers the caches AND cools the die with \
             {:+.2} W to spare.",
            report.net_power_at_1v().value()
        );
    }
    Ok(())
}
