//! Design-space exploration: how flow-cell power density responds to
//! channel dimensions, flow rate and temperature (the assessment the
//! paper's conclusion describes), plus the dark-silicon framing — what
//! fraction of the cache demand each design point covers.
//!
//! The polarization ablations (flow and temperature) route through the
//! batched [`ScenarioEngine`] as [`ScenarioRequest::Polarization`]
//! requests: every point shares one cached flow-cell worker whose
//! geometry context (velocity solution, transport-operator storage)
//! survives the coefficient retargets — no per-point model rebuilds,
//! mirroring how the coupled flow/inlet ablation below shares one
//! thermal operator.
//!
//! Run with: `cargo run --release --example design_space`

use bright_silicon::core::engine::{PolarizationRequest, ScenarioEngine};
use bright_silicon::core::{sweeps, Scenario};
use bright_silicon::floorplan::power7;
use bright_silicon::flowcell::options::VelocityModel;
use bright_silicon::flowcell::SolverOptions;
use bright_silicon::units::{CubicMetersPerSecond, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = power7::floorplan();
    let cache_demand_w = plan.cache_area().to_square_centimeters() * 1.0; // 1 W/cm^2
    let electrode_cm2_per_channel = 0.088; // 22 mm x 400 um side wall
    let channels = 88.0;

    println!("cache demand: {cache_demand_w:.2} W at 1 V\n");
    println!("channel-width sweep at 1.6 m/s (thinner diffusion gap wins):");
    println!("  w (um)   P (W/cm2)   array W   x demand");
    for row in sweeps::width_sweep(
        &[400.0, 300.0, 200.0, 100.0, 75.0],
        400.0,
        1.6,
        Kelvin::new(300.0),
    )? {
        let array_w = row.peak_power_density_w_cm2 * electrode_cm2_per_channel * channels;
        println!(
            "  {:>6.0}   {:>9.3}   {:>7.2}   {:>7.2}",
            row.width_um,
            row.peak_power_density_w_cm2,
            array_w,
            array_w / cache_demand_w
        );
    }

    // One engine serves every ablation below: the polarization batches
    // share a cached flow-cell worker, the coupled batch a cached
    // thermal/PDN worker.
    let mut engine = ScenarioEngine::new();
    let sweep_request = |f: &dyn Fn(&mut Scenario)| {
        let mut s = Scenario::power7_nominal();
        s.cell_options = SolverOptions {
            ny: 40,
            nx: 120,
            velocity: VelocityModel::PlanePoiseuille,
            ..SolverOptions::default()
        };
        f(&mut s);
        PolarizationRequest {
            scenario: s,
            points: 14,
        }
    };

    println!("\nflow sweep at the Table II geometry (engine-batched):");
    println!("  Q (uL/min)   P (W/cm2)   array W   x demand");
    let flows = [400.0, 1600.0, 7681.8, 30000.0];
    let reports = engine.run_polarization_batch(flows.iter().map(|&ul_min| {
        sweep_request(&move |s: &mut Scenario| {
            s.total_flow =
                CubicMetersPerSecond::from_microliters_per_minute(ul_min * s.channel_count as f64);
        })
    }));
    for (&ul_min, report) in flows.iter().zip(reports) {
        let outcome = report.result?;
        let array_w = outcome.max_power.power.value();
        println!(
            "  {:>10.0}   {:>9.3}   {:>7.2}   {:>7.2}",
            ul_min,
            array_w / (electrode_cm2_per_channel * channels),
            array_w,
            array_w / cache_demand_w
        );
    }

    println!("\ntemperature sweep (the 'hot chips help' effect, engine-batched):");
    println!("  T (degC)   P (W/cm2)   array W   x demand");
    let temps_k = [290.0, 300.0, 310.0, 320.0, 330.0];
    let reports = engine.run_polarization_batch(temps_k.iter().map(|&t| {
        sweep_request(&move |s: &mut Scenario| {
            s.inlet_temperature = Kelvin::new(t);
        })
    }));
    for (&t, report) in temps_k.iter().zip(reports) {
        let outcome = report.result?;
        let array_w = outcome.max_power.power.value();
        println!(
            "  {:>8.1}   {:>9.3}   {:>7.2}   {:>7.2}",
            t - 273.15,
            array_w / (electrode_cm2_per_channel * channels),
            array_w,
            array_w / cache_demand_w
        );
    }
    let stats = engine.stats();
    println!(
        "  engine: {} polarization requests, {} cell context build(s), {} reuse(s)",
        stats.polarization_requests, stats.cell_contexts_built, stats.cell_context_reuses
    );

    println!(
        "\nreading: every design point covers the cache rail several times \
         over, but remains 10-50x short of the full-chip demand — exactly \
         the gap the paper's outlook describes."
    );

    // Coupled flow-rate / inlet-temperature ablation through the same
    // engine: one thermal operator assembly serves every point below
    // (coefficients are refreshed in place between requests).
    let mut points: Vec<Scenario> = Vec::new();
    for ml_min in [676.0, 400.0, 200.0, 100.0, 48.0] {
        let mut s = Scenario::power7_reduced();
        s.total_flow = CubicMetersPerSecond::from_milliliters_per_minute(ml_min);
        points.push(s);
    }
    for inlet_c in [32.0, 37.0] {
        let mut s = Scenario::power7_reduced();
        s.inlet_temperature = Kelvin::new(273.15 + inlet_c);
        points.push(s);
    }
    let reports = engine.run_batch(points.iter().cloned());
    println!("\ncoupled flow/inlet ablation (batched engine, reduced grid):");
    println!("  Q (ml/min)   T_in (degC)   peak (degC)   boost (%)");
    for (scenario, report) in points.iter().zip(reports) {
        let r = report.result?;
        println!(
            "  {:>10.0}   {:>11.1}   {:>11.1}   {:>9.2}",
            scenario.total_flow.to_milliliters_per_minute(),
            scenario.inlet_temperature.to_celsius().value(),
            r.peak_temperature.to_celsius().value(),
            r.thermal_boost_percent,
        );
    }
    let stats = engine.stats();
    println!(
        "  engine: {} steady requests, {} operator build(s), {} reuse(s)",
        stats.requests, stats.operators_built, stats.operator_reuses
    );
    Ok(())
}
