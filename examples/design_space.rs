//! Design-space exploration: how flow-cell power density responds to
//! channel dimensions, flow rate and temperature (the assessment the
//! paper's conclusion describes), plus the dark-silicon framing — what
//! fraction of the cache demand each design point covers.
//!
//! The closing section sweeps the *coupled* system (flow rate and inlet
//! temperature against peak die temperature) through the batched
//! [`ScenarioEngine`]: every ablation point shares one cached thermal
//! operator whose coefficients are re-stamped in place — no per-point
//! model rebuilds.
//!
//! Run with: `cargo run --release --example design_space`

use bright_silicon::core::engine::ScenarioEngine;
use bright_silicon::core::{sweeps, Scenario};
use bright_silicon::floorplan::power7;
use bright_silicon::units::{CubicMetersPerSecond, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = power7::floorplan();
    let cache_demand_w = plan.cache_area().to_square_centimeters() * 1.0; // 1 W/cm^2
    let electrode_cm2_per_channel = 0.088; // 22 mm x 400 um side wall
    let channels = 88.0;

    println!("cache demand: {cache_demand_w:.2} W at 1 V\n");
    println!("channel-width sweep at 1.6 m/s (thinner diffusion gap wins):");
    println!("  w (um)   P (W/cm2)   array W   x demand");
    for row in sweeps::width_sweep(
        &[400.0, 300.0, 200.0, 100.0, 75.0],
        400.0,
        1.6,
        Kelvin::new(300.0),
    )? {
        let array_w = row.peak_power_density_w_cm2 * electrode_cm2_per_channel * channels;
        println!(
            "  {:>6.0}   {:>9.3}   {:>7.2}   {:>7.2}",
            row.width_um,
            row.peak_power_density_w_cm2,
            array_w,
            array_w / cache_demand_w
        );
    }

    println!("\nflow sweep at the Table II geometry:");
    println!("  Q (uL/min)   P (W/cm2)   array W   x demand");
    for row in sweeps::flow_sweep(&[400.0, 1600.0, 7681.8, 30000.0], Kelvin::new(300.0))? {
        let array_w = row.peak_power_density_w_cm2 * electrode_cm2_per_channel * channels;
        println!(
            "  {:>10.0}   {:>9.3}   {:>7.2}   {:>7.2}",
            row.flow_ul_min,
            row.peak_power_density_w_cm2,
            array_w,
            array_w / cache_demand_w
        );
    }

    println!("\ntemperature sweep (the 'hot chips help' effect):");
    println!("  T (degC)   P (W/cm2)   array W   x demand");
    for row in sweeps::temperature_sweep(&[290.0, 300.0, 310.0, 320.0, 330.0])? {
        let array_w = row.peak_power_density_w_cm2 * electrode_cm2_per_channel * channels;
        println!(
            "  {:>8.1}   {:>9.3}   {:>7.2}   {:>7.2}",
            row.temperature_k - 273.15,
            row.peak_power_density_w_cm2,
            array_w,
            array_w / cache_demand_w
        );
    }

    println!(
        "\nreading: every design point covers the cache rail several times \
         over, but remains 10-50x short of the full-chip demand — exactly \
         the gap the paper's outlook describes."
    );

    // Coupled flow-rate / inlet-temperature ablation through the batched
    // engine: one thermal operator assembly serves every point below
    // (coefficients are refreshed in place between requests).
    let mut points: Vec<Scenario> = Vec::new();
    for ml_min in [676.0, 400.0, 200.0, 100.0, 48.0] {
        let mut s = Scenario::power7_reduced();
        s.total_flow = CubicMetersPerSecond::from_milliliters_per_minute(ml_min);
        points.push(s);
    }
    for inlet_c in [32.0, 37.0] {
        let mut s = Scenario::power7_reduced();
        s.inlet_temperature = Kelvin::new(273.15 + inlet_c);
        points.push(s);
    }
    let mut engine = ScenarioEngine::new();
    let reports = engine.run_batch(points.iter().cloned());
    println!("\ncoupled flow/inlet ablation (batched engine, reduced grid):");
    println!("  Q (ml/min)   T_in (degC)   peak (degC)   boost (%)");
    for (scenario, report) in points.iter().zip(reports) {
        let r = report.result?;
        println!(
            "  {:>10.0}   {:>11.1}   {:>11.1}   {:>9.2}",
            scenario.total_flow.to_milliliters_per_minute(),
            scenario.inlet_temperature.to_celsius().value(),
            r.peak_temperature.to_celsius().value(),
            r.thermal_boost_percent,
        );
    }
    let stats = engine.stats();
    println!(
        "  engine: {} requests, {} operator build(s), {} reuse(s)",
        stats.requests, stats.operators_built, stats.operator_reuses
    );
    Ok(())
}
