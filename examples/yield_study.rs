//! Monte Carlo yield study: how manufacturing and operating tolerances
//! spread the integrated design's headline metrics, and how often the
//! paper's operating point violates its thermal and net-power limits.
//!
//! Samples channel geometry (on a 1 µm lithography grid, width and
//! height correlated — one etch step cuts both), pump flow, inlet
//! temperature, contact ASR and workload scaling around the Table II
//! nominal point; every sample rides the co-simulation's retarget
//! mutators through a pool of warm workers, and the statistics stream
//! through mergeable constant-memory accumulators — the whole study
//! never stores per-sample results.
//!
//! Run with: `cargo run --release --example yield_study`

use bright_silicon::core::montecarlo::{self, McSpec};
use bright_silicon::core::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The reduced-resolution nominal point (same physics, ~30x less
    // work per sample), coarsened a step further so the 2048-sample
    // study finishes in seconds.
    let mut base = Scenario::power7_reduced();
    base.thermal_columns = 11;
    base.thermal_ny = 11;
    base.cell_options.ny = 12;
    base.cell_options.nx = 30;
    base.pdn.nx = 32;
    base.pdn.ny = 26;

    let mut spec = McSpec::power7_tolerances(base);
    spec.samples = 2048;
    spec.seed = 2014;
    spec.chunk = 64;

    println!("Monte Carlo yield study: {} samples, seed {}", spec.samples, spec.seed);
    println!("sampled variables:");
    for v in &spec.variables {
        println!(
            "  {:<20} {:?}{}",
            v.parameter.name(),
            v.distribution,
            v.quantum.map_or(String::new(), |q| format!("  (quantum {q:.1e})")),
        );
    }

    let run = montecarlo::run(&spec)?;
    let (report, stats) = (&run.report, &run.stats);

    println!("\n{}", report.summary());
    println!("\nmetric distributions:");
    println!("  {:<22} {:>10} {:>10} {:>10} {:>10}", "metric", "mean", "std", "min", "max");
    for m in &report.metrics {
        println!(
            "  {:<22} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            m.name, m.mean, m.std_dev, m.min, m.max
        );
    }

    println!("\npeak-temperature quantiles (K):");
    for (name, v) in ["p05", "p25", "p50", "p75", "p95"].iter().zip(report.peak_temperature.p) {
        println!("  {name}: {v:.3}");
    }
    println!("net-power quantiles (W):");
    for (name, v) in ["p05", "p25", "p50", "p75", "p95"].iter().zip(report.net_power.p) {
        println!("  {name}: {v:.3}");
    }

    println!("\nfailure probabilities (95% Wilson intervals):");
    println!(
        "  P(peak T > {:.1} K)  = {:.4}  [{:.4}, {:.4}]",
        report.over_temperature.limit,
        report.over_temperature.probability,
        report.over_temperature.wilson_low,
        report.over_temperature.wilson_high,
    );
    println!(
        "  P(net power < {:.1} W) = {:.4}  [{:.4}, {:.4}]",
        report.under_power.limit,
        report.under_power.probability,
        report.under_power.wilson_low,
        report.under_power.wilson_high,
    );

    // The per-node field statistics come from the same streaming pass:
    // locate the hottest mean junction cell and how much it wobbles.
    if let Some((i, t)) = report
        .field_mean
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        println!(
            "\nhottest mean junction cell: ({}, {}) at {:.2} K (sigma {:.3} K)",
            i % report.field_nx,
            i / report.field_nx,
            t,
            report.field_std[i],
        );
    }

    println!(
        "\nengine: {} cold builds, {} retargets, {} quarantines across {} chunks on {} workers",
        stats.cold_builds, stats.retargets, stats.quarantines, stats.chunks, stats.workers,
    );
    println!(
        "geometry cache: {} hits / {} misses (distinct duct solves paid once study-wide)",
        stats.geometry_cache_hits, stats.geometry_cache_misses,
    );
    println!(
        "streaming state: {} live forest nodes, {} accumulator bytes for {} samples",
        stats.peak_live_nodes, stats.accumulator_state_bytes, spec.samples,
    );

    // The O(1)-memory claim, enforced: the accumulator never holds more
    // than ~log2(n) partial states no matter how many samples streamed
    // through (2048 leaves reduce to a handful of live nodes).
    assert!(
        stats.peak_live_nodes <= 12,
        "streaming reduction must stay logarithmic, got {} live nodes",
        stats.peak_live_nodes
    );
    assert_eq!(
        report.evaluated + report.invalid + report.failed,
        spec.samples as u64,
        "every sample must be accounted for",
    );
    Ok(())
}
