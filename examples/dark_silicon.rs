//! Dark-silicon framing: a conventional power budget forces cores off;
//! the integrated microfluidic supply keeps the cache subsystem powered
//! "for free" and cools whatever does run.
//!
//! Part 1 simulates three steady activity levels of the POWER7+ (8, 6
//! and 4 live cores), comparing peak temperature and the share of the
//! chip the flow-cell array can carry. Part 2 runs the *dynamic* side
//! through the engine: three duty-cycling traces that share a full-load
//! warm-up prefix and then dim different core counts — the shared
//! prefix is integrated once and branched from a checkpoint.
//!
//! Run with: `cargo run --release --example dark_silicon`

use bright_silicon::core::{
    CoSimulation, LoadStep, Scenario, ScenarioEngine, SteppingMode, TransientRequest,
};
use bright_silicon::floorplan::PowerScenario;
use bright_silicon::thermal::transient::AdaptiveConfig;
use bright_silicon::units::{Kelvin, WattPerSquareMeter};

fn dimmed(dark: usize) -> PowerScenario {
    let mut load = PowerScenario::full_load();
    for i in 0..dark {
        load.set_block_density(format!("core{i}"), WattPerSquareMeter::new(0.0));
    }
    load
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dark cores   chip W   peak degC   array W @1V   rail W   covered");
    for dark in [0usize, 2, 4] {
        let mut scenario = Scenario::power7_reduced();
        scenario.thermal_load = dimmed(dark);
        let report = CoSimulation::new(scenario)?.run()?;
        let covered = report.operating_point.is_some();
        println!(
            "{:>10}   {:>6.1}   {:>9.1}   {:>11.2}   {:>6.2}   {}",
            dark,
            report.chip_power.value(),
            report.peak_temperature.to_celsius().value(),
            report.power_at_1v.value(),
            report.rail_power.value(),
            if covered { "yes" } else { "NO" }
        );
    }

    // Dynamic dark silicon: 60 ms of full load, then 60 ms with 0/2/4
    // cores gated. The three traces share their first segment, so the
    // engine integrates that warm-up once, checkpoints, and branches.
    println!("\nduty-cycle transients (shared 60 ms full-load warm-up):");
    let mut engine = ScenarioEngine::new();
    let reports = engine.run_transient_batch([0usize, 2, 4].map(|dark| TransientRequest {
        scenario: Scenario::power7_reduced(),
        trace: vec![
            LoadStep::new(0.06, PowerScenario::full_load()),
            LoadStep::new(0.06, dimmed(dark)),
        ],
        initial_temperature: Kelvin::new(300.0),
        stepping: SteppingMode::Adaptive(AdaptiveConfig::default()),
    }));
    println!("dark cores   peak degC   end degC   steps   solves   shared ms");
    for (dark, report) in [0usize, 2, 4].iter().zip(&reports) {
        let r = report.result.as_ref().expect("transient converges");
        println!(
            "{:>10}   {:>9.1}   {:>8.1}   {:>5}   {:>6}   {:>9.0}",
            dark,
            r.trace_peak.to_celsius().value(),
            r.final_peak.to_celsius().value(),
            r.steps,
            r.solves,
            r.shared_time * 1e3,
        );
    }
    let stats = engine.stats();
    println!(
        "engine: {} trace segments integrated, {} served from the shared prefix",
        stats.trace_segments_integrated, stats.trace_segments_reused
    );

    println!(
        "\nreading: even at full 8-core load the die stays far below\n\
         thermal limits (no thermally-forced dark silicon), the cache\n\
         rail is covered by the coolant itself at every activity level,\n\
         and gating cores cools the die within tens of milliseconds —\n\
         the paper's 'avoiding dark silicon' argument in one table."
    );
    Ok(())
}
