//! Dark-silicon framing: a conventional power budget forces cores off;
//! the integrated microfluidic supply keeps the cache subsystem powered
//! "for free" and cools whatever does run.
//!
//! Simulates three activity levels of the POWER7+ (8, 6 and 4 live
//! cores), comparing peak temperature and the share of the chip the
//! flow-cell array can carry.
//!
//! Run with: `cargo run --release --example dark_silicon`

use bright_silicon::core::{CoSimulation, Scenario};
use bright_silicon::units::WattPerSquareMeter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("dark cores   chip W   peak degC   array W @1V   rail W   covered");
    for dark in [0usize, 2, 4] {
        let mut scenario = Scenario::power7_reduced();
        // Switch off `dark` cores (per-block overrides).
        for i in 0..dark {
            scenario
                .thermal_load
                .set_block_density(format!("core{i}"), WattPerSquareMeter::new(0.0));
        }
        let report = CoSimulation::new(scenario)?.run()?;
        let covered = report.operating_point.is_some();
        println!(
            "{:>10}   {:>6.1}   {:>9.1}   {:>11.2}   {:>6.2}   {}",
            dark,
            report.chip_power.value(),
            report.peak_temperature.to_celsius().value(),
            report.power_at_1v.value(),
            report.rail_power.value(),
            if covered { "yes" } else { "NO" }
        );
    }
    println!(
        "\nreading: even at full 8-core load the die stays far below\n\
         thermal limits (no thermally-forced dark silicon), and the cache\n\
         rail is covered by the coolant itself at every activity level —\n\
         the paper's 'avoiding dark silicon' argument in one table."
    );
    Ok(())
}
