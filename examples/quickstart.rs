//! Quickstart: the paper's headline experiment in a dozen lines.
//!
//! Builds the Table II microfluidic fuel-cell array (88 channels over the
//! IBM POWER7+ die), sweeps its polarization curve, and checks the
//! paper's energy-balance claim: the array generates more electrical
//! power at the cache supply point than the pump spends pushing the
//! electrolytes.
//!
//! Run with: `cargo run --release --example quickstart`

use bright_silicon::flow::fluid::TemperatureDependentFluid;
use bright_silicon::flow::{array::ChannelArray, hydraulics};
use bright_silicon::flowcell::presets;
use bright_silicon::units::{CubicMetersPerSecond, Kelvin, Meters};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Electrical side: the 88-channel array of Table II -------------
    let array = presets::power7_array()?;
    println!(
        "array: {} channels, electrode area {:.3} cm^2 each",
        array.count(),
        array
            .template()
            .geometry()
            .electrode_area()
            .to_square_centimeters()
    );

    let ocv = array.template().open_circuit_voltage()?;
    println!("open-circuit voltage: {ocv:.3}");

    let curve = array.polarization_curve(16)?;
    println!("\n  V (V)    I (A)    P (W)");
    for p in curve.points() {
        println!(
            "  {:5.3}   {:6.3}   {:6.3}",
            p.voltage.value(),
            p.current.value(),
            p.power.value()
        );
    }

    let i_at_1v = curve
        .current_at_voltage(1.0)
        .expect("1 V lies on the curve");
    let p_at_1v = i_at_1v.value() * 1.0;
    println!("\nat the 1 V cache supply point: {i_at_1v:.3} -> {p_at_1v:.2} W");

    // --- Hydraulic side: pumping power at 676 ml/min --------------------
    let channels = ChannelArray::new(
        *array.template().geometry().channel(),
        array.count(),
        Meters::from_micrometers(300.0),
    )?;
    let props = TemperatureDependentFluid::vanadium_electrolyte().at(Kelvin::new(300.0))?;
    let total_flow = CubicMetersPerSecond::from_milliliters_per_minute(676.0);
    let dp = channels.pressure_drop(&props, total_flow);
    let pump = channels.pumping_power(&props, total_flow, hydraulics::DEFAULT_PUMP_EFFICIENCY)?;
    println!(
        "pressure drop: {:.3} bar ({:.3} bar/cm), pumping power: {pump:.2}",
        dp.to_bar(),
        (dp / channels.channel().length()).to_bar_per_centimeter(),
    );

    let mpp = curve.max_power_point();
    println!(
        "max power point: {:.2} at {:.3} / {:.3}",
        mpp.power.value(),
        mpp.voltage,
        mpp.current
    );
    if mpp.power.value() > pump.value() {
        println!("=> generation exceeds pumping cost: net-positive integrated supply");
    } else {
        println!("=> pumping exceeds generation at this operating point");
    }
    Ok(())
}
