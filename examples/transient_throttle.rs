//! Transient thermal response to a pump-throttling event: the chip runs
//! at full load while the electrolyte flow is ramped from 676 down to
//! 48 ml/min, and the die temperature is tracked through the transition
//! (the dynamic side of the paper's Section III-B flow-throttling
//! experiment). The throttle is modelled as a *coefficient ramp* riding
//! a single thermal model — the operator is re-stamped in place each
//! step (an O(nnz) value refresh, never a re-assembly) while the
//! TR-BDF2 controller picks the step size: small through the fast part
//! of the spin-down, stretching as the field settles. A mid-ramp
//! checkpoint/restore round trip closes the loop.
//!
//! Run with: `cargo run --release --example transient_throttle`

use bright_silicon::floorplan::{power7, PowerScenario};
use bright_silicon::thermal::presets;
use bright_silicon::thermal::transient::{
    AdaptiveConfig, AdaptiveTransient, Checkpoint, CoefficientRamp, PowerTrace, TraceSegment,
    TransientSimulation,
};
use bright_silicon::units::{Celsius, CubicMetersPerSecond, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = power7::floorplan();

    // Phase 1: steady state at the nominal 676 ml/min.
    let nominal = presets::power7_stack()?;
    let power = PowerScenario::full_load().rasterize(&plan, nominal.grid())?;
    let steady = nominal.solve_steady(&power)?;
    println!(
        "phase 1 (676 ml/min): steady peak {:.1}",
        steady.max_temperature().to_celsius()
    );

    // Phase 2: spin the pump down to 48 ml/min over 150 ms, then hold.
    // One model carries the whole trace; the ramp re-stamps its
    // convection coefficients in place as the flow falls.
    let (nominal_flow, inlet) = nominal.operating_point().expect("liquid-cooled preset");
    let throttled_flow = CubicMetersPerSecond::from_milliliters_per_minute(48.0);
    let spin_down = CoefficientRamp {
        flow_start: nominal_flow,
        flow_end: throttled_flow,
        inlet_start: inlet,
        inlet_end: inlet,
    };
    let hold = CoefficientRamp {
        flow_start: throttled_flow,
        flow_end: throttled_flow,
        inlet_start: inlet,
        inlet_end: inlet,
    };
    let trace = PowerTrace::new(vec![
        TraceSegment::constant(0.15, power.clone()).with_ramp(spin_down),
        TraceSegment::constant(0.45, power.clone()).with_ramp(hold),
    ])?;
    let cfg = AdaptiveConfig {
        abs_tol: 0.05,
        dt_init: 2e-3,
        dt_min: 5e-4,
        dt_max: 0.1,
        ..AdaptiveConfig::default()
    };
    let mut sim = AdaptiveTransient::new(
        nominal.clone(),
        trace.clone(),
        steady.max_temperature().value(), // warm start at the phase-1 level
        cfg,
    )?;
    println!("\nphase 2 (676 -> 48 ml/min over 150 ms): TR-BDF2 through the ramp");
    println!("   t (ms)   dt (ms)   peak (degC)   local err");
    let mut checkpoint: Option<Checkpoint> = None;
    while !sim.finished() {
        let step = sim.step()?;
        println!(
            "   {:>6.1}   {:>7.2}   {:>11.2}   {:>9.2e}",
            step.time * 1e3,
            step.dt * 1e3,
            Celsius::from(Kelvin::new(step.peak)).value(),
            step.error,
        );
        // Grab a checkpoint mid-ramp, while the coefficients are still
        // in flight.
        if checkpoint.is_none() && step.time > 0.05 {
            checkpoint = Some(sim.save_checkpoint());
        }
    }
    let stats = sim.stats();
    let final_peak = sim.peak();
    println!(
        "\nadaptive: {} accepted steps ({} rejected), {} solves for {:.0} ms of trace",
        stats.accepted,
        stats.rejected,
        stats.solves,
        sim.time() * 1e3
    );
    assert_eq!(
        sim.model().assembly_count(),
        1,
        "ramps must ride value refreshes, never re-assembly"
    );
    println!(
        "ramp cost:  {} coefficient re-stamps, {} operator assembly (the one at construction)",
        sim.coefficient_refreshes(),
        sim.model().assembly_count()
    );

    // The fixed-dt stepper integrates the same ramped trace, but needs
    // its step sized for the *fastest* part of the transient everywhere:
    let mut fixed = TransientSimulation::new(
        nominal,
        &power,
        steady.max_temperature().value(),
        2e-3,
    )?;
    fixed.run_trace(&trace)?;
    println!(
        "fixed 2 ms:  {} steps ({} solves) for the same trace -> {:.1}x more solves",
        fixed.step_count(),
        fixed.solve_count(),
        fixed.solve_count() as f64 / stats.solves as f64
    );

    // Checkpoint round trip: restore the mid-ramp snapshot (via its
    // JSON form) into a fresh model and integrate the remainder again —
    // bit-identical end state, coefficients re-synced to where the ramp
    // stood.
    let cp = Checkpoint::from_json_str(&checkpoint.expect("saved mid-ramp").to_json_string())?;
    let resume_from = cp.time;
    let mut resumed = AdaptiveTransient::new(
        presets::power7_stack()?,
        trace,
        steady.max_temperature().value(),
        cfg,
    )?;
    resumed.restore_checkpoint(&cp)?;
    resumed.run_to_end()?;
    assert_eq!(
        resumed.temperatures(),
        sim.temperatures(),
        "restored run must continue bitwise-identically"
    );
    println!(
        "checkpoint:  restored mid-ramp at t = {:.0} ms and re-integrated to the same field, bit for bit",
        resume_from * 1e3
    );

    println!(
        "\nafter {:.0} ms the die settles near {:.1} — still well below \
         silicon limits, and (Section III-B) the hotter electrolyte now \
         generates ~20% more electrical power.",
        sim.time() * 1e3,
        Celsius::from(Kelvin::new(final_peak)).value()
    );
    Ok(())
}
