//! Transient thermal response to a pump-throttling event: the chip runs
//! at full load while the electrolyte flow is cut from 676 to 48 ml/min,
//! and the die temperature is tracked through the transition (the
//! dynamic side of the paper's Section III-B flow-throttling experiment).
//!
//! Run with: `cargo run --release --example transient_throttle`

use bright_silicon::floorplan::{power7, PowerScenario};
use bright_silicon::thermal::presets;
use bright_silicon::thermal::transient::TransientSimulation;
use bright_silicon::units::{Celsius, CubicMetersPerSecond, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = power7::floorplan();

    // Phase 1: steady state at the nominal 676 ml/min.
    let nominal = presets::power7_stack()?;
    let power = PowerScenario::full_load().rasterize(&plan, nominal.grid())?;
    let steady = nominal.solve_steady(&power)?;
    println!(
        "phase 1 (676 ml/min): steady peak {:.1}",
        steady.max_temperature().to_celsius()
    );

    // Phase 2: throttle the pump to 48 ml/min and watch the die heat up.
    let throttled = presets::power7_stack_at(
        CubicMetersPerSecond::from_milliliters_per_minute(48.0),
        Kelvin::new(300.0),
    )?;
    let mut sim = TransientSimulation::new(
        throttled,
        &power,
        steady.max_temperature().value(), // warm start near phase-1 level
        10e-3,
    )?;
    println!("\nphase 2 (48 ml/min): transient after throttling");
    println!("   t (ms)   peak (degC)");
    for step in 1..=60 {
        let peak = sim.step()?;
        if step % 5 == 0 {
            println!(
                "   {:>6.0}   {:>9.2}",
                sim.time() * 1e3,
                Celsius::from(Kelvin::new(peak)).value()
            );
        }
    }

    let snap = sim.snapshot()?;
    println!(
        "\nafter {:.0} ms the die settles near {:.1} — still well below \
         silicon limits, and (Section III-B) the hotter electrolyte now \
         generates ~20% more electrical power.",
        sim.time() * 1e3,
        snap.max_temperature().to_celsius()
    );
    Ok(())
}
