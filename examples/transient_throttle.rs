//! Transient thermal response to a pump-throttling event: the chip runs
//! at full load while the electrolyte flow is cut from 676 to 48 ml/min,
//! and the die temperature is tracked through the transition (the
//! dynamic side of the paper's Section III-B flow-throttling experiment)
//! — now with the adaptive-Δt controller, which takes small steps through
//! the fast initial transient and stretches them as the field settles,
//! and a mid-trace checkpoint/restore round trip.
//!
//! Run with: `cargo run --release --example transient_throttle`

use bright_silicon::floorplan::{power7, PowerScenario};
use bright_silicon::thermal::presets;
use bright_silicon::thermal::transient::{
    AdaptiveConfig, AdaptiveTransient, Checkpoint, PowerTrace, TraceSegment,
    TransientSimulation,
};
use bright_silicon::units::{Celsius, CubicMetersPerSecond, Kelvin};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = power7::floorplan();

    // Phase 1: steady state at the nominal 676 ml/min.
    let nominal = presets::power7_stack()?;
    let power = PowerScenario::full_load().rasterize(&plan, nominal.grid())?;
    let steady = nominal.solve_steady(&power)?;
    println!(
        "phase 1 (676 ml/min): steady peak {:.1}",
        steady.max_temperature().to_celsius()
    );

    // Phase 2: throttle the pump to 48 ml/min and watch the die heat up,
    // letting the controller pick the step size.
    let throttled = presets::power7_stack_at(
        CubicMetersPerSecond::from_milliliters_per_minute(48.0),
        Kelvin::new(300.0),
    )?;
    let trace = PowerTrace::new(vec![TraceSegment {
        duration: 0.6,
        power: power.clone(),
    }])?;
    let cfg = AdaptiveConfig {
        abs_tol: 0.05,
        dt_init: 2e-3,
        dt_min: 5e-4,
        dt_max: 0.1,
        ..AdaptiveConfig::default()
    };
    let mut sim = AdaptiveTransient::new(
        throttled.clone(),
        trace.clone(),
        steady.max_temperature().value(), // warm start near phase-1 level
        cfg,
    )?;
    println!("\nphase 2 (48 ml/min): adaptive transient after throttling");
    println!("   t (ms)   dt (ms)   peak (degC)   local err");
    let mut checkpoint: Option<Checkpoint> = None;
    while !sim.finished() {
        let step = sim.step()?;
        println!(
            "   {:>6.1}   {:>7.2}   {:>11.2}   {:>9.2e}",
            step.time * 1e3,
            step.dt * 1e3,
            Celsius::from(Kelvin::new(step.peak)).value(),
            step.error,
        );
        // Grab a checkpoint partway through the transition.
        if checkpoint.is_none() && step.time > 0.1 {
            checkpoint = Some(sim.save_checkpoint());
        }
    }
    let stats = sim.stats();
    let final_peak = sim.peak();
    println!(
        "\nadaptive: {} accepted steps ({} rejected), {} solves for {:.0} ms of trace",
        stats.accepted,
        stats.rejected,
        stats.solves,
        sim.time() * 1e3
    );

    // The fixed-Δt stepper needs its step sized for the *fastest* part
    // of the transient everywhere:
    let mut fixed = TransientSimulation::new(
        throttled,
        &power,
        steady.max_temperature().value(),
        2e-3,
    )?;
    fixed.run_trace(&trace)?;
    println!(
        "fixed 2 ms:  {} steps ({} solves) for the same trace -> {:.1}x more solves",
        fixed.step_count(),
        fixed.solve_count(),
        fixed.solve_count() as f64 / stats.solves as f64
    );

    // Checkpoint round trip: restore the mid-trace snapshot (via its
    // JSON form) and integrate the remainder again — bit-identical end
    // state.
    let cp = Checkpoint::from_json_str(&checkpoint.expect("saved mid-trace").to_json_string())?;
    let resume_from = cp.time;
    let mut resumed = AdaptiveTransient::new(
        presets::power7_stack_at(
            CubicMetersPerSecond::from_milliliters_per_minute(48.0),
            Kelvin::new(300.0),
        )?,
        trace,
        steady.max_temperature().value(),
        cfg,
    )?;
    resumed.restore_checkpoint(&cp)?;
    resumed.run_to_end()?;
    assert_eq!(
        resumed.temperatures(),
        sim.temperatures(),
        "restored run must continue bitwise-identically"
    );
    println!(
        "checkpoint:  restored at t = {:.0} ms and re-integrated to the same field, bit for bit",
        resume_from * 1e3
    );

    println!(
        "\nafter {:.0} ms the die settles near {:.1} — still well below \
         silicon limits, and (Section III-B) the hotter electrolyte now \
         generates ~20% more electrical power.",
        sim.time() * 1e3,
        Celsius::from(Kelvin::new(final_peak)).value()
    );
    Ok(())
}
