//! Regression gates on the paper's reported numbers.
//!
//! These run at reduced resolution so `cargo test --workspace` stays fast
//! in debug builds; the `crates/bench` binaries regenerate every figure
//! at full resolution. Bands are deliberately generous — they encode the
//! *shape* criteria of EXPERIMENTS.md (who wins, by what factor), not
//! exact numerics.

use bright_silicon::core::{CoSimulation, Scenario};
use bright_silicon::flowcell::options::{SolverOptions, TemperatureProfile, VelocityModel};
use bright_silicon::flowcell::{presets, CellArray, CellGeometry, CellModel};
use bright_silicon::echem::vanadium;
use bright_silicon::flow::RectChannel;
use bright_silicon::floorplan::{power7, PowerScenario};
use bright_silicon::pdn;
use bright_silicon::thermal;
use bright_silicon::units::{CubicMetersPerSecond, Kelvin, Meters};

fn fast_power7_channel() -> CellModel {
    let channel = RectChannel::new(
        Meters::from_micrometers(200.0),
        Meters::from_micrometers(400.0),
        Meters::from_millimeters(22.0),
    )
    .unwrap();
    CellModel::new(
        CellGeometry::new(channel),
        vanadium::power7_cell_chemistry(),
        CubicMetersPerSecond::from_milliliters_per_minute(676.0 / 88.0),
        TemperatureProfile::Uniform(Kelvin::new(300.0)),
        SolverOptions {
            ny: 32,
            nx: 100,
            velocity: VelocityModel::PlanePoiseuille,
            ..SolverOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn fig7_array_ocv_and_current_at_1v() {
    let array = CellArray::new(fast_power7_channel(), 88).unwrap();
    let ocv = array.template().open_circuit_voltage().unwrap().value();
    // Paper Fig. 7 zero-current intercept ~1.6 V (Nernst at Table II
    // compositions gives 1.648 V).
    assert!((ocv - 1.648).abs() < 0.02, "OCV {ocv}");

    let op = array.solve_at_voltage(1.0).unwrap();
    // Paper: 6 A at 1 V. Our transport-resolved model lands at ~2/3 of
    // that; gate the band [2.5, 8] A so the "can power the caches
    // (>= 2.4 A)" conclusion stays pinned.
    assert!(
        op.current.value() > 2.5 && op.current.value() < 8.0,
        "I(1V) = {}",
        op.current
    );
}

#[test]
fn fig7_polarization_shape() {
    let array = CellArray::new(fast_power7_channel(), 88).unwrap();
    let curve = array.polarization_curve(10).unwrap();
    // Monotone V-I with a transport plateau: current at 0.3 V within 25%
    // of the limiting current.
    let i_low = curve.current_at_voltage(0.3).unwrap().value();
    let i_lim = curve.limiting_current().value();
    assert!(i_low > 0.75 * i_lim, "knee {i_low} vs plateau {i_lim}");
    // Max power point sits near 1 V (paper's supply point).
    let mpp = curve.max_power_point();
    assert!(
        mpp.voltage.value() > 0.8 && mpp.voltage.value() < 1.4,
        "MPP at {}",
        mpp.voltage
    );
}

#[test]
fn fig3_limiting_currents_follow_flow_ordering() {
    // Lightweight version of the Fig. 3 gate: two flow rates, plateau
    // ordering and magnitude.
    // The 2 mm x 150 um cell is wide and flat: the velocity rises over
    // ~H/2 near the side-wall electrodes, which plane Poiseuille across
    // the full width cannot represent — keep the duct profile here.
    let opts = SolverOptions {
        ny: 64,
        nx: 140,
        velocity: VelocityModel::Duct { nz: 8 },
        contact_asr: presets::KJEANG_CONTACT_ASR,
        ..SolverOptions::default()
    };
    let make = |flow_ul: f64| {
        let channel = RectChannel::new(
            Meters::from_millimeters(2.0),
            Meters::from_micrometers(150.0),
            Meters::from_millimeters(33.0),
        )
        .unwrap();
        CellModel::new(
            CellGeometry::new(channel),
            vanadium::kjeang_cell_chemistry(),
            CubicMetersPerSecond::from_microliters_per_minute(2.0 * flow_ul),
            TemperatureProfile::Uniform(Kelvin::new(300.0)),
            opts.clone(),
        )
        .unwrap()
    };
    let j = |flow_ul: f64| {
        make(flow_ul)
            .solve_at_voltage(0.1)
            .unwrap()
            .mean_current_density()
            .to_milliamps_per_square_centimeter()
    };
    let j60 = j(60.0);
    let j300 = j(300.0);
    // Paper Fig. 3: ~28 and ~41 mA/cm^2. Accept ±35%.
    assert!((j60 - 28.0).abs() / 28.0 < 0.35, "j(60) = {j60}");
    assert!((j300 - 41.0).abs() / 41.0 < 0.35, "j(300) = {j300}");
    // Leveque flow scaling: Q^(1/3) within 25%.
    let expected_ratio = 5.0_f64.powf(1.0 / 3.0);
    assert!(
        (j300 / j60 - expected_ratio).abs() / expected_ratio < 0.25,
        "ratio {}",
        j300 / j60
    );
}

#[test]
fn fig9_peak_temperature_band() {
    let model = thermal::presets::power7_stack().unwrap();
    let power = PowerScenario::full_load()
        .rasterize(&power7::floorplan(), model.grid())
        .unwrap();
    let sol = model.solve_steady(&power).unwrap();
    let peak_c = sol.max_temperature().to_celsius().value();
    // Paper: 41 degC. Gate 32..50.
    assert!(peak_c > 32.0 && peak_c < 50.0, "peak {peak_c}");
    // Inlet-relative rise within 2x of the paper's 14 K.
    let rise = peak_c - 26.85;
    assert!(rise > 5.0 && rise < 28.0, "rise {rise} K");
}

#[test]
fn fig8_voltage_band() {
    let sol = pdn::presets::power7_cache_rail()
        .unwrap()
        .solve()
        .unwrap();
    // Paper Fig. 8 color scale: 0.96 .. 1.0 V.
    assert!(sol.min_voltage().value() > 0.93 && sol.min_voltage().value() < 0.995);
    assert!(sol.max_voltage().value() > 0.99 && sol.max_voltage().value() <= 1.0 + 1e-9);
}

#[test]
fn e2_thermal_boost_ordering() {
    let nominal = CoSimulation::new(Scenario::power7_reduced())
        .unwrap()
        .run()
        .unwrap();
    let mut throttled_scenario = Scenario::power7_reduced();
    throttled_scenario.total_flow = CubicMetersPerSecond::from_milliliters_per_minute(48.0);
    let throttled = CoSimulation::new(throttled_scenario).unwrap().run().unwrap();

    // Paper Section III-B: <=4% at nominal, up to 23% throttled.
    assert!(
        nominal.thermal_boost_percent >= 0.0 && nominal.thermal_boost_percent < 8.0,
        "nominal boost {}",
        nominal.thermal_boost_percent
    );
    assert!(
        throttled.thermal_boost_percent > 10.0 && throttled.thermal_boost_percent < 35.0,
        "throttled boost {}",
        throttled.thermal_boost_percent
    );
}

#[test]
fn e3_energy_balance_is_net_positive() {
    let report = CoSimulation::new(Scenario::power7_reduced())
        .unwrap()
        .run()
        .unwrap();
    // Generation at the 1 V point exceeds pumping cost (paper: 6 W vs
    // 4.4 W; ours: ~4 W vs ~0.9 W).
    assert!(report.is_net_positive(), "{}", report.summary());
    // And the array covers the cache-rail demand through the VRM.
    assert!(report.operating_point.is_some(), "{}", report.summary());
}
