//! Property-based tests (proptest) on the numerical substrate and the
//! physics invariants that every figure of the paper leans on.

use proptest::prelude::*;

use bright_silicon::echem::{ButlerVolmer, RedoxCouple, SurfaceState};
use bright_silicon::num::dense::DenseMatrix;
use bright_silicon::num::interp::LinearInterpolator;
use bright_silicon::num::solvers::{bicgstab, conjugate_gradient, IterOptions};
use bright_silicon::num::tridiag::TridiagonalSystem;
use bright_silicon::num::TripletMatrix;
use bright_silicon::units::{
    AmperePerSquareMeter, Celsius, Kelvin, MetersPerSecondRate, MolePerCubicMeter, Volt,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn temperature_roundtrip(c in -200.0..500.0f64) {
        let k = Celsius::new(c).to_kelvin();
        let back = k.to_celsius().value();
        prop_assert!((back - c).abs() < 1e-9);
    }

    #[test]
    fn tridiagonal_solves_match_dense(
        n in 2usize..12,
        seed in 0u64..1000,
    ) {
        // Diagonally dominant random-ish tridiagonal system.
        let val = |i: usize, salt: u64| {
            let x = (i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed ^ salt);
            ((x >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let lower: Vec<f64> = (0..n - 1).map(|i| val(i, 1)).collect();
        let upper: Vec<f64> = (0..n - 1).map(|i| val(i, 2)).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| {
                3.0 + val(i, 3).abs()
                    + if i > 0 { lower[i - 1].abs() } else { 0.0 }
                    + if i < n - 1 { upper[i].abs() } else { 0.0 }
            })
            .collect();
        let b: Vec<f64> = (0..n).map(|i| val(i, 4)).collect();

        let tri = TridiagonalSystem::from_bands(lower.clone(), diag.clone(), upper.clone())
            .unwrap();
        let x_tri = tri.solve(&b).unwrap();

        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            rows[i][i] = diag[i];
            if i > 0 {
                rows[i][i - 1] = lower[i - 1];
            }
            if i < n - 1 {
                rows[i][i + 1] = upper[i];
            }
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let dense = DenseMatrix::from_rows(&row_refs).unwrap();
        let x_dense = dense.solve(&b).unwrap();
        for (a, d) in x_tri.iter().zip(&x_dense) {
            prop_assert!((a - d).abs() < 1e-9, "tri {a} vs dense {d}");
        }
    }

    #[test]
    fn cg_and_bicgstab_agree_on_spd_systems(
        n in 3usize..20,
        shift in 0.1..5.0f64,
    ) {
        // SPD: 1-D Laplacian + positive shift.
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0 + shift).unwrap();
            if i > 0 {
                t.push(i, i - 1, -1.0).unwrap();
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0).unwrap();
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let opts = IterOptions::default();
        let x1 = conjugate_gradient(&a, &b, None, &opts).unwrap().x;
        let x2 = bicgstab(&a, &b, None, &opts).unwrap().x;
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn interpolator_stays_within_hull(
        xs in proptest::collection::vec(-100.0..100.0f64, 3..10),
        q in -150.0..150.0f64,
    ) {
        let mut x = xs.clone();
        x.sort_by(|a, b| a.partial_cmp(b).unwrap());
        x.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        prop_assume!(x.len() >= 2);
        let y: Vec<f64> = x.iter().map(|v| v.sin()).collect();
        let f = LinearInterpolator::new(x, y.clone()).unwrap();
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = f.eval(q);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn butler_volmer_inverse_roundtrips(
        k0 in 1e-6..1e-4f64,
        c_ox in 10.0..3000.0f64,
        c_red in 10.0..3000.0f64,
        target in -2000.0..2000.0f64,
        t in 280.0..340.0f64,
    ) {
        let couple = RedoxCouple::new("p", Volt::new(0.0), 1, 0.5).unwrap();
        let bv = ButlerVolmer::new(
            couple,
            MetersPerSecondRate::new(k0),
            MolePerCubicMeter::new(c_ox),
            MolePerCubicMeter::new(c_red),
        )
        .unwrap();
        let surface = SurfaceState {
            c_ox: MolePerCubicMeter::new(c_ox * 0.7),
            c_red: MolePerCubicMeter::new(c_red * 0.8),
        };
        let tk = Kelvin::new(t);
        let eta = bv
            .overpotential_for_current(AmperePerSquareMeter::new(target), surface, tk)
            .unwrap();
        let back = bv.current_density(eta, surface, tk).unwrap().value();
        prop_assert!(
            (back - target).abs() < 1e-6 * target.abs().max(1.0),
            "target {target} -> eta {eta} -> {back}"
        );
    }

    #[test]
    fn butler_volmer_is_monotone_in_overpotential(
        k0 in 1e-6..1e-4f64,
        eta1 in -0.4..0.4f64,
        delta in 0.001..0.2f64,
    ) {
        let couple = RedoxCouple::new("p", Volt::new(0.0), 1, 0.5).unwrap();
        let bv = ButlerVolmer::new(
            couple,
            MetersPerSecondRate::new(k0),
            MolePerCubicMeter::new(1000.0),
            MolePerCubicMeter::new(1000.0),
        )
        .unwrap();
        let surface = SurfaceState {
            c_ox: MolePerCubicMeter::new(1000.0),
            c_red: MolePerCubicMeter::new(1000.0),
        };
        let tk = Kelvin::new(300.0);
        let i1 = bv.current_density(eta1, surface, tk).unwrap().value();
        let i2 = bv.current_density(eta1 + delta, surface, tk).unwrap().value();
        prop_assert!(i2 > i1);
    }

    #[test]
    fn nernst_potential_monotone_in_oxidant(
        c1 in 1.0..1000.0f64,
        factor in 1.01..10.0f64,
    ) {
        use bright_silicon::echem::nernst::equilibrium_potential;
        let couple = RedoxCouple::new("p", Volt::new(0.5), 1, 0.5).unwrap();
        let t = Kelvin::new(300.0);
        let red = MolePerCubicMeter::new(500.0);
        let e1 = equilibrium_potential(&couple, MolePerCubicMeter::new(c1), red, t).unwrap();
        let e2 =
            equilibrium_potential(&couple, MolePerCubicMeter::new(c1 * factor), red, t).unwrap();
        prop_assert!(e2.value() > e1.value());
    }
}

proptest! {
    // The transport marcher is more expensive: fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn marcher_conserves_mass_for_any_flux(
        q in 0.0..5e-3f64,
        d in 1e-10..5e-10f64,
        v in 0.2..3.0f64,
    ) {
        use bright_silicon::flowcell::transport::HalfCellMarcher;
        let ny = 32;
        let nx = 50;
        let mut m =
            HalfCellMarcher::new(100e-6, 22e-3, nx, vec![v; ny], 2000.0, 1.0).unwrap();
        let inflow = m.convected_reactant_flux();
        let mut extracted = 0.0;
        for _ in 0..nx {
            let resp = m.prepare(d).unwrap();
            let q_applied = q.min(0.9 * resp.q_max);
            m.commit(q_applied);
            extracted += q_applied * m.dx();
        }
        let outflow = m.convected_reactant_flux();
        let balance = inflow - outflow - extracted;
        prop_assert!(
            balance.abs() <= 2e-3 * extracted.max(inflow * 1e-9) + 1e-12,
            "imbalance {balance} (extracted {extracted})"
        );
    }
}
