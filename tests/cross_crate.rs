//! Cross-crate consistency checks: the same physical quantities computed
//! through different crate combinations must agree.

use bright_silicon::echem::vanadium;
use bright_silicon::flow::fluid::TemperatureDependentFluid;
use bright_silicon::flow::{array::ChannelArray, laminar, profile::DuctFlowSolution, RectChannel};
use bright_silicon::floorplan::{power7, BlockKind, PowerScenario};
use bright_silicon::mesh::Grid2d;
use bright_silicon::thermal::presets as thermal_presets;
use bright_silicon::units::{CubicMetersPerSecond, Kelvin, Meters};

fn table2_channel() -> RectChannel {
    RectChannel::new(
        Meters::from_micrometers(200.0),
        Meters::from_micrometers(400.0),
        Meters::from_millimeters(22.0),
    )
    .unwrap()
}

#[test]
fn thermal_energy_balance_matches_floorplan_power() {
    // floorplan -> power map -> thermal solve -> coolant enthalpy rise.
    let model = thermal_presets::power7_stack().unwrap();
    let plan = power7::floorplan();
    let scenario = PowerScenario::full_load();
    let map = scenario.rasterize(&plan, model.grid()).unwrap();
    let injected = map.integral();
    let block_sum = scenario.total_power(&plan).unwrap().value();
    // Rasterization at channel resolution tracks the exact block sum.
    assert!(
        ((injected - block_sum) / block_sum).abs() < 0.05,
        "raster {injected} vs blocks {block_sum}"
    );
    let sol = model.solve_steady(&map).unwrap();
    let absorbed = sol.absorbed_power().value();
    assert!(
        ((injected - absorbed) / injected).abs() < 1e-5,
        "injected {injected} vs absorbed {absorbed}"
    );
}

#[test]
fn numerical_duct_friction_matches_correlation_for_table2_shape() {
    // bright-flow's numerical Poisson solve vs the Shah-London fit used
    // by the hydraulics and thermal paths.
    let ch = table2_channel();
    let numeric = DuctFlowSolution::solve(&ch, 36, 72).unwrap().f_re_darcy();
    let correlated = laminar::f_re_darcy(ch.aspect_ratio());
    assert!(
        ((numeric - correlated) / correlated).abs() < 0.015,
        "numeric {numeric} vs correlation {correlated}"
    );
}

#[test]
fn pumping_power_consistent_between_flow_and_core_paths() {
    let ch = table2_channel();
    let array = ChannelArray::new(ch, 88, Meters::from_micrometers(301.7)).unwrap();
    let props = TemperatureDependentFluid::vanadium_electrolyte()
        .at(Kelvin::new(300.0))
        .unwrap();
    let flow = CubicMetersPerSecond::from_milliliters_per_minute(676.0);
    let direct = array.pumping_power(&props, flow, 0.5).unwrap().value();

    let report = bright_silicon::core::CoSimulation::new(
        bright_silicon::core::Scenario::power7_reduced(),
    )
    .unwrap()
    .run()
    .unwrap();
    let from_cosim = report.pumping_power.value();
    assert!(
        ((direct - from_cosim) / direct).abs() < 0.05,
        "direct {direct} vs cosim {from_cosim}"
    );
}

#[test]
fn cache_rail_current_consistent_between_floorplan_and_pdn() {
    let plan = power7::floorplan();
    let expected_amps = plan.cache_area().to_square_centimeters() * 1.0; // 1 W/cm^2 at 1 V
    let pg = bright_silicon::pdn::presets::power7_cache_rail().unwrap();
    let from_pdn = pg.total_sink_current().value();
    assert!(
        ((expected_amps - from_pdn) / expected_amps).abs() < 0.05,
        "blocks {expected_amps} A vs PDN {from_pdn} A"
    );
}

#[test]
fn ocv_consistent_between_echem_and_flowcell() {
    let chem = vanadium::power7_cell_chemistry();
    let direct = chem.open_circuit_voltage(Kelvin::new(300.0)).unwrap().value();
    let via_model = bright_silicon::flowcell::presets::power7_channel()
        .unwrap()
        .open_circuit_voltage()
        .unwrap()
        .value();
    assert!((direct - via_model).abs() < 1e-9);
}

#[test]
fn floorplan_blocks_rasterize_onto_arbitrary_grids() {
    let plan = power7::floorplan();
    let scenario = PowerScenario::full_load();
    let exact = scenario.total_power(&plan).unwrap().value();
    for (nx, ny) in [(44usize, 22usize), (88, 44), (177, 142)] {
        let grid =
            Grid2d::from_extent(plan.width().value(), plan.height().value(), nx, ny).unwrap();
        let raster = scenario.rasterize(&plan, &grid).unwrap().integral();
        assert!(
            ((raster - exact) / exact).abs() < 0.08,
            "{nx}x{ny}: raster {raster} vs exact {exact}"
        );
    }
}

#[test]
fn cache_blocks_cover_expected_die_fraction() {
    let plan = power7::floorplan();
    let cache = plan.cache_area().value();
    let die = plan.die_area().value();
    let cores = plan.area_of_kind(BlockKind::Core).value();
    assert!(cache / die > 0.3 && cache / die < 0.5);
    assert!(cores / die > 0.35 && cores / die < 0.5);
    // Exact tiling.
    let total: f64 = plan.blocks().iter().map(|b| b.area().value()).sum();
    assert!(((total - die) / die).abs() < 1e-9);
}

#[test]
fn channel_temperature_profiles_feed_flowcell_cleanly() {
    // thermal -> TemperatureProfile -> flowcell solve.
    let model = thermal_presets::power7_stack().unwrap();
    let plan = power7::floorplan();
    let map = PowerScenario::full_load().rasterize(&plan, model.grid()).unwrap();
    let sol = model.solve_steady(&map).unwrap();
    let profile = sol.channel_profile(44);
    assert_eq!(profile.len(), 44);
    let tp = bright_silicon::flowcell::TemperatureProfile::Sampled(profile);
    let cell = bright_silicon::flowcell::presets::power7_channel()
        .unwrap()
        .with_temperature(tp)
        .unwrap();
    let warm = cell.solve_at_voltage(1.0).unwrap().current().value();
    let cold = bright_silicon::flowcell::presets::power7_channel()
        .unwrap()
        .solve_at_voltage(1.0)
        .unwrap()
        .current()
        .value();
    assert!(warm > cold, "warm {warm} vs cold {cold}");
}
